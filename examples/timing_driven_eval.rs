//! The model as a fast evaluator inside a timing-driven loop.
//!
//! The paper motivates pre-routing prediction as quick feedback for
//! timing-driven placement: instead of running optimize+route+STA for every
//! candidate placement, ask the model. This example trains on one design
//! and then ranks three candidate placements of a second design by
//! predicted mean endpoint arrival, comparing against the ground truth
//! ranking from the full flow.
//!
//! ```sh
//! cargo run --release --example timing_driven_eval
//! ```

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use std::time::Instant;

use restructure_timing::flow::FlowConfig;
use restructure_timing::prelude::*;

fn main() {
    // Build a small training dataset through the real two-flow pipeline.
    let flow_cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let dataset = Dataset::generate_subset(&flow_cfg, 3, 1);
    let lib = &dataset.library;
    let cfg = ModelConfig::tiny();

    let train: Vec<PreparedDesign> =
        dataset.train_designs().iter().map(|d| d.prepared(lib, &cfg)).collect();
    let mut model = TimingModel::new(cfg.clone());
    println!("training on {} designs ...", train.len());
    model.train(&train, &TrainConfig { epochs: 30, ..TrainConfig::default() });

    // Candidate placements of the held-out design at different utilizations.
    let held_out = dataset.test_designs()[0];
    let netlist = &held_out.input_netlist;
    println!("\nranking placements of `{}`:", held_out.name);
    let mut rows = Vec::new();
    for (label, util) in [("sparse", 0.40f32), ("medium", 0.55), ("dense", 0.70)] {
        let pcfg = PlaceConfig { utilization: util, seed: 42, ..PlaceConfig::default() };
        let placement = place(netlist, lib, 1, &pcfg);
        let graph = TimingGraph::build(netlist, lib);

        // Model path: milliseconds.
        let t0 = Instant::now();
        let prep = PreparedDesign::prepare(
            netlist,
            lib,
            &placement,
            &graph,
            &cfg,
            vec![0.0; graph.endpoints().len()],
        );
        let pred = model.predict(&prep);
        let model_s = t0.elapsed().as_secs_f64();
        let pred_mean = pred.iter().sum::<f32>() / pred.len() as f32;

        // Ground truth path: the full flow.
        let t1 = Instant::now();
        let mut opt_nl = netlist.clone();
        let mut opt_pl = placement.clone();
        let probe = {
            let rt = route(netlist, lib, &placement, &RouteConfig::default());
            run_sta(netlist, lib, &graph, WireModel::Routed(&rt), 1.0)
        };
        let period = probe.max_arrival() * 0.6;
        optimize(
            &mut opt_nl,
            &mut opt_pl,
            lib,
            &OptConfig { clock_period_ps: period, ..OptConfig::default() },
        );
        let opt_graph = TimingGraph::build(&opt_nl, lib);
        let rt = route(&opt_nl, lib, &opt_pl, &RouteConfig::default());
        let signoff = run_sta(&opt_nl, lib, &opt_graph, WireModel::Routed(&rt), period);
        let truth_mean = {
            let arr: Vec<f32> = signoff.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
            arr.iter().sum::<f32>() / arr.len() as f32
        };
        let flow_s = t1.elapsed().as_secs_f64();

        println!(
            "  {label:<7} util {util:.2}: model {pred_mean:8.1} ps in {model_s:.3}s | \
             flow {truth_mean:8.1} ps in {flow_s:.3}s ({:.0}× slower)",
            flow_s / model_s.max(1e-9)
        );
        rows.push((label, pred_mean, truth_mean));
    }

    // Report whether the model's ranking agrees with the flow's.
    let mut by_model = rows.clone();
    by_model.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut by_truth = rows.clone();
    by_truth.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    let model_order: Vec<&str> = by_model.iter().map(|r| r.0).collect();
    let truth_order: Vec<&str> = by_truth.iter().map(|r| r.0).collect();
    println!("\nmodel ranking:  {model_order:?}");
    println!("flow ranking:   {truth_order:?}");
}
