//! Fig. 1 in action: watch the timing optimizer restructure a netlist.
//!
//! Builds a small circuit containing a wide AND cone (the paper's Fig. 1
//! motif), runs the optimizer against a tight clock, and prints the
//! sub-netlist before and after — showing which of the original net/cell
//! edges are *replaced* and therefore unlabellable for local-view models.
//!
//! ```sh
//! cargo run --release --example restructure_demo
//! ```

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use restructure_timing::prelude::*;

fn dump(netlist: &Netlist, lib: &CellLibrary, title: &str) {
    println!("--- {title} ---");
    for (_, cell) in netlist.cells() {
        let ty = lib.cell_type(cell.type_id);
        let inputs: Vec<String> = cell
            .inputs
            .iter()
            .map(|&p| match netlist.pin(p).net {
                Some(n) => netlist.net(n).name.clone(),
                None => "-".to_owned(),
            })
            .collect();
        let out = match netlist.pin(cell.output).net {
            Some(n) => netlist.net(n).name.clone(),
            None => "-".to_owned(),
        };
        println!("  {:<10} {:<9} ({}) -> {}", cell.name, ty.name, inputs.join(", "), out);
    }
}

fn main() {
    let lib = CellLibrary::asap7_like();

    // A deliberately unbalanced circuit: a 4-input AND fed by a slow chain
    // on one input (so decomposition pays off), driving an output port.
    let mut nl = Netlist::new("fig1_demo");
    let early: Vec<_> = (0..3).map(|i| nl.add_input_port(format!("a{i}"))).collect();
    let late = nl.add_input_port("late");
    let inv_t = lib.pick(GateFn::Inv, 1).expect("INV_X1");
    let and4_t = lib.pick(GateFn::And4, 1).expect("AND4_X1");
    let buf_t = lib.pick(GateFn::Buf, 1).expect("BUF_X1");

    // Slow chain: late -> INV -> INV -> INV -> AND4 input.
    let mut prev = late;
    for i in 0..3 {
        let (c, o) = nl.add_cell(format!("chain{i}"), inv_t, &lib);
        let ci = nl.cell(c).inputs[0];
        nl.connect_net(format!("ch{i}"), prev, &[ci]).expect("fresh pins");
        prev = o;
    }
    // A redundant buffer the optimizer can bypass.
    let (bc, bo) = nl.add_cell("u_buf", buf_t, &lib);
    let bi = nl.cell(bc).inputs[0];
    nl.connect_net("chb", prev, &[bi]).expect("fresh pins");

    let (and_c, and_o) = nl.add_cell("u_and4", and4_t, &lib);
    let ins = nl.cell(and_c).inputs.clone();
    for (k, &p) in early.iter().enumerate() {
        nl.connect_net(format!("e{k}"), p, &[ins[k]]).expect("fresh pins");
    }
    nl.connect_net("nlate", bo, &[ins[3]]).expect("fresh pins");
    let y = nl.add_output_port("y");
    nl.connect_net("ny", and_o, &[y]).expect("fresh pins");
    nl.validate().expect("demo circuit is valid");

    let before = nl.clone();
    dump(&before, &lib, "before optimization");

    let mut placement = place(&nl, &lib, 0, &PlaceConfig::default());
    let graph = TimingGraph::build(&nl, &lib);
    let routing = route(&nl, &lib, &placement, &RouteConfig::default());
    let probe = run_sta(&nl, &lib, &graph, WireModel::Routed(&routing), 1.0);
    let period = probe.max_arrival() * 0.5;

    let report = optimize(
        &mut nl,
        &mut placement,
        &lib,
        &OptConfig { clock_period_ps: period, ..OptConfig::default() },
    );
    dump(&nl, &lib, "after optimization");

    let diff = diff_netlists(&before, &nl, &lib);
    println!("\noptimizer report: {report:#?}");
    println!(
        "replaced: {}/{} net edges, {}/{} cell edges",
        diff.replaced_net_edges,
        diff.total_net_edges,
        diff.replaced_cell_edges,
        diff.total_cell_edges
    );
    println!(
        "=> a local-view model trained on pre-optimization features has no valid \
         labels for the replaced region — the mismatch the paper's Fig. 1 describes."
    );
}
