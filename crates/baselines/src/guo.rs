//! The end-to-end GNN baseline (Guo et al., DAC 2022): topological message
//! passing with auxiliary local supervision (net delay, cell delay, pin
//! arrival) on the surviving elements.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtt_core::{Aggregation, GnnSchedule, LevelFeats, ModelConfig, NetlistGnn};
use rtt_features::NodeFeatures;
use rtt_netlist::NodeKind;
use rtt_nn::{mse, ops, Adam, Exec, InferCtx, Mlp, ParamStore, Tape, Tensor};

use crate::BaselineInputs;

/// Hyper-parameters of the Guo baseline.
#[derive(Clone, Debug)]
pub struct GuoConfig {
    /// Node embedding width.
    pub embed_dim: usize,
    /// Hidden width of the message/readout MLPs.
    pub hidden: usize,
    /// Weight of the auxiliary local losses relative to the endpoint loss.
    pub aux_weight: f32,
    /// Seed for initialization.
    pub seed: u64,
}

impl Default for GuoConfig {
    fn default() -> Self {
        Self { embed_dim: 32, hidden: 32, aux_weight: 1.0, seed: 0x99 }
    }
}

/// Per-design prepared state for the Guo model.
struct Prepared {
    schedule: GnnSchedule,
    feats: LevelFeats,
    ep_locs: Vec<(u32, u32)>,
    ep_labels: Vec<f32>,
    arr_locs: Vec<(u32, u32)>,
    arr_labels: Vec<f32>,
    net_locs: Vec<(u32, u32)>,
    net_labels: Vec<f32>,
    cell_locs: Vec<(u32, u32)>,
    cell_labels: Vec<f32>,
}

fn prepare(inputs: &BaselineInputs<'_>) -> Prepared {
    let graph = inputs.graph;
    let schedule = GnnSchedule::build(graph);
    let features = NodeFeatures::extract(inputs.netlist, inputs.library, graph, inputs.placement);
    let feats = LevelFeats::assemble(&schedule, &features);

    let ep_locs = schedule.locs_of(graph.endpoints());
    let ep_labels = inputs.endpoint_targets.to_vec();

    let mut arr_locs = Vec::new();
    let mut arr_labels = Vec::new();
    let mut net_locs = Vec::new();
    let mut net_labels = Vec::new();
    let mut cell_locs = Vec::new();
    let mut cell_labels = Vec::new();
    for v in 0..graph.num_nodes() as u32 {
        let pin = graph.pin_of(v);
        if let Some(&a) = inputs.signoff_arrivals.get(&pin) {
            arr_locs.push(schedule.loc_of(v));
            arr_labels.push(a);
        }
        match graph.node_kind(v) {
            NodeKind::NetSink => {
                // A net sink without a driver edge carries no delay label.
                let Some(e) = graph.fanin(v).next() else { continue };
                let key = (graph.pin_of(e.from), pin);
                if let Some(&d) = inputs.signoff_net_delays.get(&key) {
                    net_locs.push(schedule.loc_of(v));
                    net_labels.push(d);
                }
            }
            NodeKind::CellOut => {
                for e in graph.fanin(v) {
                    let key = (graph.pin_of(e.from), pin);
                    if let Some(&d) = inputs.signoff_cell_delays.get(&key) {
                        cell_locs.push(schedule.loc_of(v));
                        cell_labels.push(d);
                        break; // one shared delay per cell in our model
                    }
                }
            }
            NodeKind::Source => {}
        }
    }
    Prepared {
        schedule,
        feats,
        ep_locs,
        ep_labels,
        arr_locs,
        arr_labels,
        net_locs,
        net_labels,
        cell_locs,
        cell_labels,
    }
}

/// The end-to-end GNN baseline model.
pub struct GuoModel {
    config: GuoConfig,
    store: ParamStore,
    gnn: NetlistGnn,
    arrival_head: Mlp,
    net_head: Mlp,
    cell_head: Mlp,
    arr_mean: f32,
    arr_std: f32,
    delay_std: f32,
    #[allow(dead_code)]
    rng: StdRng,
}

impl GuoModel {
    /// Creates an untrained model.
    pub fn new(config: GuoConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        // Reuse the levelized GNN machinery with this baseline's widths.
        let mc = ModelConfig {
            embed_dim: config.embed_dim,
            gnn_hidden: config.hidden,
            ..ModelConfig::tiny()
        };
        let gnn = NetlistGnn::new(&mut store, &mut rng, &mc);
        let d = config.embed_dim;
        let h = config.hidden;
        let arrival_head = Mlp::new(&mut store, &mut rng, &[d, h, 1]);
        let net_head = Mlp::new(&mut store, &mut rng, &[d, h, 1]);
        let cell_head = Mlp::new(&mut store, &mut rng, &[d, h, 1]);
        Self {
            config,
            store,
            gnn,
            arrival_head,
            net_head,
            cell_head,
            arr_mean: 0.0,
            arr_std: 1.0,
            delay_std: 1.0,
            rng,
        }
    }

    /// Trains with the multi-task loss: endpoint arrival + auxiliary local
    /// labels on survivors.
    pub fn train(&mut self, designs: &[&BaselineInputs<'_>], epochs: usize, lr: f32) {
        rtt_obs::span!("baselines::guo_train");
        let prepared: Vec<Prepared> = designs.iter().map(|d| prepare(d)).collect();
        // Arrivals are regressed linearly (log space makes upward
        // extrapolation exponential); delays, which span several orders of
        // magnitude locally, stay in log space. Matches the treatment of
        // the main model (see DESIGN.md).
        let arrivals: Vec<f32> = prepared
            .iter()
            .flat_map(|p| p.ep_labels.iter().chain(&p.arr_labels))
            .copied()
            .collect();
        if arrivals.is_empty() {
            return;
        }
        self.arr_mean = arrivals.iter().sum::<f32>() / arrivals.len() as f32;
        let var = arrivals.iter().map(|a| (a - self.arr_mean).powi(2)).sum::<f32>()
            / arrivals.len() as f32;
        self.arr_std = var.sqrt().max(1e-6);
        let delays: Vec<f32> = prepared
            .iter()
            .flat_map(|p| p.net_labels.iter().chain(&p.cell_labels))
            .map(|&d| encode(d))
            .collect();
        let dvar = delays.iter().map(|d| d * d).sum::<f32>() / delays.len().max(1) as f32;
        self.delay_std = dvar.sqrt().max(1e-6);

        let mut adam = Adam::new(lr);
        for _ in 0..epochs {
            for p in &prepared {
                let tape = Tape::new();
                let levels = self.gnn.forward_levels(
                    &tape,
                    &self.store,
                    &p.schedule,
                    &p.feats,
                    Aggregation::Max,
                );
                let mut loss = {
                    let emb = tape.gather_multi(&levels, &p.ep_locs).scale(rtt_core::READOUT_SCALE);
                    let pred = self.arrival_head.forward(&tape, &self.store, emb);
                    let t = self.norm_arr(&tape, &p.ep_labels);
                    mse(&tape, pred, t)
                };
                if !p.arr_locs.is_empty() {
                    let emb =
                        tape.gather_multi(&levels, &p.arr_locs).scale(rtt_core::READOUT_SCALE);
                    let pred = self.arrival_head.forward(&tape, &self.store, emb);
                    let t = self.norm_arr(&tape, &p.arr_labels);
                    loss = loss.add(mse(&tape, pred, t).scale(self.config.aux_weight));
                }
                if !p.net_locs.is_empty() {
                    // Local delays are not cumulative: bound the readout so
                    // depth-accumulated embedding magnitude cannot leak in.
                    let emb = tape
                        .gather_multi(&levels, &p.net_locs)
                        .scale(rtt_core::READOUT_SCALE)
                        .tanh();
                    let pred = self.net_head.forward(&tape, &self.store, emb);
                    let t = self.norm_delay(&tape, &p.net_labels);
                    loss = loss.add(mse(&tape, pred, t).scale(self.config.aux_weight));
                }
                if !p.cell_locs.is_empty() {
                    let emb = tape
                        .gather_multi(&levels, &p.cell_locs)
                        .scale(rtt_core::READOUT_SCALE)
                        .tanh();
                    let pred = self.cell_head.forward(&tape, &self.store, emb);
                    let t = self.norm_delay(&tape, &p.cell_labels);
                    loss = loss.add(mse(&tape, pred, t).scale(self.config.aux_weight));
                }
                let grads = tape.backward(loss);
                adam.step(&mut self.store, &grads);
            }
        }
    }

    fn norm_arr<'t>(&self, tape: &'t Tape, labels: &[f32]) -> rtt_nn::Var<'t> {
        let data: Vec<f32> = labels.iter().map(|&a| (a - self.arr_mean) / self.arr_std).collect();
        tape.constant(Tensor::from_vec(&[labels.len(), 1], data))
    }

    fn norm_delay<'t>(&self, tape: &'t Tape, labels: &[f32]) -> rtt_nn::Var<'t> {
        let data: Vec<f32> = labels.iter().map(|&d| encode(d) / self.delay_std).collect();
        tape.constant(Tensor::from_vec(&[labels.len(), 1], data))
    }

    /// Normalized endpoint predictions on any execution backend.
    fn endpoint_pred<E: Exec>(&self, ex: E, p: &Prepared) -> Tensor {
        let levels =
            self.gnn.forward_levels(ex, &self.store, &p.schedule, &p.feats, Aggregation::Max);
        let emb = ex.scale(ex.gather_multi(&levels, &p.ep_locs), rtt_core::READOUT_SCALE);
        ex.value(self.arrival_head.forward(ex, &self.store, emb))
    }

    /// Predicts endpoint arrivals for a design (tape-free backend).
    ///
    /// Runs on the flat kernel path: one batched GNN pass over the
    /// precomputed CSR plan, one gather of every endpoint row, one pass
    /// through the arrival head. Bit-identical to
    /// [`Self::predict_endpoints_taped`] (asserted by the equivalence
    /// suite).
    // rtt-lint: entry
    pub fn predict_endpoints(&self, inputs: &BaselineInputs<'_>) -> Vec<f32> {
        let p = prepare(inputs);
        let ctx = InferCtx::new();
        ctx.with_scratch(NetlistGnn::FLAT_SCRATCH + 4, |bufs, _, _| {
            let (gbufs, rest) = bufs.split_at_mut(NetlistGnn::FLAT_SCRATCH);
            let [ep, t0, t1, pred] = rest else {
                unreachable!("scratch pool sized to FLAT_SCRATCH + 4 above")
            };
            self.gnn.forward_flat(&self.store, &p.schedule, &p.feats, Aggregation::Max, gbufs);
            ops::gather_rows_flat(&gbufs[0], p.schedule.flat_endpoint_rows(), ep);
            ep.scale_assign(rtt_core::READOUT_SCALE);
            self.arrival_head.forward_into(&self.store, ep, t0, t1, pred);
            pred.data().iter().map(|v| v * self.arr_std + self.arr_mean).collect()
        })
    }

    /// Reference implementation of [`Self::predict_endpoints`] on the tape
    /// backend; the equivalence suite asserts bit-identical outputs.
    pub fn predict_endpoints_taped(&self, inputs: &BaselineInputs<'_>) -> Vec<f32> {
        let p = prepare(inputs);
        self.endpoint_pred(&Tape::new(), &p)
            .data()
            .iter()
            .map(|v| v * self.arr_std + self.arr_mean)
            .collect()
    }

    /// `(prediction, label)` pairs for the auxiliary local tasks on the
    /// survivors: `(net delays, cell delays)` — the split local columns the
    /// paper reports for this baseline.
    #[allow(clippy::type_complexity)]
    pub fn local_eval(&self, inputs: &BaselineInputs<'_>) -> (Vec<(f32, f32)>, Vec<(f32, f32)>) {
        let p = prepare(inputs);
        let tape = Tape::new();
        let levels =
            self.gnn.forward_levels(&tape, &self.store, &p.schedule, &p.feats, Aggregation::Max);
        let eval = |locs: &[(u32, u32)], labels: &[f32], head: &Mlp| -> Vec<(f32, f32)> {
            if locs.is_empty() {
                return Vec::new();
            }
            let emb = tape.gather_multi(&levels, locs).scale(rtt_core::READOUT_SCALE).tanh();
            let pred = tape.value(head.forward(&tape, &self.store, emb));
            pred.data()
                .iter()
                .zip(labels)
                .map(|(&pv, &l)| (decode(pv * self.delay_std), l))
                .collect()
        };
        (
            eval(&p.net_locs, &p.net_labels, &self.net_head),
            eval(&p.cell_locs, &p.cell_labels, &self.cell_head),
        )
    }
}

/// Log-space label transform shared with the main model (see DESIGN.md).
fn encode(x: f32) -> f32 {
    (1.0 + x.max(0.0)).ln()
}

/// Clamped inverse: an out-of-range head prediction must not overflow to
/// astronomical delays.
fn decode(x: f32) -> f32 {
    x.clamp(0.0, 15.0).exp() - 1.0
}
