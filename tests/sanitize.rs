//! The debug-build kernel sanitizer must be an observer: running the
//! serving path under `RTT_SANITIZE=1` performs the NaN/Inf and plan
//! checks (visible through the `nn::sanitize_*` counters in debug builds)
//! without changing a single output bit.
//!
//! The env var is process-global, so everything runs in one `#[test]`.

use restructure_timing::flow::{Dataset, FlowConfig};
use restructure_timing::obs;
use restructure_timing::prelude::*;

#[test]
fn sanitized_predict_is_bit_identical_and_checks_run() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 1);
    let mc = ModelConfig::tiny();
    let design = ds.test_designs()[0];

    // Reference pass with the sanitizer off.
    std::env::remove_var("RTT_SANITIZE");
    let prep = design.prepared(&ds.library, &mc);
    let model = TimingModel::new(mc.clone());
    let plain = model.predict(&prep);
    assert!(!plain.is_empty(), "tiny design has endpoints");

    // Sanitized pass: re-prepare so the GnnPlan build-time checks run too,
    // then predict with every kernel output scanned.
    obs::reset();
    std::env::set_var("RTT_SANITIZE", "1");
    let prep_s = design.prepared(&ds.library, &mc);
    let sanitized = model.predict(&prep_s);
    let counters = obs::snapshot().counters;
    std::env::remove_var("RTT_SANITIZE");

    assert_eq!(plain.len(), sanitized.len());
    for (i, (a, b)) in plain.iter().zip(&sanitized).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "prediction {i} changed under RTT_SANITIZE=1: {a:?} vs {b:?}"
        );
    }

    // In debug builds the sanitizer must actually have looked at
    // something; in release it is compiled out and the counters stay 0.
    let value_checks = counters.get("nn::sanitize_value_checks").copied().unwrap_or(0);
    let plan_checks = counters.get("nn::sanitize_plan_checks").copied().unwrap_or(0);
    if cfg!(debug_assertions) {
        assert!(value_checks > 0, "no value checks ran under RTT_SANITIZE=1");
        assert!(plan_checks > 0, "no plan checks ran under RTT_SANITIZE=1");
    } else {
        assert_eq!(value_checks + plan_checks, 0, "sanitizer must be compiled out of release");
    }
}
