//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of `rand 0.8` APIs the workspace actually uses are
//! reimplemented here as a local path dependency. The surface is kept
//! intentionally small: [`Rng::gen`], [`Rng::gen_range`] over half-open
//! ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64 — not the ChaCha12
//! generator of upstream `rand`, so absolute random streams differ from
//! upstream, but every consumer in this workspace relies only on
//! *determinism for a fixed seed*, which this implementation guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer sampling in `[0, span)` via 128-bit widening multiply
/// (Lemire's method, without the rejection refinement — the bias is below
/// 2⁻⁶⁴ for every span used in this workspace).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < hi { v } else { lo }
            }
        }
    )+};
}

impl_uniform_float!(f32, f64);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a fixed seed; not cryptographically secure (nothing
    /// in this repository needs that).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }
}
