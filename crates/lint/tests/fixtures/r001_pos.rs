// R001 positive: panicking Option/Result access in library code.
pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap()
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("valid port")
}
