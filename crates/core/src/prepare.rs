//! Per-design preprocessing: everything the model needs, computed once —
//! and, after a restructuring transform, *updated* instead of recomputed:
//! [`PreparedDesign::update`] reuses the prior schedule, node features,
//! layout maps, and endpoint masks, recomputing only what the transform's
//! dirty cone invalidates (see DESIGN.md "Preparation pipeline").

use rtt_features::{endpoint_masks, endpoint_masks_sparse_for, LayoutMaps, NodeFeatures};
use rtt_netlist::{CellId, CellLibrary, Netlist, NodeKind, PinId, TimingGraph};
use rtt_nn::Tensor;
use rtt_place::Placement;

use crate::gnn::{GnnSchedule, LevelFeats};
use crate::ModelConfig;

/// Flat counter: endpoint masks recomputed by the delta-prepare path.
pub const PREP_MASKS_RECOMPUTED_COUNTER: &str = "core::prepare_masks_recomputed";
/// Flat counter: total endpoints seen by the delta-prepare path.
pub const PREP_MASKS_TOTAL_COUNTER: &str = "core::prepare_masks_total";
/// Flat counter: node-feature rows recomputed by the delta-prepare path.
pub const PREP_FEAT_ROWS_RECOMPUTED_COUNTER: &str = "core::prepare_feat_rows_recomputed";
/// Flat counter: total node-feature rows seen by the delta-prepare path.
pub const PREP_FEAT_ROWS_TOTAL_COUNTER: &str = "core::prepare_feat_rows_total";
/// Flat counter: layout-map bins recomputed by the delta-prepare path.
pub const PREP_MAP_BINS_RECOMPUTED_COUNTER: &str = "core::prepare_map_bins_recomputed";
/// Flat counter: total layout-map bins seen by the delta-prepare path.
pub const PREP_MAP_BINS_TOTAL_COUNTER: &str = "core::prepare_map_bins_total";

/// Retained preparation state that lets [`PreparedDesign::update`] carry
/// clean work forward across a transform: the per-node feature rows and
/// raw layout maps of the *previous* preparation, plus the pin-keyed
/// identity of its graph (pins and flat rows are not stable across a
/// tombstoning edit; [`PinId`]s are).
#[derive(Clone, Debug)]
pub struct PrepareCtx {
    /// Per-node feature rows of the previous graph.
    features: NodeFeatures,
    /// Previous graph: node → pin.
    pins: Vec<PinId>,
    /// Previous graph: node kinds.
    kinds: Vec<NodeKind>,
    /// Previous graph: pin index → node (`u32::MAX` = not a node).
    node_of_pin: Vec<u32>,
    /// Previous graph: edge count (structure-identity check).
    num_edges: usize,
    /// Raw (un-stacked) layout maps, maintained by dirty-bin deltas.
    layout: LayoutMaps,
    /// Pin index → endpoint ordinal of the previous prepared design
    /// (`u32::MAX` = not an endpoint).
    mask_of_pin: Vec<u32>,
}

impl PrepareCtx {
    fn capture(
        netlist: &Netlist,
        graph: &TimingGraph,
        features: NodeFeatures,
        layout: LayoutMaps,
    ) -> Self {
        let n = graph.num_nodes();
        let mut pins = Vec::with_capacity(n);
        let mut kinds = Vec::with_capacity(n);
        let mut node_of_pin = vec![u32::MAX; netlist.pin_capacity()];
        for v in 0..n as u32 {
            let p = graph.pin_of(v);
            pins.push(p);
            kinds.push(graph.node_kind(v));
            node_of_pin[p.index()] = v;
        }
        let mut mask_of_pin = vec![u32::MAX; netlist.pin_capacity()];
        for (i, &ep) in graph.endpoints().iter().enumerate() {
            mask_of_pin[graph.pin_of(ep).index()] = i as u32;
        }
        Self {
            features,
            pins,
            kinds,
            node_of_pin,
            num_edges: graph.num_edges(),
            layout,
            mask_of_pin,
        }
    }
}

/// A design converted into model inputs: GNN schedule and features, stacked
/// layout maps, endpoint masks, and (optionally meaningful) targets.
///
/// This corresponds to the paper's *preprocessing* stage of Table III:
/// graph construction, topological levels, and endpoint-wise critical
/// region generation.
///
/// Masks are stored sparsely (set-bin indices per endpoint): a dense
/// `[num_endpoints, (G/4)²]` matrix would need gigabytes at the paper's
/// 512×512 grid on endpoint-heavy designs. Dense rows are materialized per
/// batch via [`Self::dense_mask_rows`].
#[derive(Clone, Debug)]
pub struct PreparedDesign {
    /// Design name (for reporting).
    pub name: String,
    /// Levelized propagation plan.
    pub schedule: GnnSchedule,
    /// Per-level node feature matrices.
    pub feats: LevelFeats,
    /// Stacked `[3, G, G]` layout maps (density, RUDY, macro).
    pub maps: Tensor,
    /// Set bins of each endpoint's critical-region mask, at pooled
    /// resolution (row-major indices into the `(G/4)²` map).
    pub masks: Vec<Vec<u32>>,
    /// Pooled mask width (`G/4`).
    pub mask_grid: usize,
    /// Ground-truth endpoint arrival times, aligned with
    /// `graph.endpoints()` order (ps).
    pub targets: Vec<f32>,
}

impl PreparedDesign {
    /// Prepares a design for training or inference.
    ///
    /// `targets` must be aligned with `graph.endpoints()`; pass zeros for
    /// pure inference.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the endpoint count.
    pub fn prepare(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        graph: &TimingGraph,
        config: &ModelConfig,
        targets: Vec<f32>,
    ) -> Self {
        Self::prepare_full(netlist, library, placement, graph, config, targets).0
    }

    /// [`Self::prepare`], additionally returning the [`PrepareCtx`] that
    /// [`Self::update`] needs to carry clean work across a transform.
    pub fn prepare_full(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        graph: &TimingGraph,
        config: &ModelConfig,
        targets: Vec<f32>,
    ) -> (Self, PrepareCtx) {
        rtt_obs::span!("core::prepare");
        assert_eq!(targets.len(), graph.endpoints().len(), "one target per endpoint");
        let schedule = GnnSchedule::build(graph);
        let features = NodeFeatures::extract(netlist, library, graph, placement);
        let feats = LevelFeats::assemble(&schedule, &features);

        let layout = LayoutMaps::extract(netlist, library, placement, config.grid);
        let maps = Tensor::from_vec(&[3, config.grid, config.grid], layout.stacked());

        let mg = config.pooled_grid();
        let mask_data = endpoint_masks(netlist, placement, graph, mg);
        let masks = mask_data
            .chunks_exact(mg * mg)
            .map(|row| {
                row.iter().enumerate().filter(|(_, &v)| v > 0.0).map(|(i, _)| i as u32).collect()
            })
            .collect();

        let ctx = PrepareCtx::capture(netlist, graph, features, layout);
        let prep = Self {
            name: netlist.name.clone(),
            schedule,
            feats,
            maps,
            masks,
            mask_grid: mg,
            targets,
        };
        (prep, ctx)
    }

    /// Delta preparation: derives `after`'s [`PreparedDesign`] from
    /// `self` (the preparation of `before`), recomputing only what the
    /// transform's dirty cone invalidates and carrying everything else
    /// over. Bit-identical to a cold [`Self::prepare`] of `after`.
    ///
    /// * `ctx` — the context returned by [`Self::prepare_full`] (or a
    ///   previous `update`) for `before`; replaced in place so updates
    ///   chain across a transform sequence.
    /// * `seeds` — `opt::dirty_seed_pins(before, after)`: every pin whose
    ///   gather topology may have changed. `update` augments this with
    ///   pins whose placement moved and with net sinks whose driver pin
    ///   is dirty (their net-distance feature reads the driver position).
    /// * `graph` — `after`'s freshly built [`TimingGraph`].
    ///
    /// Invalidation rules (soundness argument in DESIGN.md):
    /// * **schedule** — rebuilt unless the node/edge structure is
    ///   provably identical (same pins, same kinds, same edge count, an
    ///   empty dirty set), in which case the previous plan is reused;
    /// * **node features** — recomputed for dirty pins only, rows of
    ///   clean pins copied across by pin id;
    /// * **layout maps** — dirty-bin re-accumulation via
    ///   [`LayoutMaps::update_delta`];
    /// * **endpoint masks** — recomputed only for endpoints inside the
    ///   fan-out cone of the dirty node set (an endpoint's mask depends
    ///   only on its fan-in cone, so a clean cone means an identical
    ///   longest path over identical pin positions).
    ///
    /// A floorplan or grid-configuration change invalidates everything
    /// and falls back to a cold prepare internally.
    ///
    /// Both netlists must share an id space (`after` produced by mutating
    /// a clone of `before`), exactly as for `opt::dirty_seed_pins`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the endpoint count.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &self,
        ctx: &mut PrepareCtx,
        before: (&Netlist, &Placement),
        after: (&Netlist, &Placement),
        library: &CellLibrary,
        graph: &TimingGraph,
        config: &ModelConfig,
        seeds: &[PinId],
        targets: Vec<f32>,
    ) -> Self {
        rtt_obs::span!("core::prepare_delta");
        let (bnl, bpl) = before;
        let (anl, apl) = after;
        assert_eq!(targets.len(), graph.endpoints().len(), "one target per endpoint");

        // Global invalidation: a floorplan or resolution change touches
        // every feature at once — delta bookkeeping would all be dirty.
        if bpl.floorplan().die != apl.floorplan().die
            || bpl.floorplan().macros != apl.floorplan().macros
            || ctx.layout.grid() != config.grid
            || self.mask_grid != config.pooled_grid()
        {
            let (prep, fresh) = Self::prepare_full(anl, library, apl, graph, config, targets);
            *ctx = fresh;
            let n = prep.schedule.num_nodes() as u64;
            let eps = prep.masks.len() as u64;
            let bins = 3 * (config.grid * config.grid) as u64;
            rtt_obs::add_many(&[
                (PREP_MASKS_RECOMPUTED_COUNTER, eps),
                (PREP_MASKS_TOTAL_COUNTER, eps),
                (PREP_FEAT_ROWS_RECOMPUTED_COUNTER, n),
                (PREP_FEAT_ROWS_TOTAL_COUNTER, n),
                (PREP_MAP_BINS_RECOMPUTED_COUNTER, bins),
                (PREP_MAP_BINS_TOTAL_COUNTER, bins),
            ]);
            return prep;
        }

        // Dirty pin mask over `after`'s id space: caller seeds, pins of
        // moved cells and moved ports, then one net hop so sinks reading
        // a dirty driver's position recompute their distance feature.
        let n = graph.num_nodes();
        let mut dirty_pin = vec![false; anl.pin_capacity()];
        for &p in seeds {
            if p.index() < dirty_pin.len() {
                dirty_pin[p.index()] = true;
            }
        }
        for ci in 0..anl.cell_capacity().min(bnl.cell_capacity()) {
            let cid = CellId::from_index(ci);
            if !(anl.cell(cid).is_alive() && bnl.cell(cid).is_alive()) {
                continue;
            }
            let (a, b) = (apl.cell_pos(cid), bpl.cell_pos(cid));
            if a.x.to_bits() != b.x.to_bits() || a.y.to_bits() != b.y.to_bits() {
                let cell = anl.cell(cid);
                for &p in &cell.inputs {
                    dirty_pin[p.index()] = true;
                }
                dirty_pin[cell.output.index()] = true;
            }
        }
        for &p in anl.input_ports().iter().chain(anl.output_ports()) {
            let existed = p.index() < bnl.pin_capacity() && bnl.pin(p).is_alive();
            if existed {
                let (a, b) = (apl.pin_position(anl, p), bpl.pin_position(bnl, p));
                if a.x.to_bits() != b.x.to_bits() || a.y.to_bits() != b.y.to_bits() {
                    dirty_pin[p.index()] = true;
                }
            }
        }
        for (_, net) in anl.nets() {
            if dirty_pin[net.driver.index()] {
                for &s in &net.sinks {
                    dirty_pin[s.index()] = true;
                }
            }
        }
        let any_dirty = dirty_pin.iter().any(|&d| d);

        // Schedule: reuse iff the graph is provably identical. With an
        // empty dirty set, equal pin lists and kinds imply equal edges
        // (any live edge change seeds its sink; any node change alters
        // the pin list), so equal edge counts close the argument.
        let structure_unchanged = !any_dirty
            && n == ctx.pins.len()
            && graph.num_edges() == ctx.num_edges
            && (0..n as u32).all(|v| {
                graph.pin_of(v) == ctx.pins[v as usize]
                    && graph.node_kind(v) == ctx.kinds[v as usize]
            });
        let schedule =
            if structure_unchanged { self.schedule.clone() } else { GnnSchedule::build(graph) };

        // Node features: recompute dirty rows, copy the rest by pin.
        let (features, feat_recomputed) = NodeFeatures::extract_delta(
            anl,
            library,
            graph,
            apl,
            &ctx.features,
            &ctx.node_of_pin,
            &ctx.kinds,
            &dirty_pin,
        );
        let feats = if structure_unchanged && feat_recomputed == 0 {
            self.feats.clone()
        } else {
            LevelFeats::assemble(&schedule, &features)
        };

        // Layout maps: dirty-bin re-accumulation, then a full re-stack
        // (max-normalization is global by definition).
        let (map_bins_recomputed, map_bins_total) =
            ctx.layout.update_delta((bnl, bpl), (anl, apl), library);
        let maps = Tensor::from_vec(&[3, config.grid, config.grid], ctx.layout.stacked());

        // Endpoint masks: recompute inside the dirty fan-out cone, carry
        // clean rows over by endpoint pin.
        let mg = config.pooled_grid();
        let cone_seeds: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                let p = graph.pin_of(v);
                dirty_pin[p.index()]
                    || ctx.node_of_pin.get(p.index()).copied().unwrap_or(u32::MAX) == u32::MAX
            })
            .collect();
        let mut node_dirty = vec![false; n];
        for &v in &rtt_sta::fanout_cone(graph, &cone_seeds) {
            node_dirty[v as usize] = true;
        }
        let eps = graph.endpoints();
        let mut masks: Vec<Vec<u32>> = Vec::with_capacity(eps.len());
        let mut recompute: Vec<(usize, u32)> = Vec::new();
        for (i, &ep) in eps.iter().enumerate() {
            let p = graph.pin_of(ep);
            let prev = ctx.mask_of_pin.get(p.index()).copied().unwrap_or(u32::MAX);
            if !node_dirty[ep as usize] && prev != u32::MAX {
                masks.push(self.masks[prev as usize].clone());
            } else {
                masks.push(Vec::new());
                recompute.push((i, ep));
            }
        }
        let nodes: Vec<u32> = recompute.iter().map(|&(_, ep)| ep).collect();
        let rows = endpoint_masks_sparse_for(anl, apl, graph, mg, &nodes);
        for (&(i, _), row) in recompute.iter().zip(rows) {
            masks[i] = row;
        }

        rtt_obs::add_many(&[
            (PREP_MASKS_RECOMPUTED_COUNTER, recompute.len() as u64),
            (PREP_MASKS_TOTAL_COUNTER, eps.len() as u64),
            (PREP_FEAT_ROWS_RECOMPUTED_COUNTER, feat_recomputed as u64),
            (PREP_FEAT_ROWS_TOTAL_COUNTER, n as u64),
            (PREP_MAP_BINS_RECOMPUTED_COUNTER, map_bins_recomputed),
            (PREP_MAP_BINS_TOTAL_COUNTER, map_bins_total),
        ]);

        // Refresh the context for the next chained update. The layout
        // maps were already updated in place.
        let layout = ctx.layout.clone();
        *ctx = PrepareCtx::capture(anl, graph, features, layout);

        Self { name: anl.name.clone(), schedule, feats, maps, masks, mask_grid: mg, targets }
    }

    /// Field-by-field bit equality against `other`, reporting the first
    /// divergent field — the verification contract of [`Self::update`]
    /// (a delta-updated preparation must be indistinguishable from a
    /// cold one).
    ///
    /// # Errors
    ///
    /// Returns the name of the first mismatching field.
    pub fn bit_eq(&self, other: &Self) -> Result<(), String> {
        if self.name != other.name {
            return Err(format!("name: {} vs {}", self.name, other.name));
        }
        if self.mask_grid != other.mask_grid {
            return Err(format!("mask_grid: {} vs {}", self.mask_grid, other.mask_grid));
        }
        if !self.schedule.bit_eq(&other.schedule) {
            return Err("schedule".into());
        }
        let opt_tensor = |a: Option<&Tensor>, b: Option<&Tensor>| match (a, b) {
            (Some(a), Some(b)) => {
                a.shape() == b.shape()
                    && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (None, None) => true,
            _ => false,
        };
        let tensor_list = |a: &[Option<Tensor>], b: &[Option<Tensor>]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| opt_tensor(x.as_ref(), y.as_ref()))
        };
        if !tensor_list(&self.feats.cell, &other.feats.cell)
            || !tensor_list(&self.feats.net, &other.feats.net)
            || !tensor_list(&self.feats.source, &other.feats.source)
            || !opt_tensor(self.feats.cell_src_flat.as_ref(), other.feats.cell_src_flat.as_ref())
            || !opt_tensor(self.feats.net_flat.as_ref(), other.feats.net_flat.as_ref())
        {
            return Err("feats".into());
        }
        if !opt_tensor(Some(&self.maps), Some(&other.maps)) {
            return Err("maps".into());
        }
        if self.masks != other.masks {
            return Err("masks".into());
        }
        if self.targets.len() != other.targets.len()
            || self.targets.iter().zip(&other.targets).any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err("targets".into());
        }
        Ok(())
    }

    /// Number of endpoints (prediction rows).
    pub fn num_endpoints(&self) -> usize {
        self.targets.len()
    }

    /// Materializes dense 0/1 mask rows for the given endpoint indices
    /// (`[indices.len(), (G/4)²]`, row-major).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn dense_mask_rows(&self, indices: &[u32]) -> Tensor {
        let mut out = Tensor::default();
        self.dense_mask_rows_into(indices, &mut out);
        out
    }

    /// [`Self::dense_mask_rows`] into a caller-provided buffer, so the
    /// batched inference path reuses one allocation across chunks.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn dense_mask_rows_into(&self, indices: &[u32], out: &mut Tensor) {
        let cols = self.mask_grid * self.mask_grid;
        out.reset(&[indices.len().max(1), cols], 0.0);
        let data = out.data_mut();
        for (r, &ep) in indices.iter().enumerate() {
            for &bin in &self.masks[ep as usize] {
                data[r * cols + bin as usize] = 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::ripple_carry_adder;
    use rtt_place::{place, PlaceConfig};

    #[test]
    fn prepared_shapes_are_consistent() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let cfg = ModelConfig::tiny();
        let n_ep = graph.endpoints().len();
        let prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, vec![1.0; n_ep]);
        assert_eq!(prep.num_endpoints(), n_ep);
        assert_eq!(prep.maps.shape(), &[3, cfg.grid, cfg.grid]);
        assert_eq!(prep.masks.len(), n_ep);
        assert_eq!(prep.mask_grid, cfg.pooled_grid());
        // Dense materialization matches the sparse storage.
        let idx: Vec<u32> = (0..n_ep as u32).collect();
        let dense = prep.dense_mask_rows(&idx);
        assert_eq!(dense.shape(), &[n_ep, cfg.pooled_grid() * cfg.pooled_grid()]);
        for (r, bins) in prep.masks.iter().enumerate() {
            let ones = dense.row(r).iter().filter(|&&v| v.to_bits() == 1.0f32.to_bits()).count();
            assert_eq!(ones, bins.len());
        }
        assert_eq!(prep.schedule.num_endpoints(), n_ep);
        assert_eq!(prep.name, nl.name);
    }

    #[test]
    #[should_panic(expected = "one target per endpoint")]
    fn target_count_is_checked() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(2, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let _ = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &ModelConfig::tiny(), vec![]);
    }

    fn counter(key: &str) -> u64 {
        rtt_obs::snapshot().counters.get(key).copied().unwrap_or(0)
    }

    /// Chained delta updates (buffer insertion, then a cell move, then a
    /// no-op) each yield a `PreparedDesign` bit-identical to a cold
    /// prepare, and the no-op step recomputes nothing.
    #[test]
    fn delta_update_matches_cold_prepare_bitwise() {
        let lib = CellLibrary::asap7_like();
        let nl0 = ripple_carry_adder(4, &lib);
        let pl0 = place(&nl0, &lib, 0, &PlaceConfig::default());
        let g0 = TimingGraph::build(&nl0, &lib);
        let cfg = ModelConfig::tiny();
        let zeros = |g: &TimingGraph| vec![0.0f32; g.endpoints().len()];

        let (prep0, mut ctx) =
            PreparedDesign::prepare_full(&nl0, &lib, &pl0, &g0, &cfg, zeros(&g0));

        // Step 1: insert a buffer in front of some net sink. Seeds follow
        // the `opt::dirty_seed_pins` contract: pins of the new cell plus
        // sinks of the new/changed net edges.
        let mut nl1 = nl0.clone();
        let mut pl1 = pl0.clone();
        let (net_id, sink) =
            nl1.nets().map(|(id, net)| (id, net.sinks[0])).next().expect("adder has nets");
        nl1.disconnect_sink(net_id, sink).unwrap();
        let buf_ty = lib.pick(rtt_netlist::GateFn::Buf, 1).expect("library has a buffer");
        let (buf, buf_out) = nl1.add_cell("delta_buf", buf_ty, &lib);
        let buf_in = nl1.cell(buf).inputs[0];
        nl1.add_sink(net_id, buf_in).unwrap();
        nl1.connect_net("delta_buf_net", buf_out, &[sink]).unwrap();
        pl1.place_cell(buf, pl1.floorplan().die.center());
        let g1 = TimingGraph::build(&nl1, &lib);
        let seeds = [buf_in, buf_out, sink];
        let prep1 =
            prep0.update(&mut ctx, (&nl0, &pl0), (&nl1, &pl1), &lib, &g1, &cfg, &seeds, zeros(&g1));
        let cold1 = PreparedDesign::prepare(&nl1, &lib, &pl1, &g1, &cfg, zeros(&g1));
        prep1.bit_eq(&cold1).expect("delta after buffer insertion matches cold prepare");

        // Step 2: chained update — move a cell; no structural seeds.
        let mut pl2 = pl1.clone();
        let (victim, _) = nl1.cells().next().expect("adder has cells");
        let die = pl2.floorplan().die;
        pl2.place_cell(victim, rtt_place::Point { x: die.x0 + 1.0, y: die.y1 - 1.0 });
        let prep2 =
            prep1.update(&mut ctx, (&nl1, &pl1), (&nl1, &pl2), &lib, &g1, &cfg, &[], zeros(&g1));
        let cold2 = PreparedDesign::prepare(&nl1, &lib, &pl2, &g1, &cfg, zeros(&g1));
        prep2.bit_eq(&cold2).expect("delta after cell move matches cold prepare");

        // Step 3: no-op update — nothing may be recomputed.
        let before = [
            counter(PREP_MASKS_RECOMPUTED_COUNTER),
            counter(PREP_FEAT_ROWS_RECOMPUTED_COUNTER),
            counter(PREP_MAP_BINS_RECOMPUTED_COUNTER),
        ];
        let prep3 =
            prep2.update(&mut ctx, (&nl1, &pl2), (&nl1, &pl2), &lib, &g1, &cfg, &[], zeros(&g1));
        prep3.bit_eq(&cold2).expect("no-op delta is stable");
        let after = [
            counter(PREP_MASKS_RECOMPUTED_COUNTER),
            counter(PREP_FEAT_ROWS_RECOMPUTED_COUNTER),
            counter(PREP_MAP_BINS_RECOMPUTED_COUNTER),
        ];
        assert_eq!(before, after, "a no-op update must recompute zero masks/rows/bins");
    }

    /// A floorplan change falls back to a cold prepare internally and
    /// still produces a bit-identical result.
    #[test]
    fn delta_update_survives_floorplan_change() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(2, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let cfg = ModelConfig::tiny();
        let zeros = vec![0.0f32; graph.endpoints().len()];
        let (prep, mut ctx) =
            PreparedDesign::prepare_full(&nl, &lib, &pl, &graph, &cfg, zeros.clone());
        // Re-place with a different seed: every cell moves, and the die
        // may differ — exercises the global-invalidation path.
        let pl2 = place(&nl, &lib, 7, &PlaceConfig::default());
        let upd =
            prep.update(&mut ctx, (&nl, &pl), (&nl, &pl2), &lib, &graph, &cfg, &[], zeros.clone());
        let cold = PreparedDesign::prepare(&nl, &lib, &pl2, &graph, &cfg, zeros);
        upd.bit_eq(&cold).expect("update across a re-place matches cold prepare");
    }
}
