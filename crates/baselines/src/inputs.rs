//! Shared training/evaluation inputs for all baselines.

use std::collections::HashMap;

use rtt_netlist::{CellLibrary, Netlist, PinId, TimingGraph};
use rtt_place::Placement;

/// One design's data as a baseline sees it: the *pre-optimization* netlist
/// and placement (the prediction-time inputs) plus sign-off labels that
/// exist only on surviving elements (the semi-supervised adaptation of
/// Section VI-B).
pub struct BaselineInputs<'a> {
    /// Design name (reporting only).
    pub name: &'a str,
    /// The input (pre-optimization) netlist.
    pub netlist: &'a Netlist,
    /// Cell library.
    pub library: &'a CellLibrary,
    /// The input placement.
    pub placement: &'a Placement,
    /// Timing graph of the input netlist.
    pub graph: &'a TimingGraph,
    /// Sign-off net-edge delays for *surviving* edges `(driver, sink)`.
    pub signoff_net_delays: &'a HashMap<(PinId, PinId), f32>,
    /// Sign-off cell-edge delays for *surviving* cells `(input, output)`.
    pub signoff_cell_delays: &'a HashMap<(PinId, PinId), f32>,
    /// Sign-off arrival times at surviving pins.
    pub signoff_arrivals: &'a HashMap<PinId, f32>,
    /// Sign-off endpoint arrivals, aligned with `graph.endpoints()` (the
    /// global prediction target; endpoints always survive).
    pub endpoint_targets: &'a [f32],
}

impl BaselineInputs<'_> {
    /// Number of endpoints.
    pub fn num_endpoints(&self) -> usize {
        self.endpoint_targets.len()
    }

    /// Sign-off *stage* delay for a surviving net edge `(driver, sink)`:
    /// the driver's cell delay (if the driver is a cell output whose cell
    /// survived) plus the net-edge delay. Returns `None` if any piece was
    /// replaced.
    pub fn stage_label(&self, driver: PinId, sink: PinId) -> Option<f32> {
        let net = *self.signoff_net_delays.get(&(driver, sink))?;
        let cell_delay = match self.netlist.pin(driver).cell {
            None => 0.0, // port-driven stage has no cell part
            Some(cid) => {
                let c = self.netlist.cell(cid);
                if self.library.cell_type(c.type_id).is_sequential() {
                    0.0 // launch edge; clk→q is modelled as source time
                } else {
                    // All input arcs share one delay in our model; any arc
                    // that survived carries it.
                    let mut found = None;
                    for &i in &c.inputs {
                        if let Some(&d) = self.signoff_cell_delays.get(&(i, c.output)) {
                            found = Some(d);
                            break;
                        }
                    }
                    found?
                }
            }
        };
        Some(cell_delay + net)
    }
}
