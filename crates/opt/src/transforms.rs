//! The netlist-restructuring transforms.

use std::error::Error;
use std::fmt;

use rtt_netlist::{CellId, CellLibrary, GateFn, NetId, Netlist, NetlistError, PinId};
use rtt_place::{Placement, Point};

/// Errors raised by optimizer transforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// Underlying netlist mutation failed.
    Netlist(NetlistError),
    /// The transform does not apply to this element.
    NotApplicable(&'static str),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Netlist(e) => write!(f, "netlist mutation failed: {e}"),
            Self::NotApplicable(why) => write!(f, "transform not applicable: {why}"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::NotApplicable(_) => None,
        }
    }
}

impl From<NetlistError> for TransformError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// Disconnects `sink` from `net`, removing the net if it becomes empty.
fn disconnect_and_prune(nl: &mut Netlist, net: NetId, sink: PinId) -> Result<(), NetlistError> {
    nl.disconnect_sink(net, sink)?;
    if nl.net(net).is_alive() && nl.net(net).sinks.is_empty() {
        nl.remove_net(net)?;
    }
    Ok(())
}

/// Inserts a buffer between `net`'s driver and one `sink`, at `pos`.
///
/// The sink's direct driver changes, so the original net edge
/// `(driver, sink)` counts as *replaced* in the Table I statistics; the
/// net's other sinks are untouched.
///
/// Returns the new buffer cell (already placed at `pos`).
///
/// # Errors
///
/// Fails if `sink` is not a sink of `net` or the library has no buffer.
pub fn insert_buffer(
    nl: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    net: NetId,
    sink: PinId,
    pos: Point,
) -> Result<CellId, TransformError> {
    if !nl.net(net).is_alive() || !nl.net(net).sinks.contains(&sink) {
        return Err(TransformError::NotApplicable("sink is not on this net"));
    }
    let buf_ty = library
        .pick(GateFn::Buf, 4)
        .or_else(|| library.variants(GateFn::Buf).last().copied())
        .ok_or(TransformError::NotApplicable("library has no buffer"))?;
    let name = format!("opt_buf{}", nl.cell_capacity());
    let (buf, buf_out) = nl.add_cell(name, buf_ty, library);
    let buf_in = nl.cell(buf).inputs[0];
    nl.disconnect_sink(net, sink)?;
    nl.add_sink(net, buf_in)?;
    nl.connect_net(format!("opt_n{}", nl.net_capacity()), buf_out, &[sink])?;
    placement.place_cell(buf, pos);
    Ok(buf)
}

/// Decomposes a 3- or 4-input AND/OR gate into a chain of 2-input gates.
///
/// `inputs_by_arrival` lists the cell's input pins from earliest to latest
/// arrival; the chain is built so the latest signal passes through a single
/// 2-input gate — the timing-driven decomposition of commercial optimizers.
/// The original cell is removed (its cell edges and its output net's net
/// edges count as replaced); new gates are placed at the original position.
///
/// Returns the new cells, first (deepest) to last (driving the output).
///
/// # Errors
///
/// Fails if the gate is not a decomposable AND3/AND4/OR3/OR4, if any pin is
/// unconnected, or if `inputs_by_arrival` does not cover the inputs.
pub fn decompose_gate(
    nl: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    cell: CellId,
    inputs_by_arrival: &[PinId],
) -> Result<Vec<CellId>, TransformError> {
    if !nl.cell(cell).is_alive() {
        return Err(TransformError::NotApplicable("cell already removed"));
    }
    let ty = library.cell_type(nl.cell(cell).type_id);
    let two_input = match ty.gate {
        GateFn::And3 | GateFn::And4 => GateFn::And2,
        GateFn::Or3 | GateFn::Or4 => GateFn::Or2,
        _ => return Err(TransformError::NotApplicable("gate is not AND3/AND4/OR3/OR4")),
    };
    let drive = ty.drive;
    let k = ty.num_inputs();
    {
        let ins = &nl.cell(cell).inputs;
        if inputs_by_arrival.len() != k || !inputs_by_arrival.iter().all(|p| ins.contains(p)) {
            return Err(TransformError::NotApplicable("input order must cover the inputs"));
        }
    }
    let out_pin = nl.cell(cell).output;
    let out_net =
        nl.pin(out_pin).net.ok_or(TransformError::NotApplicable("output is unconnected"))?;

    // Source net of each input, in arrival order.
    let mut sources = Vec::with_capacity(k);
    for &p in inputs_by_arrival {
        let src = nl.pin(p).net.ok_or(TransformError::NotApplicable("input is unconnected"))?;
        sources.push(src);
    }

    // Detach the original cell completely first, using the source nets
    // collected above (same order as `inputs_by_arrival`).
    for (&p, &src) in inputs_by_arrival.iter().zip(&sources) {
        nl.disconnect_sink(src, p)?;
    }
    let out_sinks = nl.net(out_net).sinks.clone();
    nl.remove_net(out_net)?;

    // Build the chain: g0 = f(src0, src1); g_i = f(g_{i-1}, src_{i+1}).
    let ty2 = library
        .pick(two_input, drive)
        .or_else(|| library.variants(two_input).last().copied())
        .ok_or(TransformError::NotApplicable("library has no 2-input variant"))?;
    let base_pos = placement.cell_pos(cell);
    let mut new_cells = Vec::with_capacity(k - 1);
    let mut prev_out: Option<PinId> = None;
    for i in 0..k - 1 {
        let name = format!("opt_dec{}", nl.cell_capacity());
        let (c, o) = nl.add_cell(name, ty2, library);
        let (i0, i1) = (nl.cell(c).inputs[0], nl.cell(c).inputs[1]);
        match prev_out {
            None => {
                nl.add_sink(sources[0], i0)?;
                nl.add_sink(sources[1], i1)?;
            }
            Some(po) => {
                nl.connect_net(format!("opt_n{}", nl.net_capacity()), po, &[i0])?;
                nl.add_sink(sources[i + 1], i1)?;
            }
        }
        // Spread the chain slightly so the cells are not perfectly stacked.
        let jitter = 0.4 * (i as f32 + 1.0);
        placement.place_cell(
            c,
            placement.floorplan().die.clamp(Point::new(base_pos.x + jitter, base_pos.y)),
        );
        prev_out = Some(o);
        new_cells.push(c);
    }
    // k >= 3 (AND3/AND4/OR3/OR4) always creates at least one gate; a miss
    // here is a library-contract bug, reported as a typed error rather
    // than a panic.
    let Some(last_out) = prev_out else {
        return Err(TransformError::NotApplicable("gate has fewer than three inputs"));
    };
    nl.connect_net(format!("opt_n{}", nl.net_capacity()), last_out, &out_sinks)?;

    nl.remove_cell(cell)?;
    Ok(new_cells)
}

/// Bypasses and removes a buffer: its fanout is reconnected to its input
/// net and the cell disappears.
///
/// # Errors
///
/// Fails if `cell` is not a live buffer or its pins are unconnected.
pub fn bypass_repeater(
    nl: &mut Netlist,
    library: &CellLibrary,
    cell: CellId,
) -> Result<(), TransformError> {
    if !nl.cell(cell).is_alive() {
        return Err(TransformError::NotApplicable("cell already removed"));
    }
    if library.cell_type(nl.cell(cell).type_id).gate != GateFn::Buf {
        return Err(TransformError::NotApplicable("cell is not a buffer"));
    }
    let in_pin = nl.cell(cell).inputs[0];
    let out_pin = nl.cell(cell).output;
    let in_net =
        nl.pin(in_pin).net.ok_or(TransformError::NotApplicable("buffer input unconnected"))?;
    if let Some(out_net) = nl.pin(out_pin).net {
        let sinks = nl.net(out_net).sinks.clone();
        nl.remove_net(out_net)?;
        for s in sinks {
            nl.add_sink(in_net, s)?;
        }
    }
    disconnect_and_prune(nl, in_net, in_pin)?;
    nl.remove_cell(cell)?;
    Ok(())
}

/// Bypasses a back-to-back inverter pair `first -> second` (logic identity):
/// the second inverter's fanout reconnects to the first inverter's input
/// net and both cells disappear.
///
/// # Errors
///
/// Fails unless `first` drives only `second`, both are inverters, and all
/// pins are connected.
pub fn bypass_inverter_pair(
    nl: &mut Netlist,
    library: &CellLibrary,
    first: CellId,
    second: CellId,
) -> Result<(), TransformError> {
    for c in [first, second] {
        if !nl.cell(c).is_alive() {
            return Err(TransformError::NotApplicable("cell already removed"));
        }
        if library.cell_type(nl.cell(c).type_id).gate != GateFn::Inv {
            return Err(TransformError::NotApplicable("cell is not an inverter"));
        }
    }
    let mid_net = nl
        .pin(nl.cell(first).output)
        .net
        .ok_or(TransformError::NotApplicable("pair is not connected"))?;
    let second_in = nl.cell(second).inputs[0];
    if nl.net(mid_net).sinks != [second_in] {
        return Err(TransformError::NotApplicable("first inverter has other fanout"));
    }
    let src_pin = nl.cell(first).inputs[0];
    let src_net = nl
        .pin(src_pin)
        .net
        .ok_or(TransformError::NotApplicable("first inverter input unconnected"))?;

    // Move the second inverter's fanout to the source net.
    if let Some(out_net) = nl.pin(nl.cell(second).output).net {
        let sinks = nl.net(out_net).sinks.clone();
        nl.remove_net(out_net)?;
        for s in sinks {
            nl.add_sink(src_net, s)?;
        }
    }
    nl.remove_net(mid_net)?;
    disconnect_and_prune(nl, src_net, src_pin)?;
    nl.remove_cell(first)?;
    nl.remove_cell(second)?;
    Ok(())
}

/// Splits a high-fanout net by moving groups of its farthest sinks behind
/// buffers (the max-fanout DRV fix of commercial flows).
///
/// Each inserted buffer is placed at the centroid of its sink group; the
/// `legal` callback may veto a position (density/macro check) which stops
/// the splitting early. Returns the inserted buffers.
///
/// # Errors
///
/// Fails if the net is dead or the library has no buffer.
pub fn split_high_fanout(
    nl: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    net: NetId,
    max_fanout: usize,
    mut legal: impl FnMut(Point, f32) -> bool,
) -> Result<Vec<CellId>, TransformError> {
    if !nl.net(net).is_alive() {
        return Err(TransformError::NotApplicable("net is dead"));
    }
    let buf_ty = library
        .pick(GateFn::Buf, 4)
        .or_else(|| library.variants(GateFn::Buf).last().copied())
        .ok_or(TransformError::NotApplicable("library has no buffer"))?;
    let buf_area = library.cell_type(buf_ty).area_um2;
    let max_fanout = max_fanout.max(2);
    let mut inserted = Vec::new();

    while nl.net(net).sinks.len() > max_fanout {
        // Farthest sinks first: they benefit most from a repeater.
        let driver_pos = {
            let d = nl.net(net).driver;
            placement.pin_position(nl, d)
        };
        let mut sinks: Vec<(PinId, f32)> = nl
            .net(net)
            .sinks
            .iter()
            .map(|&s| (s, driver_pos.manhattan(placement.pin_position(nl, s))))
            .collect();
        // total_cmp orders identically to partial_cmp on the finite
        // Manhattan distances here, without the unwrap on NaN.
        sinks.sort_by(|a, b| b.1.total_cmp(&a.1));
        let group: Vec<PinId> = sinks.iter().take(max_fanout).map(|(s, _)| *s).collect();
        let centroid = {
            let (mut x, mut y) = (0.0f32, 0.0f32);
            for &s in &group {
                let p = placement.pin_position(nl, s);
                x += p.x;
                y += p.y;
            }
            let n = group.len() as f32;
            placement.floorplan().die.clamp(Point::new(x / n, y / n))
        };
        if !legal(centroid, buf_area) {
            break; // no room: leave the remaining fanout in place
        }
        let name = format!("opt_fbuf{}", nl.cell_capacity());
        let (buf, buf_out) = nl.add_cell(name, buf_ty, library);
        let buf_in = nl.cell(buf).inputs[0];
        for &s in &group {
            nl.disconnect_sink(net, s)?;
        }
        nl.add_sink(net, buf_in)?;
        nl.connect_net(format!("opt_fn{}", nl.net_capacity()), buf_out, &group)?;
        placement.place_cell(buf, centroid);
        inserted.push(buf);
    }
    Ok(inserted)
}

/// Removes combinational cells whose output drives nothing, cascading to
/// newly-orphaned fanin logic (dead-logic sweep after restructuring).
///
/// Returns the number of cells removed.
pub fn prune_dangling(nl: &mut Netlist, library: &CellLibrary) -> usize {
    let mut removed = 0;
    loop {
        let dangling: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| {
                !library.cell_type(c.type_id).is_sequential() && nl.pin(c.output).net.is_none()
            })
            .map(|(id, _)| id)
            .collect();
        if dangling.is_empty() {
            return removed;
        }
        for cid in dangling {
            let inputs = nl.cell(cid).inputs.clone();
            for p in inputs {
                if let Some(net) = nl.pin(p).net {
                    // The pin was just read off this net, so the
                    // disconnect cannot miss.
                    let pruned = disconnect_and_prune(nl, net, p);
                    debug_assert!(pruned.is_ok(), "pin {p} is on net {net}");
                }
            }
            match nl.remove_cell(cid) {
                Ok(_) => removed += 1,
                Err(e) => {
                    // Unreachable by the disconnect loop above; bail out
                    // rather than rediscovering the stuck cell forever.
                    debug_assert!(false, "cell {cid} was fully disconnected: {e:?}");
                    return removed;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::ripple_carry_adder;
    use rtt_netlist::TimingGraph;
    use rtt_place::{place, PlaceConfig};

    fn world() -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        (lib, nl, pl)
    }

    #[test]
    fn buffer_insertion_preserves_validity_and_reach() {
        let (lib, mut nl, mut pl) = world();
        let (net, sink) = {
            let (nid, n) = nl.nets().find(|(_, n)| n.sinks.len() == 1).unwrap();
            (nid, n.sinks[0])
        };
        let cells_before = nl.num_cells();
        let buf = insert_buffer(&mut nl, &mut pl, &lib, net, sink, Point::new(1.0, 1.0)).unwrap();
        assert_eq!(nl.num_cells(), cells_before + 1);
        nl.validate().unwrap();
        // The sink is now driven by the buffer.
        let new_net = nl.pin(sink).net.unwrap();
        assert_eq!(nl.net(new_net).driver, nl.cell(buf).output);
        // Graph still acyclic.
        TimingGraph::try_build(&nl, &lib).unwrap();
    }

    #[test]
    fn buffer_insertion_on_foreign_sink_fails() {
        let (lib, mut nl, mut pl) = world();
        let (net_a, _) = nl.nets().next().unwrap();
        let other_sink = nl.nets().find(|(nid, _)| *nid != net_a).map(|(_, n)| n.sinks[0]).unwrap();
        let r = insert_buffer(&mut nl, &mut pl, &lib, net_a, other_sink, Point::default());
        assert!(matches!(r, Err(TransformError::NotApplicable(_))));
    }

    #[test]
    fn decompose_and4_builds_a_chain() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("d");
        let ports: Vec<_> = (0..4).map(|i| nl.add_input_port(format!("i{i}"))).collect();
        let and4 = lib.pick(GateFn::And4, 2).unwrap();
        let (c, o) = nl.add_cell("u", and4, &lib);
        let ins = nl.cell(c).inputs.clone();
        for (k, (&p, &i)) in ports.iter().zip(ins.iter()).enumerate() {
            nl.connect_net(format!("n{k}"), p, &[i]).unwrap();
        }
        let y = nl.add_output_port("y");
        nl.connect_net("ny", o, &[y]).unwrap();
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());

        let new_cells = decompose_gate(&mut nl, &mut pl, &lib, c, &ins).unwrap();
        assert_eq!(new_cells.len(), 3);
        nl.validate().unwrap();
        assert!(!nl.cell(c).is_alive());
        // All new gates are AND2 at the original drive strength.
        for &nc in &new_cells {
            let t = lib.cell_type(nl.cell(nc).type_id);
            assert_eq!(t.gate, GateFn::And2);
            assert_eq!(t.drive, 2);
        }
        // The output port is now driven by the last gate in the chain.
        let ny = nl.pin(y).net.unwrap();
        assert_eq!(nl.net(ny).driver, nl.cell(*new_cells.last().unwrap()).output);
        // The latest-arrival input (last in order) feeds the last gate.
        let last_in = ins[3];
        let _ = last_in; // arrival ordering is the caller's responsibility
        let g = TimingGraph::try_build(&nl, &lib).unwrap();
        assert!(g.num_nodes() > 0);
    }

    #[test]
    fn decompose_rejects_bad_targets() {
        let (lib, mut nl, mut pl) = world();
        // XOR gates must be rejected.
        let (xor, _) =
            nl.cells().find(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Xor2).unwrap();
        let ins = nl.cell(xor).inputs.clone();
        assert!(matches!(
            decompose_gate(&mut nl, &mut pl, &lib, xor, &ins),
            Err(TransformError::NotApplicable(_))
        ));
    }

    #[test]
    fn bypass_buffer_rewires_fanout() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("b");
        let a = nl.add_input_port("a");
        let buf = lib.pick(GateFn::Buf, 1).unwrap();
        let (c, o) = nl.add_cell("u", buf, &lib);
        let i = nl.cell(c).inputs[0];
        nl.connect_net("ni", a, &[i]).unwrap();
        let y = nl.add_output_port("y");
        let z = nl.add_output_port("z");
        nl.connect_net("no", o, &[y, z]).unwrap();

        bypass_repeater(&mut nl, &lib, c).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.num_cells(), 0);
        // y and z are now driven directly by port a.
        let na = nl.pin(a).net.unwrap();
        assert!(nl.net(na).sinks.contains(&y));
        assert!(nl.net(na).sinks.contains(&z));
    }

    #[test]
    fn bypass_rejects_non_buffers() {
        let (lib, mut nl, _) = world();
        let (xor, _) =
            nl.cells().find(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Xor2).unwrap();
        assert!(matches!(
            bypass_repeater(&mut nl, &lib, xor),
            Err(TransformError::NotApplicable(_))
        ));
    }

    #[test]
    fn inverter_pair_collapse() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("ii");
        let a = nl.add_input_port("a");
        let inv = lib.pick(GateFn::Inv, 1).unwrap();
        let (c1, o1) = nl.add_cell("i1", inv, &lib);
        let (c2, o2) = nl.add_cell("i2", inv, &lib);
        let (p1, p2) = (nl.cell(c1).inputs[0], nl.cell(c2).inputs[0]);
        nl.connect_net("n0", a, &[p1]).unwrap();
        nl.connect_net("n1", o1, &[p2]).unwrap();
        let y = nl.add_output_port("y");
        nl.connect_net("n2", o2, &[y]).unwrap();

        bypass_inverter_pair(&mut nl, &lib, c1, c2).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.num_cells(), 0);
        let na = nl.pin(a).net.unwrap();
        assert_eq!(nl.net(na).sinks, vec![y]);
    }

    #[test]
    fn inverter_pair_requires_exclusive_fanout() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("ii2");
        let a = nl.add_input_port("a");
        let inv = lib.pick(GateFn::Inv, 1).unwrap();
        let (c1, o1) = nl.add_cell("i1", inv, &lib);
        let (c2, _) = nl.add_cell("i2", inv, &lib);
        let (p1, p2) = (nl.cell(c1).inputs[0], nl.cell(c2).inputs[0]);
        nl.connect_net("n0", a, &[p1]).unwrap();
        let extra = nl.add_output_port("e");
        nl.connect_net("n1", o1, &[p2, extra]).unwrap();
        assert!(matches!(
            bypass_inverter_pair(&mut nl, &lib, c1, c2),
            Err(TransformError::NotApplicable(_))
        ));
    }

    #[test]
    fn prune_removes_dead_cones() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("pr");
        let a = nl.add_input_port("a");
        let b = nl.add_input_port("b");
        let and2 = lib.pick(GateFn::And2, 1).unwrap();
        let inv = lib.pick(GateFn::Inv, 1).unwrap();
        // a,b -> AND -> INV -> (nothing)
        let (c_and, o_and) = nl.add_cell("u0", and2, &lib);
        let (c_inv, _o_inv) = nl.add_cell("u1", inv, &lib);
        let (ai, bi) = (nl.cell(c_and).inputs[0], nl.cell(c_and).inputs[1]);
        let ii = nl.cell(c_inv).inputs[0];
        nl.connect_net("na", a, &[ai]).unwrap();
        nl.connect_net("nb", b, &[bi]).unwrap();
        nl.connect_net("nx", o_and, &[ii]).unwrap();
        let removed = prune_dangling(&mut nl, &lib);
        assert_eq!(removed, 2);
        assert_eq!(nl.num_cells(), 0);
        // Input ports lose their nets too.
        assert!(nl.pin(a).net.is_none());
    }
}
