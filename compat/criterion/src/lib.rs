//! An offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so the benchmarking
//! surface this workspace uses is implemented locally: benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! statistical analysis, each benchmark reports the median and minimum of
//! `sample_size` timed samples on stdout.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 12 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark(&id.into().0, self.default_sample_size, f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input` made available to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over `sample_size` samples, adapting the per-sample
    /// iteration count so each sample runs for at least ~2 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration.
        // rtt-lint: allow(D002, reason = "this crate's purpose is wall-clock measurement")
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;
        self.samples.clear();
        for _ in 0..self.sample_size {
            // rtt-lint: allow(D002, reason = "this crate's purpose is wall-clock measurement")
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    b.samples.sort_unstable();
    let (median, min) = if b.samples.is_empty() {
        (Duration::ZERO, Duration::ZERO)
    } else {
        (b.samples[b.samples.len() / 2], b.samples[0])
    };
    println!("bench {label:<48} median {median:>12.3?}  min {min:>12.3?}  (n={sample_size})");
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
