//! A small hand-structured circuit used by examples and tests.

use rtt_netlist::{CellLibrary, GateFn, Netlist};

/// Builds an `n`-bit ripple-carry adder with registered outputs.
///
/// Unlike the random generator, this circuit has a known exact structure —
/// the critical path is the carry chain — which makes it a good smoke-test
/// workload for the STA engine, the optimizer, and the examples.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder(bits: usize, library: &CellLibrary) -> Netlist {
    assert!(bits > 0, "adder needs at least one bit");
    let mut nl = Netlist::new(format!("rca{bits}"));
    let xor = library.pick(GateFn::Xor2, 1).expect("XOR2_X1");
    let and = library.pick(GateFn::And2, 1).expect("AND2_X1");
    let or = library.pick(GateFn::Or2, 1).expect("OR2_X1");
    let dff = library.pick(GateFn::Dff, 1).expect("DFF_X1");

    let mut carry = nl.add_input_port("cin");
    for b in 0..bits {
        let a = nl.add_input_port(format!("a{b}"));
        let c = nl.add_input_port(format!("b{b}"));

        // p = a ^ b ; s = p ^ cin ; g = a & b ; t = p & cin ; cout = g | t
        let (xp, xp_o) = nl.add_cell(format!("xp{b}"), xor, library);
        let (xs, xs_o) = nl.add_cell(format!("xs{b}"), xor, library);
        let (ag, ag_o) = nl.add_cell(format!("ag{b}"), and, library);
        let (at, at_o) = nl.add_cell(format!("at{b}"), and, library);
        let (oc, oc_o) = nl.add_cell(format!("oc{b}"), or, library);
        let (rs, rs_q) = nl.add_cell(format!("rs{b}"), dff, library);

        let (xp_i0, xp_i1) = (nl.cell(xp).inputs[0], nl.cell(xp).inputs[1]);
        let (xs_i0, xs_i1) = (nl.cell(xs).inputs[0], nl.cell(xs).inputs[1]);
        let (ag_i0, ag_i1) = (nl.cell(ag).inputs[0], nl.cell(ag).inputs[1]);
        let (at_i0, at_i1) = (nl.cell(at).inputs[0], nl.cell(at).inputs[1]);
        let (oc_i0, oc_i1) = (nl.cell(oc).inputs[0], nl.cell(oc).inputs[1]);
        let rs_d = nl.cell(rs).inputs[0];

        nl.connect_net(format!("na{b}"), a, &[xp_i0, ag_i0]).expect("fresh pins");
        nl.connect_net(format!("nb{b}"), c, &[xp_i1, ag_i1]).expect("fresh pins");
        nl.connect_net(format!("np{b}"), xp_o, &[xs_i0, at_i0]).expect("fresh pins");
        nl.connect_net(format!("nc{b}"), carry, &[xs_i1, at_i1]).expect("fresh pins");
        nl.connect_net(format!("ng{b}"), ag_o, &[oc_i0]).expect("fresh pins");
        nl.connect_net(format!("nt{b}"), at_o, &[oc_i1]).expect("fresh pins");
        nl.connect_net(format!("ns{b}"), xs_o, &[rs_d]).expect("fresh pins");
        let so = nl.add_output_port(format!("s{b}"));
        nl.connect_net(format!("nq{b}"), rs_q, &[so]).expect("fresh pins");
        carry = oc_o;
    }
    let cout = nl.add_output_port("cout");
    nl.connect_net("ncout", carry, &[cout]).expect("fresh pins");
    nl.validate().expect("adder is structurally valid");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_netlist::TimingGraph;

    #[test]
    fn adder_structure() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(8, &lib);
        // 5 gates + 1 flop per bit
        assert_eq!(nl.num_cells(), 8 * 6);
        let g = TimingGraph::build(&nl, &lib);
        // endpoints: 8 flop D pins + 8 registered outputs + cout
        assert_eq!(g.endpoints().len(), 17);
    }

    #[test]
    fn carry_chain_sets_the_depth() {
        let lib = CellLibrary::asap7_like();
        let g4 = TimingGraph::build(&ripple_carry_adder(4, &lib), &lib);
        let g8 = TimingGraph::build(&ripple_carry_adder(8, &lib), &lib);
        assert!(g8.max_level() > g4.max_level());
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let lib = CellLibrary::asap7_like();
        let _ = ripple_carry_adder(0, &lib);
    }
}
