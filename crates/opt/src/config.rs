//! Optimizer configuration and result report.

/// Configuration of the timing optimizer.
#[derive(Clone, Debug, PartialEq)]
pub struct OptConfig {
    /// Clock period the optimizer closes timing against, ps.
    pub clock_period_ps: f32,
    /// Maximum optimization passes (each pass = STA + transforms).
    pub max_passes: usize,
    /// Fraction of the worst endpoints attacked per pass.
    pub endpoint_fraction: f32,
    /// Bin utilization above which gate insertion/growth is illegal.
    pub density_limit: f32,
    /// Resolution of the legality density grid.
    pub legality_grid: usize,
    /// Net edges longer than this many µm are buffering candidates (and
    /// repeaters whose bridged wire would stay shorter are bypass
    /// candidates). The default is the break-even length `√(2·t_buf/(r·c))`
    /// of the default wire parasitics.
    pub buffer_length_um: f32,
    /// Enable the design-wide DRV-fixing stage (max-length and max-fanout
    /// buffering) that runs before slack-driven optimization, exactly as in
    /// commercial flows. It is the largest source of netlist restructuring.
    pub drv_fixing: bool,
    /// Maximum legal fanout before a net is split behind buffers.
    pub max_fanout: usize,
    /// Enable structure-preserved gate sizing.
    pub sizing: bool,
    /// Enable the post-closure area/leakage recovery stage: downsize cells
    /// with comfortable positive slack. Structure-preserved, but it churns
    /// the delays of the *non-critical* majority of the netlist — a major
    /// contributor to the paper's Δdelay on unreplaced elements.
    pub area_recovery: bool,
    /// Enable buffer insertion (structure-destructed).
    pub buffering: bool,
    /// Enable gate decomposition (structure-destructed).
    pub decomposition: bool,
    /// Enable repeater bypass (structure-destructed).
    pub bypass: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            clock_period_ps: 400.0,
            max_passes: 6,
            endpoint_fraction: 1.0,
            density_limit: 0.80,
            legality_grid: 24,
            buffer_length_um: 30.0,
            drv_fixing: true,
            max_fanout: 8,
            sizing: true,
            area_recovery: true,
            buffering: true,
            decomposition: true,
            bypass: true,
        }
    }
}

impl OptConfig {
    /// A structure-preserved-only configuration (sizing only), used by
    /// ablations.
    pub fn sizing_only(clock_period_ps: f32) -> Self {
        Self {
            clock_period_ps,
            drv_fixing: false,
            buffering: false,
            decomposition: false,
            bypass: false,
            ..Self::default()
        }
    }
}

/// What the optimizer did and what it achieved.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptReport {
    /// Passes actually executed.
    pub passes: usize,
    /// Structure-preserved upsizing operations.
    pub sizing_ops: usize,
    /// Area-recovery downsizing operations.
    pub downsize_ops: usize,
    /// Buffers inserted by the DRV-fixing stage.
    pub drv_buffer_ops: usize,
    /// Buffers inserted on critical paths.
    pub buffer_ops: usize,
    /// Gates decomposed.
    pub decompose_ops: usize,
    /// Repeaters bypassed.
    pub bypass_ops: usize,
    /// Transforms rejected because the target bin was too dense.
    pub blocked_by_density: usize,
    /// Transforms rejected because the target position was inside a macro.
    pub blocked_by_macro: usize,
    /// Sign-off WNS before optimization, ps.
    pub wns_before: f32,
    /// Sign-off WNS after optimization, ps.
    pub wns_after: f32,
    /// Sign-off TNS before optimization, ps.
    pub tns_before: f32,
    /// Sign-off TNS after optimization, ps.
    pub tns_after: f32,
}

impl OptReport {
    /// Total structure-destructing operations.
    pub fn destructive_ops(&self) -> usize {
        self.drv_buffer_ops + self.buffer_ops + self.decompose_ops + self.bypass_ops
    }

    /// Total operations of any kind.
    pub fn total_ops(&self) -> usize {
        self.destructive_ops() + self.sizing_ops + self.downsize_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_transforms() {
        let c = OptConfig::default();
        assert!(c.sizing && c.buffering && c.decomposition && c.bypass);
    }

    #[test]
    fn sizing_only_disables_destruction() {
        let c = OptConfig::sizing_only(250.0);
        assert!(c.sizing);
        assert!(!c.buffering && !c.decomposition && !c.bypass);
        assert_eq!(c.clock_period_ps, 250.0);
    }

    #[test]
    fn report_op_arithmetic() {
        let r = OptReport {
            sizing_ops: 3,
            buffer_ops: 2,
            decompose_ops: 1,
            bypass_ops: 4,
            ..OptReport::default()
        };
        assert_eq!(r.destructive_ops(), 7);
        assert_eq!(r.total_ops(), 10);
    }
}
