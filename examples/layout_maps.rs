//! Extracts and visualizes the three layout feature maps of Fig. 5 for a
//! design with macros, as ASCII heat maps and PGM images.
//!
//! ```sh
//! cargo run --release --example layout_maps
//! ```

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use restructure_timing::prelude::*;

fn ascii(grid: &restructure_timing::place::Grid, title: &str) {
    const RAMP: [char; 6] = [' ', '░', '▒', '▓', '█', '█'];
    println!("\n{title} ({}×{}):", grid.width(), grid.height());
    let max = grid.max().max(f32::MIN_POSITIVE);
    for y in (0..grid.height()).rev() {
        let mut line = String::new();
        for x in 0..grid.width() {
            let v = grid.at(x, y) / max;
            let idx = ((v * 4.0).ceil() as usize).min(5);
            line.push(RAMP[idx]);
        }
        println!("  {line}");
    }
}

fn main() {
    let lib = CellLibrary::asap7_like();
    let design = preset("rocket", Scale::Tiny).expect("known preset").generate(&lib);
    let placement = place(&design.netlist, &lib, 2, &PlaceConfig::default());
    let maps = LayoutMaps::extract(&design.netlist, &lib, &placement, 32);

    println!(
        "design {}: {} cells on a {:.0}×{:.0} µm die, {} macros",
        design.netlist.name,
        design.netlist.num_cells(),
        placement.floorplan().die.width(),
        placement.floorplan().die.height(),
        placement.floorplan().macros.len()
    );
    ascii(&maps.density, "cell density");
    ascii(&maps.rudy, "RUDY (wire density estimate)");
    ascii(&maps.macros, "macro region");

    let out = std::path::Path::new("results/layout_maps");
    std::fs::create_dir_all(out).expect("create output dir");
    for (name, map) in [("density", &maps.density), ("rudy", &maps.rudy), ("macros", &maps.macros)]
    {
        let mut img = map.clone();
        img.normalize_max();
        let path = out.join(format!("{name}.pgm"));
        std::fs::write(&path, img.to_pgm()).expect("write image");
        println!("wrote {}", path.display());
    }
}
