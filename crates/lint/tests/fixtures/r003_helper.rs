//! Shared callee file for the r003 fixtures: one panicking helper (a
//! map index aborts on a missing key), one safe helper.

pub fn helper_lookup() -> u32 {
    let cache = std::collections::BTreeMap::new();
    cache[&3u32]
}

pub fn helper_safe() -> u32 {
    7
}
