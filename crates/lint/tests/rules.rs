//! Fixture-based positive/negative tests: every rule id must fire on its
//! positive fixture and stay silent on its negative one.

use rtt_lint::{lint_source, FileContext, FileKind, Rule};

/// Context of a library file in a determinism-critical crate — the
/// strictest setting, so every rule is active.
fn strict_ctx() -> FileContext {
    FileContext {
        path: "crates/sta/src/fixture.rs".to_owned(),
        crate_name: "sta".to_owned(),
        determinism_critical: true,
        kind: FileKind::Lib,
    }
}

fn findings_of(source: &str, rule: Rule) -> usize {
    lint_source(source, &strict_ctx()).findings.iter().filter(|f| f.rule == rule).count()
}

macro_rules! fixture_case {
    ($name:ident, $rule:expr, $pos:literal, $neg:literal, $expect_pos:expr) => {
        #[test]
        fn $name() {
            let pos = include_str!(concat!("fixtures/", $pos));
            let neg = include_str!(concat!("fixtures/", $neg));
            let hits = findings_of(pos, $rule);
            assert_eq!(
                hits, $expect_pos,
                "{} should fire {} times on {}",
                $rule, $expect_pos, $pos
            );
            assert_eq!(findings_of(neg, $rule), 0, "{} must stay silent on {}", $rule, $neg);
        }
    };
}

fixture_case!(d001_hash_iteration, Rule::D001, "d001_pos.rs", "d001_neg.rs", 5);
fixture_case!(d002_ambient_entropy, Rule::D002, "d002_pos.rs", "d002_neg.rs", 3);
fixture_case!(d003_float_equality, Rule::D003, "d003_pos.rs", "d003_neg.rs", 4);
fixture_case!(d004_par_reduction, Rule::D004, "d004_pos.rs", "d004_neg.rs", 2);
fixture_case!(r001_unwrap_expect, Rule::R001, "r001_pos.rs", "r001_neg.rs", 2);
fixture_case!(r002_panic_macros, Rule::R002, "r002_pos.rs", "r002_neg.rs", 3);
fixture_case!(u001_unsafe_no_comment, Rule::U001, "u001_pos.rs", "u001_neg.rs", 1);

/// The reachability rules (R003/P001/P002) need the call graph, so their
/// fixtures go through `lint_files` — with each file in a different crate
/// to keep the resolution cross-crate — instead of `lint_source`.
fn graph_rule_findings(files: &[(&str, &str)], rule: Rule) -> usize {
    let ctxs: Vec<(FileContext, &str)> = files
        .iter()
        .map(|(path, src)| {
            let crate_name = path.split('/').nth(1).unwrap_or("nn").to_owned();
            let ctx = FileContext {
                path: (*path).to_owned(),
                crate_name,
                determinism_critical: false,
                kind: FileKind::Lib,
            };
            (ctx, *src)
        })
        .collect();
    rtt_lint::lint_files(&ctxs).findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn r003_fixture_panic_reachability_is_cross_crate() {
    let pos = include_str!("fixtures/r003_pos.rs");
    let neg = include_str!("fixtures/r003_neg.rs");
    let helper = include_str!("fixtures/r003_helper.rs");
    assert_eq!(
        graph_rule_findings(
            &[("crates/nn/src/r003_pos.rs", pos), ("crates/core/src/r003_helper.rs", helper)],
            Rule::R003,
        ),
        1,
        "entry -> helper_lookup -> map index must be reported once"
    );
    assert_eq!(
        graph_rule_findings(
            &[("crates/nn/src/r003_neg.rs", neg), ("crates/core/src/r003_helper.rs", helper)],
            Rule::R003,
        ),
        0,
        "an unreached panic site must stay silent"
    );
}

#[test]
fn p001_fixture_flags_hot_allocations_only() {
    let pos = include_str!("fixtures/p001_pos.rs");
    let neg = include_str!("fixtures/p001_neg.rs");
    assert_eq!(
        graph_rule_findings(&[("crates/nn/src/p001_pos.rs", pos)], Rule::P001),
        2,
        "both the direct to_vec and the reachable push must be reported"
    );
    assert_eq!(
        graph_rule_findings(&[("crates/nn/src/p001_neg.rs", neg)], Rule::P001),
        0,
        "allocation in a cold fn must stay silent"
    );
}

#[test]
fn p002_fixture_wants_hoisted_length_asserts() {
    let pos = include_str!("fixtures/p002_pos.rs");
    let neg = include_str!("fixtures/p002_neg.rs");
    assert!(
        graph_rule_findings(&[("crates/nn/src/p002_pos.rs", pos)], Rule::P002) >= 1,
        "unguarded indexing in the hot inner loop must be reported"
    );
    assert_eq!(
        graph_rule_findings(&[("crates/nn/src/p002_neg.rs", neg)], Rule::P002),
        0,
        "a hoisted assert_eq on the indexed slices must satisfy the rule"
    );
}

#[test]
fn negative_fixtures_are_fully_clean() {
    for (name, neg) in [
        ("d001", include_str!("fixtures/d001_neg.rs")),
        ("d002", include_str!("fixtures/d002_neg.rs")),
        ("d003", include_str!("fixtures/d003_neg.rs")),
        ("d004", include_str!("fixtures/d004_neg.rs")),
        ("r001", include_str!("fixtures/r001_neg.rs")),
        ("r002", include_str!("fixtures/r002_neg.rs")),
        ("u001", include_str!("fixtures/u001_neg.rs")),
    ] {
        let report = lint_source(neg, &strict_ctx());
        assert!(
            report.findings.is_empty(),
            "{name}_neg.rs must pass every rule, got {:?}",
            report.findings
        );
    }
}

#[test]
fn relaxed_contexts_disable_the_right_rules() {
    let pos_d001 = include_str!("fixtures/d001_pos.rs");
    let mut ctx = strict_ctx();
    ctx.crate_name = "place".to_owned();
    ctx.determinism_critical = false;
    assert!(
        lint_source(pos_d001, &ctx).findings.iter().all(|f| f.rule != Rule::D001),
        "D001 only applies to determinism-critical crates"
    );

    let pos_r001 = include_str!("fixtures/r001_pos.rs");
    for kind in [FileKind::Bin, FileKind::Test, FileKind::Example, FileKind::Bench] {
        let mut ctx = strict_ctx();
        ctx.kind = kind;
        assert!(
            lint_source(pos_r001, &ctx).findings.iter().all(|f| f.rule != Rule::R001),
            "R001 must be silent in {kind:?} files"
        );
    }
}

#[test]
fn inline_suppression_covers_positive_fixture_lines() {
    // Suppressing U001 on the unsafe line silences the only finding.
    let src = "pub fn f(x: u32) -> f32 {\n\
               // rtt-lint: allow(U001, reason = \"transmute of pod types\")\n\
               unsafe { std::mem::transmute(x) }\n}\n";
    let report = lint_source(src, &strict_ctx());
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed_inline, 1);
}
