//! Pure forward kernels shared by the autodiff tape and the tape-free
//! inference engine.
//!
//! Every function here is a pure function of its inputs that writes into a
//! caller-provided output tensor, resized in place so its allocation is
//! reused. [`crate::Tape`] calls these to produce the forward value of
//! every node it records; [`crate::InferCtx`] calls the *same* functions
//! with recycled arena buffers. That single-implementation rule is what
//! makes the two execution backends bit-identical by construction: each
//! kernel has one accumulation order, fixed regardless of thread count
//! (see the determinism notes on the individual functions).
//!
//! Ops that record auxiliary state for the backward pass ([`segment_max`],
//! [`maxpool2d`]) always compute it — the tape keeps the argmax on the
//! node, the inference engine hands in a scratch buffer it recycles — so
//! the reduction loop itself stays identical between backends.

use rayon::prelude::*;

use crate::parallel;
use crate::Tensor;

/// Output-element count above which gather and segment ops fan out.
const GATHER_PAR_ELEMS: usize = 1 << 14;

/// Matrix product `a · b` (delegates to the blocked/parallel
/// [`Tensor::matmul_into`] kernel).
///
/// # Panics
///
/// Panics if inner dimensions mismatch.
// rtt-lint: hot
pub fn matmul(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    a.matmul_into(b, out);
}

/// Elementwise sum (same shape).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    out.copy_from(a);
    out.add_assign(b);
}

/// Adds a rank-1 row vector to every row of a matrix (bias add).
///
/// # Panics
///
/// Panics if `row.len() != a.cols()`.
pub fn add_row(a: &Tensor, row: &Tensor, out: &mut Tensor) {
    assert_eq!(a.cols(), row.len(), "bias width mismatch");
    out.copy_from(a);
    let n = row.len();
    for (i, x) in out.data_mut().iter_mut().enumerate() {
        *x += row.data()[i % n];
    }
}

/// Adds a per-channel bias `[C]` to a feature map `[C, H, W]`.
///
/// # Panics
///
/// Panics if `bias.len() != C`.
pub fn add_channel(x: &Tensor, bias: &Tensor, out: &mut Tensor) {
    let (c, h, w) = rank3(x);
    assert_eq!(bias.len(), c, "one bias per channel");
    out.copy_from(x);
    for ch in 0..c {
        for p in &mut out.data_mut()[ch * h * w..(ch + 1) * h * w] {
            *p += bias.data()[ch];
        }
    }
}

/// Elementwise difference (same shape).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn sub(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape(), "sub shape mismatch");
    out.copy_from(a);
    for (x, y) in out.data_mut().iter_mut().zip(b.data()) {
        *x -= y;
    }
}

/// Elementwise (Hadamard) product — the paper's Equation 6 masking.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mul(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape(), "mul shape mismatch");
    out.copy_from(a);
    for (x, y) in out.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
}

/// Multiplies every row of a matrix by a rank-1 vector (broadcast
/// Hadamard — each endpoint mask row times the shared layout map).
///
/// # Panics
///
/// Panics if `row.len() != a.cols()`.
pub fn mul_row(a: &Tensor, row: &Tensor, out: &mut Tensor) {
    assert_eq!(a.cols(), row.len(), "row width mismatch");
    out.copy_from(a);
    let n = row.len();
    for (i, x) in out.data_mut().iter_mut().enumerate() {
        *x *= row.data()[i % n];
    }
}

/// Scalar multiple.
pub fn scale(a: &Tensor, s: f32, out: &mut Tensor) {
    out.copy_from(a);
    out.scale_assign(s);
}

/// Rectified linear unit.
pub fn relu(x: &Tensor, out: &mut Tensor) {
    out.copy_from(x);
    for v in out.data_mut() {
        *v = v.max(0.0);
    }
}

/// Hyperbolic tangent.
pub fn tanh(x: &Tensor, out: &mut Tensor) {
    out.copy_from(x);
    for v in out.data_mut() {
        *v = v.tanh();
    }
}

/// Reshaped copy with identical element count.
///
/// # Panics
///
/// Panics if volumes differ.
pub fn reshape(x: &Tensor, shape: &[usize], out: &mut Tensor) {
    out.copy_from(x);
    out.reshape_in_place(shape);
}

/// Mean of all elements (scalar `[1]` output).
pub fn mean(x: &Tensor, out: &mut Tensor) {
    out.reset(&[1], x.sum() / x.len() as f32);
}

/// Selects rows `idx` from matrix `src`.
///
/// # Panics
///
/// Panics if an index is out of range or `src` is not a matrix.
pub fn gather_rows(src: &Tensor, idx: &[u32], out: &mut Tensor) {
    let d = src.cols();
    out.reset(&[idx.len().max(1), d], 0.0);
    if parallel::should_parallelize(idx.len() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(i, row)| {
            if i < idx.len() {
                row.copy_from_slice(src.row(idx[i] as usize));
            }
        });
    } else {
        for (i, &r) in idx.iter().enumerate() {
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(src.row(r as usize));
        }
    }
}

/// Selects rows from several source matrices: entry `(s, r)` takes row
/// `r` of `sources[s]`. All sources must share a column count. This is
/// the workhorse of levelized message passing — predecessors of a
/// topological level live in many earlier level matrices.
///
/// # Panics
///
/// Panics on empty `sources`, mismatched columns, or bad indices.
pub fn gather_multi(sources: &[&Tensor], index: &[(u32, u32)], out: &mut Tensor) {
    assert!(!sources.is_empty(), "gather_multi needs sources");
    let d = sources[0].cols();
    for s in sources {
        assert_eq!(s.cols(), d, "sources must share columns");
    }
    out.reset(&[index.len().max(1), d], 0.0);
    if parallel::should_parallelize(index.len() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(i, row)| {
            if i < index.len() {
                let (s, r) = index[i];
                row.copy_from_slice(sources[s as usize].row(r as usize));
            }
        });
    } else {
        for (i, &(s, r)) in index.iter().enumerate() {
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(sources[s as usize].row(r as usize));
        }
    }
}

/// Per-segment column-wise maximum: rows of `src` with equal `seg` value
/// reduce into one output row (the paper's `max` aggregation for cell
/// nodes). Empty segments produce zero rows. `argmax` records the winning
/// source row per output element (`-1` for empty segments) for the
/// backward pass; it is always computed so the reduction loop is the same
/// on every backend.
///
/// # Panics
///
/// Panics if `seg.len() != src.rows()` or a segment id `>= num_segments`.
pub fn segment_max(
    src: &Tensor,
    seg: &[u32],
    num_segments: usize,
    out: &mut Tensor,
    argmax: &mut Vec<i64>,
) {
    assert_eq!(seg.len(), src.rows(), "one segment id per row");
    let d = src.cols();
    out.reset(&[num_segments.max(1), d], f32::NEG_INFINITY);
    argmax.clear();
    argmax.resize(num_segments.max(1) * d, -1i64);
    if let Some(runs) = sorted_segment_runs(seg, num_segments) {
        if parallel::should_parallelize(seg.len() * d, GATHER_PAR_ELEMS) {
            // Each segment owns one output row; rows within a run are
            // scanned in ascending order, exactly as the serial loop
            // visits them, so results (and argmax tie-breaks) match.
            let reduced: Vec<(Vec<f32>, Vec<i64>)> = runs
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut best = vec![f32::NEG_INFINITY; d];
                    let mut arg = vec![-1i64; d];
                    for r in lo..hi {
                        for (c, (bv, av)) in best.iter_mut().zip(&mut arg).enumerate() {
                            let v = src.at(r, c);
                            if v > *bv {
                                *bv = v;
                                *av = r as i64;
                            }
                        }
                    }
                    (best, arg)
                })
                .collect();
            for (s, (best, arg)) in reduced.into_iter().enumerate() {
                out.data_mut()[s * d..(s + 1) * d].copy_from_slice(&best);
                argmax[s * d..(s + 1) * d].copy_from_slice(&arg);
            }
        } else {
            for (s, &(lo, hi)) in runs.iter().enumerate() {
                for r in lo..hi {
                    for c in 0..d {
                        let v = src.at(r, c);
                        if v > out.at(s, c) {
                            out.data_mut()[s * d + c] = v;
                            argmax[s * d + c] = r as i64;
                        }
                    }
                }
            }
        }
    } else {
        for (r, &s) in seg.iter().enumerate() {
            let s = s as usize;
            assert!(s < num_segments, "segment id out of range");
            for c in 0..d {
                let v = src.at(r, c);
                if v > out.at(s, c) {
                    out.data_mut()[s * d + c] = v;
                    argmax[s * d + c] = r as i64;
                }
            }
        }
    }
    for (o, a) in out.data_mut().iter_mut().zip(argmax.iter()) {
        if *a < 0 {
            *o = 0.0; // empty segment
        }
    }
}

/// Per-segment column-wise sum (used with `scale_rows` for the
/// mean-aggregation ablation).
///
/// # Panics
///
/// Panics if `seg.len() != src.rows()` or a segment id `>= num_segments`.
pub fn segment_sum(src: &Tensor, seg: &[u32], num_segments: usize, out: &mut Tensor) {
    assert_eq!(seg.len(), src.rows(), "one segment id per row");
    let d = src.cols();
    out.reset(&[num_segments.max(1), d], 0.0);
    if let Some(runs) = sorted_segment_runs(seg, num_segments) {
        if parallel::should_parallelize(seg.len() * d, GATHER_PAR_ELEMS) {
            // Rows within a run accumulate in ascending order — the
            // same order the serial scan uses — so sums are
            // bit-identical across thread counts.
            let reduced: Vec<Vec<f32>> = runs
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut acc = vec![0.0f32; d];
                    for r in lo..hi {
                        for (a, v) in acc.iter_mut().zip(src.row(r)) {
                            *a += v;
                        }
                    }
                    acc
                })
                .collect();
            for (s, acc) in reduced.into_iter().enumerate() {
                out.data_mut()[s * d..(s + 1) * d].copy_from_slice(&acc);
            }
        } else {
            for (s, &(lo, hi)) in runs.iter().enumerate() {
                for r in lo..hi {
                    for c in 0..d {
                        out.data_mut()[s * d + c] += src.at(r, c);
                    }
                }
            }
        }
    } else {
        for (r, &s) in seg.iter().enumerate() {
            let s = s as usize;
            assert!(s < num_segments, "segment id out of range");
            for c in 0..d {
                out.data_mut()[s * d + c] += src.at(r, c);
            }
        }
    }
}

/// Multiplies each row of `src` by a constant factor.
///
/// # Panics
///
/// Panics if `factors.len() != src.rows()`.
pub fn scale_rows(src: &Tensor, factors: &[f32], out: &mut Tensor) {
    assert_eq!(factors.len(), src.rows());
    let d = src.cols();
    out.copy_from(src);
    for (r, &f) in factors.iter().enumerate() {
        for v in &mut out.data_mut()[r * d..(r + 1) * d] {
            *v *= f;
        }
    }
}

/// Stacks `a` above `b` (matrices with equal column counts).
///
/// # Panics
///
/// Panics on column mismatch.
pub fn concat_rows(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.cols(), b.cols(), "concat_rows column mismatch");
    let na = a.len();
    out.reset(&[a.rows() + b.rows(), a.cols()], 0.0);
    out.data_mut()[..na].copy_from_slice(a.data());
    out.data_mut()[na..].copy_from_slice(b.data());
}

/// Concatenates `a` and `b` side by side (matrices with equal rows) —
/// the paper's multimodal fusion `[v_n ; v_l]`.
///
/// # Panics
///
/// Panics on row mismatch.
// rtt-lint: hot
pub fn concat_cols(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.rows(), b.rows(), "concat_cols row mismatch");
    let (m, p, q) = (a.rows(), a.cols(), b.cols());
    out.reset(&[m, p + q], 0.0);
    for r in 0..m {
        out.data_mut()[r * (p + q)..r * (p + q) + p].copy_from_slice(a.row(r));
        out.data_mut()[r * (p + q) + p..(r + 1) * (p + q)].copy_from_slice(b.row(r));
    }
}

/// 2-D convolution, stride 1: `x` is `[C_in, H, W]`, `w` is
/// `[C_out, C_in, kh, kw]`, output `[C_out, H', W']` with
/// `H' = H + 2·pad - kh + 1`. `col` is the im2col scratch matrix, handed
/// in so the inference arena can recycle it across calls.
///
/// # Panics
///
/// Panics on rank/shape mismatch or if the kernel exceeds the padded
/// input.
// rtt-lint: hot
pub fn conv2d(x: &Tensor, w: &Tensor, pad: usize, col: &mut Tensor, out: &mut Tensor) {
    let (cin, h, wd) = rank3(x);
    let ws = w.shape();
    assert_eq!(ws.len(), 4, "weight must be [Cout,Cin,kh,kw]");
    let (cout, wcin, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
    assert_eq!(cin, wcin, "channel mismatch");
    let oh = h + 2 * pad + 1 - kh;
    let ow = wd + 2 * pad + 1 - kw;
    static CONV2D_CALLS: rtt_obs::Counter = rtt_obs::Counter::new("nn::conv2d_calls");
    static CONV2D_FLOPS: rtt_obs::Counter = rtt_obs::Counter::new("nn::conv2d_flops");
    CONV2D_CALLS.add(1);
    CONV2D_FLOPS.add(2 * (cout * cin * kh * kw * oh * ow) as u64);
    // im2col: the convolution becomes one dense [cout, cin·kh·kw] ×
    // [cin·kh·kw, oh·ow] product, which reuses the blocked/parallel matmul.
    // Products accumulate in the same (ci, ky, kx) order as a direct loop
    // (padding taps contribute exact zeros), so values match the naive
    // kernel.
    im2col(x, kh, kw, pad, oh, ow, col);
    // The [Cout, Cin, kh, kw] weight is already laid out row-major as the
    // [Cout, Cin·kh·kw] matrix the product needs — multiply through the
    // shape-only view instead of copying the weights every call.
    w.matmul_view_into(cout, cin * kh * kw, col, out);
    out.reshape_in_place(&[cout, oh, ow]);
}

/// Max pooling with a square window and equal stride over `[C, H, W]`.
/// `argmax` records the winning input index per output element for the
/// backward pass; it is always computed so the loop is backend-invariant.
///
/// # Panics
///
/// Panics if `size` does not divide H and W.
// rtt-lint: hot
pub fn maxpool2d(x: &Tensor, size: usize, out: &mut Tensor, argmax: &mut Vec<u32>) {
    let (c, h, w) = rank3(x);
    assert!(size > 0 && h % size == 0 && w % size == 0, "pool must tile the map");
    let (oh, ow) = (h / size, w / size);
    out.reset(&[c, oh, ow], f32::NEG_INFINITY);
    argmax.clear();
    // rtt-lint: allow(P001, reason = "argmax scratch warms once; clear+resize reuses capacity")
    argmax.resize(c * oh * ow, 0u32);
    // Pin the scratch length so LLVM can hoist the `argmax[oi]` bounds
    // check out of the window loop.
    assert_eq!(argmax.len(), c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let oi = ch * oh * ow + oy * ow + ox;
                for dy in 0..size {
                    for dx in 0..size {
                        let (iy, ix) = (oy * size + dy, ox * size + dx);
                        let ii = ch * h * w + iy * w + ix;
                        let v = x.data()[ii];
                        if v > out.data()[oi] {
                            out.data_mut()[oi] = v;
                            argmax[oi] = ii as u32;
                        }
                    }
                }
            }
        }
    }
}

/// Selects rows `idx` from matrix `src` without pre-filling the output:
/// the shape is exactly `[idx.len(), d]` and every row is overwritten, so
/// the zero-fill of [`gather_rows`] is skipped. Empty `idx` produces the
/// same `[1, d]` zero row as [`gather_rows`]. Values are bit-identical to
/// [`gather_rows`].
///
/// # Panics
///
/// Panics if an index is out of range or `src` is not a matrix.
// rtt-lint: hot
pub fn gather_rows_flat(src: &Tensor, idx: &[u32], out: &mut Tensor) {
    let d = src.cols();
    if idx.is_empty() {
        out.reset(&[1, d], 0.0);
        return;
    }
    out.reset_for_overwrite(&[idx.len(), d]);
    if parallel::should_parallelize(idx.len() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(i, row)| {
            row.copy_from_slice(src.row(idx[i] as usize));
        });
    } else {
        for (i, &r) in idx.iter().enumerate() {
            out.data_mut()[i * d..(i + 1) * d].copy_from_slice(src.row(r as usize));
        }
    }
}

/// Like [`gather_rows_flat`], but `u32::MAX` entries of `idx` are a
/// sentinel for "no source row" and produce a zero row instead of a
/// panic. The incremental GNN path uses it to seed a new design's flat
/// embedding matrix from a cached base: mapped (clean) rows are byte
/// copies of the cache, unmapped rows (new pins, about to be recomputed)
/// come back zeroed. Mapped rows are bit-identical to
/// [`gather_rows_flat`] on the same indices.
///
/// # Panics
///
/// Panics if a non-sentinel index is out of range or `src` is not a
/// matrix.
// rtt-lint: hot
pub fn gather_rows_or_zero(src: &Tensor, idx: &[u32], out: &mut Tensor) {
    let d = src.cols();
    if idx.is_empty() {
        out.reset(&[1, d], 0.0);
        return;
    }
    out.reset_for_overwrite(&[idx.len(), d]);
    let fill_row = |i: usize, row: &mut [f32]| match idx[i] {
        u32::MAX => row.fill(0.0),
        r => row.copy_from_slice(src.row(r as usize)),
    };
    if parallel::should_parallelize(idx.len() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(i, row)| fill_row(i, row));
    } else {
        for (i, row) in out.data_mut().chunks_mut(d).enumerate() {
            fill_row(i, row);
        }
    }
}

/// Copies row `src_row0 + i` of `src` to row `dst_rows[i]` of `dst` for
/// each `i`. The destination must already be shaped; rows not named in
/// `dst_rows` keep their contents. Used to write per-group GNN level
/// results into their level-order positions of the flat embedding matrix.
///
/// # Panics
///
/// Panics if a row index is out of range or column counts differ.
// rtt-lint: hot
pub fn scatter_rows(src: &Tensor, src_row0: usize, dst_rows: &[u32], dst: &mut Tensor) {
    let d = src.cols();
    assert_eq!(dst.cols(), d, "scatter_rows column mismatch");
    for (i, &r) in dst_rows.iter().enumerate() {
        let row = src.row(src_row0 + i);
        dst.data_mut()[r as usize * d..(r as usize + 1) * d].copy_from_slice(row);
    }
}

/// Per-segment column-wise maximum over pre-sorted rows, driven by CSR
/// offsets: segment `s` reduces rows `seg_off[s]..seg_off[s + 1]` of
/// `src`. Bit-identical to [`segment_max`] on an ascending `seg` array
/// with the same runs: rows scan in ascending order with a
/// strict-greater select, and empty segments produce zero rows (the
/// `NEG_INFINITY` sentinel can never be produced by a real row winning,
/// because `v > -inf` fires for every finite `v` and NaN rows never
/// replace the sentinel — exactly the `argmax < 0` rule of the legacy
/// kernel).
///
/// # Panics
///
/// Panics if `seg_off` is not a valid CSR offset array over `src`'s rows.
// rtt-lint: hot
pub fn segment_max_csr(src: &Tensor, seg_off: &[u32], out: &mut Tensor) {
    let n = seg_off.len().saturating_sub(1);
    let d = src.cols();
    if n == 0 {
        out.reset(&[1, d], 0.0);
        return;
    }
    assert_eq!(*seg_off.last().unwrap_or(&0) as usize, src.rows(), "CSR must cover all rows");
    out.reset_for_overwrite(&[n, d]);
    let data = src.data();
    let reduce_row = |s: usize, orow: &mut [f32]| {
        let (lo, hi) = (seg_off[s] as usize, seg_off[s + 1] as usize);
        if lo == hi {
            orow.fill(0.0);
            return;
        }
        orow.fill(f32::NEG_INFINITY);
        for r in lo..hi {
            let srow = &data[r * d..(r + 1) * d];
            for (o, &v) in orow.iter_mut().zip(srow) {
                if v > *o {
                    *o = v;
                }
            }
        }
        // Columns never beaten (all-NaN or all--inf input) follow the
        // legacy empty-segment rule and become zero. The sentinel is
        // matched by bit pattern, so a real -inf produced here is also
        // (correctly) zeroed, exactly as argmax == -1 would be.
        for o in orow.iter_mut() {
            if o.to_bits() == f32::NEG_INFINITY.to_bits() {
                *o = 0.0;
            }
        }
    };
    if parallel::should_parallelize(src.rows() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(s, orow)| reduce_row(s, orow));
    } else {
        for (s, orow) in out.data_mut().chunks_mut(d).enumerate() {
            reduce_row(s, orow);
        }
    }
}

/// Per-segment column-wise sum over pre-sorted rows, driven by CSR
/// offsets. Bit-identical to [`segment_sum`] on the equivalent ascending
/// `seg` array: each output row starts from `0.0` and accumulates its
/// rows in ascending order.
///
/// # Panics
///
/// Panics if `seg_off` is not a valid CSR offset array over `src`'s rows.
// rtt-lint: hot
pub fn segment_sum_csr(src: &Tensor, seg_off: &[u32], out: &mut Tensor) {
    let n = seg_off.len().saturating_sub(1);
    let d = src.cols();
    if n == 0 {
        out.reset(&[1, d], 0.0);
        return;
    }
    assert_eq!(*seg_off.last().unwrap_or(&0) as usize, src.rows(), "CSR must cover all rows");
    out.reset_for_overwrite(&[n, d]);
    let data = src.data();
    let reduce_row = |s: usize, orow: &mut [f32]| {
        orow.fill(0.0);
        for r in seg_off[s] as usize..seg_off[s + 1] as usize {
            let srow = &data[r * d..(r + 1) * d];
            for (o, &v) in orow.iter_mut().zip(srow) {
                *o += v;
            }
        }
    };
    if parallel::should_parallelize(src.rows() * d, GATHER_PAR_ELEMS) {
        out.data_mut().par_chunks_mut(d).enumerate().for_each(|(s, orow)| reduce_row(s, orow));
    } else {
        for (s, orow) in out.data_mut().chunks_mut(d).enumerate() {
            reduce_row(s, orow);
        }
    }
}

/// In-place rectified linear unit (same values as [`relu`] minus the
/// copy).
// rtt-lint: hot
pub fn relu_in_place(x: &mut Tensor) {
    for v in x.data_mut() {
        *v = v.max(0.0);
    }
}

/// Hyperbolic tangent written directly into `out` (same values as
/// [`tanh`], but the source stays intact for a later residual add).
// rtt-lint: hot
pub fn tanh_to(src: &Tensor, out: &mut Tensor) {
    out.reset_for_overwrite(src.shape());
    for (o, &v) in out.data_mut().iter_mut().zip(src.data()) {
        *o = v.tanh();
    }
}

/// In-place bias add: `row` is added to every row of `x` (same values as
/// [`add_row`] minus the copy).
///
/// # Panics
///
/// Panics if `row.len() != x.cols()`.
// rtt-lint: hot
pub fn add_row_in_place(x: &mut Tensor, row: &[f32]) {
    assert_eq!(x.cols(), row.len(), "bias width mismatch");
    let n = row.len();
    for xr in x.data_mut().chunks_mut(n) {
        for (v, &b) in xr.iter_mut().zip(row) {
            *v += b;
        }
    }
}

/// In-place per-channel bias add on a `[C, H, W]` map (same values as
/// [`add_channel`] minus the copy).
///
/// # Panics
///
/// Panics if `bias.len() != C`.
// rtt-lint: hot
pub fn add_channel_in_place(x: &mut Tensor, bias: &[f32]) {
    let (c, h, w) = rank3(x);
    assert_eq!(bias.len(), c, "one bias per channel");
    for (plane, &b) in x.data_mut().chunks_mut(h * w).zip(bias) {
        for p in plane {
            *p += b;
        }
    }
}

/// In-place broadcast Hadamard: every row of `x` is multiplied by `row`
/// (same values as [`mul_row`] minus the copy).
///
/// # Panics
///
/// Panics if `row.len() != x.cols()`.
// rtt-lint: hot
pub fn mul_row_in_place(x: &mut Tensor, row: &[f32]) {
    assert_eq!(x.cols(), row.len(), "row width mismatch");
    let n = row.len();
    for xr in x.data_mut().chunks_mut(n) {
        for (v, &m) in xr.iter_mut().zip(row) {
            *v *= m;
        }
    }
}

/// Adds `x.rows()` consecutive rows of `src` (starting at `src_row0`)
/// onto `x`, row by row: `x[i] += src[src_row0 + i]`. Used to add a slice
/// of a precomputed static-MLP product without materializing it.
///
/// # Panics
///
/// Panics if the row range is out of bounds or columns differ.
// rtt-lint: hot
pub fn add_rows_range(x: &mut Tensor, src: &Tensor, src_row0: usize) {
    let d = x.cols();
    assert_eq!(src.cols(), d, "add_rows_range column mismatch");
    let rows = x.rows();
    let s = &src.data()[src_row0 * d..(src_row0 + rows) * d];
    for (v, &a) in x.data_mut().iter_mut().zip(s) {
        *v += a;
    }
}

/// In-place row scaling: row `r` of `x` is multiplied by `factors[r]`
/// (same values as [`scale_rows`] minus the copy).
///
/// # Panics
///
/// Panics if `factors.len() != x.rows()`.
// rtt-lint: hot
pub fn scale_rows_in_place(x: &mut Tensor, factors: &[f32]) {
    assert_eq!(factors.len(), x.rows());
    let d = x.cols();
    for (xr, &f) in x.data_mut().chunks_mut(d).zip(factors) {
        for v in xr {
            *v *= f;
        }
    }
}

/// Asserts rank 3 and returns `(C, H, W)`.
pub(crate) fn rank3(t: &Tensor) -> (usize, usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 3, "expected [C,H,W], got {s:?}");
    (s[0], s[1], s[2])
}

/// If `seg` is non-decreasing, returns each segment's half-open row run
/// `[lo, hi)` (empty segments yield `lo == hi`); `None` when unsorted.
///
/// # Panics
///
/// Panics if a segment id is `>= num_segments`.
fn sorted_segment_runs(seg: &[u32], num_segments: usize) -> Option<Vec<(usize, usize)>> {
    if seg.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    if let Some(&last) = seg.last() {
        assert!((last as usize) < num_segments, "segment id out of range");
    }
    let mut runs = vec![(0usize, 0usize); num_segments.max(1)];
    let mut r = 0;
    for (s, run) in runs.iter_mut().enumerate() {
        let lo = r;
        while r < seg.len() && seg[r] as usize == s {
            r += 1;
        }
        *run = (lo, r);
    }
    Some(runs)
}

/// Unfolds a padded `[C_in, H, W]` map into the im2col matrix
/// `[C_in·kh·kw, oh·ow]`: column `oy·ow + ox` holds the receptive field of
/// output pixel `(oy, ox)`. Out-of-bounds (padding) taps stay zero.
pub(crate) fn im2col(
    x: &Tensor,
    kh: usize,
    kw: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    col: &mut Tensor,
) {
    let (cin, h, wd) = rank3(x);
    col.reset(&[cin * kh * kw, oh * ow], 0.0);
    col.data_mut().par_chunks_mut(oh * ow).enumerate().for_each(|(row, crow)| {
        let ci = row / (kh * kw);
        let ky = (row / kw) % kh;
        let kx = row % kw;
        for oy in 0..oh {
            let iy = (oy + ky) as isize - pad as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            // Valid ox range: 0 <= ox + kx - pad < wd.
            let lo = pad.saturating_sub(kx);
            let hi = (wd + pad - kx).min(ow);
            if lo >= hi {
                continue;
            }
            let ix0 = lo + kx - pad;
            let src = &x.data()[ci * h * wd + iy as usize * wd + ix0..];
            crow[oy * ow + lo..oy * ow + hi].copy_from_slice(&src[..hi - lo]);
        }
    });
}

/// Folds the im2col gradient `[C_in·kh·kw, oh·ow]` back onto the input map
/// (the adjoint of [`im2col`]): overlapping receptive fields accumulate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn col2im(
    gcol: &Tensor,
    cin: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    gx: &mut Tensor,
) {
    let (oh, ow) = (h + 2 * pad + 1 - kh, wd + 2 * pad + 1 - kw);
    for row in 0..cin * kh * kw {
        let ci = row / (kh * kw);
        let ky = (row / kw) % kh;
        let kx = row % kw;
        let crow = &gcol.data()[row * oh * ow..(row + 1) * oh * ow];
        for oy in 0..oh {
            let iy = (oy + ky) as isize - pad as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            let lo = pad.saturating_sub(kx);
            let hi = (wd + pad - kx).min(ow);
            if lo >= hi {
                continue;
            }
            let ix0 = lo + kx - pad;
            let dst = &mut gx.data_mut()[ci * h * wd + iy as usize * wd + ix0..][..hi - lo];
            for (d, g) in dst.iter_mut().zip(&crow[oy * ow + lo..oy * ow + hi]) {
                *d += g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_buffers_are_recycled_without_changing_results() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Tensor::default();
        matmul(&a, &b, &mut out);
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
        // Re-run with a dirty, differently-shaped buffer: same result.
        let mut dirty = Tensor::full(&[7, 3], 9.0);
        matmul(&a, &b, &mut dirty);
        assert_eq!(dirty.data(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(dirty.shape(), &[2, 2]);
    }

    #[test]
    fn segment_max_recomputes_scratch() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 0.0]]);
        let mut out = Tensor::default();
        let mut arg = vec![42i64; 1]; // dirty scratch from a previous call
        segment_max(&x, &[0, 1, 0], 2, &mut out, &mut arg);
        assert_eq!(out.data(), &[5.0, 2.0, 3.0, 4.0]);
        assert_eq!(arg, vec![2, 0, 1, 1]);
    }

    #[test]
    fn gather_rows_or_zero_matches_plain_gather_and_zeroes_sentinels() {
        let src = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut a = Tensor::default();
        let mut b = Tensor::full(&[9, 9], 7.0); // dirty buffer
        gather_rows_flat(&src, &[2, 0, 2], &mut a);
        gather_rows_or_zero(&src, &[2, 0, 2], &mut b);
        assert_eq!(a.data(), b.data());
        gather_rows_or_zero(&src, &[1, u32::MAX, 2], &mut b);
        assert_eq!(b.data(), &[3.0, 4.0, 0.0, 0.0, 5.0, 6.0]);
        gather_rows_or_zero(&src, &[], &mut b);
        assert_eq!((b.shape(), b.data()), (&[1usize, 2][..], &[0.0, 0.0][..]));
    }

    #[test]
    fn maxpool_with_dirty_scratch() {
        let x = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 9.0, 2.0]);
        let mut out = Tensor::default();
        let mut arg = vec![7u32; 99];
        maxpool2d(&x, 2, &mut out, &mut arg);
        assert_eq!(out.data(), &[5.0, 9.0]);
        assert_eq!(arg, vec![1, 6]);
    }
}
