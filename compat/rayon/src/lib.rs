//! An offline, API-compatible subset of `rayon`.
//!
//! The build environment has no crates.io access, so the parallel-iterator
//! surface this workspace uses is implemented locally on top of
//! [`std::thread::scope`]. Semantics this workspace relies on:
//!
//! * **Order preservation** — `par_iter().map(f).collect()` returns results
//!   in input order, so parallel output is a permutation-free, bit-identical
//!   replacement for the serial map.
//! * **No nesting** — a parallel call issued from inside a worker runs
//!   serially on that worker (rayon would work-steal instead; for the
//!   fork-join shapes used here the observable results are identical and
//!   oversubscription is avoided).
//! * **Thread-count control** — the global thread count defaults to the
//!   `RTT_THREADS` environment variable, falling back to
//!   [`std::thread::available_parallelism`]. Unlike upstream rayon,
//!   [`ThreadPoolBuilder::build_global`] may be called repeatedly to
//!   reconfigure the count (the perf suite uses this to time serial vs.
//!   parallel execution in one process).
//!
//! Threads are spawned per parallel call rather than pooled. Every call
//! site in this workspace guards with a work-size threshold so the ~tens of
//! microseconds of spawn cost are amortized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread count; 0 = not yet initialized.
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing inside a parallel worker; nested parallel calls
    /// observe it and degrade to serial execution.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn default_threads() -> usize {
    std::env::var("RTT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The number of threads parallel calls will fan out to.
pub fn current_num_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let n = default_threads();
    // A racing initializer computes the same value; last store wins.
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by
/// this implementation; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to configure global thread count")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (`0` = use the default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike upstream rayon this may
    /// be called more than once; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        THREADS.store(n, Ordering::SeqCst);
        Ok(())
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || IN_WORKER.with(std::cell::Cell::get) {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("parallel task panicked"))
    })
}

/// Order-preserving parallel map over an item list: items are split into
/// one contiguous chunk per thread; chunk `0` runs on the calling thread.
fn execute<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || IN_WORKER.with(std::cell::Cell::get) {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    for _ in 0..threads {
        chunks.push(items.by_ref().take(chunk).collect());
    }
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(chunks.len());
        let mut chunks = chunks.into_iter();
        // `threads >= 2` past the serial early-return, so a chunk always
        // exists; the guard keeps the serving path panic-free regardless.
        let Some(first) = chunks.next() else { return Vec::new() };
        for c in chunks {
            handles.push(s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                c.into_iter().map(f).collect::<Vec<R>>()
            }));
        }
        // Mark the calling thread as a worker while it processes its own
        // chunk so nested parallel calls inside `f` degrade serially.
        let was = IN_WORKER.with(|w| w.replace(true));
        let mut out: Vec<R> = first.into_iter().map(f).collect();
        IN_WORKER.with(|w| w.set(was));
        for h in handles {
            // A worker can only fail if `f` panicked; re-raise that panic
            // on the caller exactly as rayon does.
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Parallel iterator types and conversion traits.
pub mod iter {
    use super::execute;

    /// An eager, order-preserving parallel iterator: the item list is
    /// materialized up front; only the mapped/consumed function runs in
    /// parallel.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A lazily mapped [`ParIter`].
    pub struct Map<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        /// Maps each item; the closure runs in parallel at consumption.
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> Map<T, F> {
            Map { items: self.items, f }
        }

        /// Pairs each item with its input position.
        #[must_use]
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter { items: self.items.into_iter().enumerate().collect() }
        }

        /// Applies `f` to every item in parallel.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
            execute(self.items, &f);
        }

        /// Number of items.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// `true` if there are no items.
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    impl<T: Send, R: Send, F: Fn(T) -> R + Sync> Map<T, F> {
        /// Runs the map in parallel and collects results in input order.
        pub fn collect<C: FromParIter<R>>(self) -> C {
            C::from_results(execute(self.items, self.f))
        }

        /// Parallel sum of the mapped results.
        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            execute(self.items, self.f).into_iter().sum()
        }
    }

    /// Collection types constructible from ordered parallel results.
    pub trait FromParIter<R> {
        /// Builds the collection from in-order results.
        fn from_results(results: Vec<R>) -> Self;
    }

    impl<R> FromParIter<R> for Vec<R> {
        fn from_results(results: Vec<R>) -> Self {
            results
        }
    }

    /// Conversion of owned collections into parallel iterators.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;

        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;

        fn into_par_iter(self) -> ParIter<usize> {
            ParIter { items: self.collect() }
        }
    }

    /// `par_iter()` — shared-reference parallel iteration.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send;

        /// Parallel iterator over shared references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;

        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    /// `par_chunks_mut()` — disjoint mutable chunks processed in parallel.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into chunks of at most `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
            ParIter { items: self.chunks_mut(size).collect() }
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let out2: Vec<usize> = (0..100usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out2, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        let mut data = vec![0u32; 97];
        data.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + i) as u32;
            }
        });
        assert_eq!(data, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn nested_calls_degrade_serially() {
        ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let outer: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| (0..4usize).into_par_iter().map(move |j| i * 4 + j).collect())
            .collect();
        let flat: Vec<usize> = outer.into_iter().flatten().collect();
        assert_eq!(flat, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        ThreadPoolBuilder::new().num_threads(1).build_global().unwrap();
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|x| x).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
    }
}
