//! Generation parameters and scale presets.

/// Global scale knob applied on top of a design preset.
///
/// The paper trains on an RTX 3090; this reproduction runs on CPU cores, so
/// the default experiment scale is reduced while preserving the designs'
/// relative proportions. `Paper` restores the full magnitudes for users with
/// time to spare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Scale {
    /// ~1/40 of `Small`; used by integration tests and doc examples.
    Tiny,
    /// Default experiment scale: single-core minutes per table.
    #[default]
    Small,
    /// 8× `Small`: the perfsuite's cold-vs-delta preparation tier —
    /// large enough that preparation cost dominates, still CPU-minutes.
    Huge,
    /// Full paper-scale pin counts (hours of CPU time).
    Paper,
}

impl Scale {
    /// Multiplicative factor applied to preset cell/flop/port counts.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.025,
            Scale::Small => 1.0,
            Scale::Huge => 8.0,
            Scale::Paper => 40.0,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Huge => "huge",
            Scale::Paper => "paper",
        })
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "huge" => Ok(Scale::Huge),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale `{other}` (expected tiny|small|huge|paper)")),
        }
    }
}

/// Parameters of one synthetic design.
///
/// Construct via [`crate::preset`] for the paper's ten designs, or directly
/// for custom workloads, then call [`GenParams::generate`].
#[derive(Clone, Debug, PartialEq)]
pub struct GenParams {
    /// Design name (also the netlist name).
    pub name: String,
    /// Number of combinational cells to create.
    pub comb_cells: usize,
    /// Number of primary input ports.
    pub inputs: usize,
    /// Number of primary output ports.
    pub outputs: usize,
    /// Number of flip-flops (each contributes one endpoint and one startpoint).
    pub flops: usize,
    /// Number of macro blocks the placer should carve out.
    pub macros: usize,
    /// Probability that a gate input extends the deepest recent cone
    /// (higher → deeper logic, longer critical paths).
    pub depth_bias: f64,
    /// Size of the recency window used for reconvergent sampling.
    pub window: usize,
    /// RNG seed; the generator is fully deterministic given the params.
    pub seed: u64,
}

impl GenParams {
    /// Reasonable defaults for a custom design of `comb_cells` gates.
    pub fn new(name: impl Into<String>, comb_cells: usize, seed: u64) -> Self {
        let flops = (comb_cells / 6).max(1);
        Self {
            name: name.into(),
            comb_cells,
            inputs: (comb_cells / 40).clamp(4, 512),
            outputs: (comb_cells / 50).clamp(2, 512),
            flops,
            macros: 0,
            depth_bias: 0.42,
            window: 64,
            seed,
        }
    }

    /// Applies a [`Scale`] factor to all count parameters.
    #[must_use]
    pub fn scaled(mut self, scale: Scale) -> Self {
        let f = scale.factor();
        let s = |v: usize, lo: usize| ((v as f64 * f).round() as usize).max(lo);
        self.comb_cells = s(self.comb_cells, 8);
        self.inputs = s(self.inputs, 2);
        self.outputs = s(self.outputs, 1);
        self.flops = s(self.flops, 1);
        // Macro count grows sub-linearly with scale.
        if f > 1.0 {
            self.macros = ((self.macros as f64) * f.sqrt()).round() as usize;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Huge.factor());
        assert!(Scale::Huge.factor() < Scale::Paper.factor());
    }

    #[test]
    fn scale_parses_and_displays() {
        for s in [Scale::Tiny, Scale::Small, Scale::Huge, Scale::Paper] {
            assert_eq!(s.to_string().parse::<Scale>().unwrap(), s);
        }
        assert!("gigantic".parse::<Scale>().is_err());
    }

    #[test]
    fn scaled_respects_minimums() {
        let p = GenParams::new("t", 10, 1).scaled(Scale::Tiny);
        assert!(p.comb_cells >= 8);
        assert!(p.inputs >= 2);
        assert!(p.outputs >= 1);
        assert!(p.flops >= 1);
    }

    #[test]
    fn defaults_are_proportional() {
        let p = GenParams::new("d", 4000, 7);
        assert_eq!(p.flops, 666);
        assert!(p.inputs >= 4 && p.outputs >= 2);
    }
}
