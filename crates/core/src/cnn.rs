//! The layout CNN of Section V-A: stacked density/RUDY/macro maps to the
//! global layout information map `M^L` at quarter resolution.

use rand::Rng;

use rtt_nn::{ops, Conv2d, Exec, ParamStore, Tensor};

use crate::ModelConfig;

/// Convolutional trunk: `3×G×G → 1×(G/4)×(G/4)` through two conv+pool
/// stages and a 1×1 fusion convolution (Fig. 4).
#[derive(Clone, Debug)]
pub struct LayoutCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    fuse: Conv2d,
}

impl LayoutCnn {
    /// Registers the CNN parameters.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, config: &ModelConfig) -> Self {
        let c = config.cnn_channels;
        Self {
            conv1: Conv2d::new(store, rng, 3, c, 3, 1),
            conv2: Conv2d::new(store, rng, c, c, 3, 1),
            fuse: Conv2d::new(store, rng, c, 1, 1, 0),
        }
    }

    /// Computes the flattened global layout map `M^L` as a rank-1 vector of
    /// length `(G/4)²`, ready for the endpoint-mask Hadamard product.
    ///
    /// # Panics
    ///
    /// Panics if `maps` is not `[3, G, G]` with `G` a multiple of 4.
    pub fn forward<E: Exec>(&self, ex: E, store: &ParamStore, maps: E::Value) -> E::Value {
        rtt_obs::span!("core::cnn_forward");
        let h1 = ex.relu(self.conv1.forward(ex, store, maps));
        let p1 = ex.maxpool2d(h1, 2);
        let h2 = ex.relu(self.conv2.forward(ex, store, p1));
        let p2 = ex.maxpool2d(h2, 2);
        let fused = self.fuse.forward(ex, store, p2);
        let n = ex.len(fused);
        ex.reshape(fused, &[n])
    }

    /// Tape-free [`Self::forward`] directly over caller-provided buffers:
    /// `maps` is consumed in place (no constant copy), activations
    /// ping-pong through `a` / `b`, and the flattened global map lands in
    /// `out`. `col` is the shared im2col scratch, `argmax` the recycled
    /// maxpool bookkeeping. Bit-identical to [`Self::forward`] (same
    /// kernels in the same order; in-place bias/ReLU produce the same
    /// values as the copying Exec ops).
    ///
    /// # Panics
    ///
    /// Panics if `maps` is not `[3, G, G]` with `G` a multiple of 4.
    #[allow(clippy::too_many_arguments)]
    // rtt-lint: hot
    pub fn forward_into(
        &self,
        store: &ParamStore,
        maps: &Tensor,
        a: &mut Tensor,
        b: &mut Tensor,
        out: &mut Tensor,
        col: &mut Tensor,
        argmax: &mut Vec<u32>,
    ) {
        rtt_obs::span!("core::cnn_forward");
        self.conv1.forward_into(store, maps, col, a);
        ops::relu_in_place(a);
        ops::maxpool2d(a, 2, b, argmax);
        self.conv2.forward_into(store, b, col, a);
        ops::relu_in_place(a);
        ops::maxpool2d(a, 2, b, argmax);
        self.fuse.forward_into(store, b, col, out);
        let n = out.len();
        out.reshape_in_place(&[n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtt_nn::{Tape, Tensor};

    #[test]
    fn output_is_quarter_resolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny(); // grid 16
        let cnn = LayoutCnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let x = tape.constant(Tensor::full(&[3, cfg.grid, cfg.grid], 0.5));
        let y = cnn.forward(&tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[cfg.pooled_grid() * cfg.pooled_grid()]);
    }

    #[test]
    fn gradients_reach_all_conv_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let cnn = LayoutCnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let mut input = Tensor::zeros(&[3, cfg.grid, cfg.grid]);
        for (i, v) in input.data_mut().iter_mut().enumerate() {
            *v = (i % 7) as f32 / 7.0;
        }
        let x = tape.constant(input);
        let y = cnn.forward(&tape, &store, x);
        let loss = y.mul(y).mean();
        let grads = tape.backward(loss);
        let live =
            store.iter().filter(|(id, _)| grads.of(*id).is_some_and(|g| g.norm() > 0.0)).count();
        assert!(live >= 5, "only {live}/6 conv params receive gradient");
    }

    #[test]
    fn different_inputs_give_different_maps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let cnn = LayoutCnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let a = tape.constant(Tensor::full(&[3, cfg.grid, cfg.grid], 0.1));
        let b = tape.constant(Tensor::full(&[3, cfg.grid, cfg.grid], 0.9));
        let ya = tape.value(cnn.forward(&tape, &store, a));
        let yb = tape.value(cnn.forward(&tape, &store, b));
        assert_ne!(ya.data(), yb.data());
    }
}
