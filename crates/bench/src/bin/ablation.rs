//! Regenerates the **A2 design-choice ablations** called out in DESIGN.md:
//! max vs mean cell-edge aggregation, and endpoint-wise masking vs a shared
//! layout map (the paper's Section V-B argument).

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use rtt_bench::Cli;
use rtt_circgen::Scale;
use rtt_core::{ModelConfig, TrainConfig};
use rtt_flow::tables::{ablation, render_ablation};
use rtt_flow::{Dataset, FlowConfig};

fn main() {
    let cli = Cli::parse();
    eprintln!("[ablation] generating dataset at scale {} ...", cli.scale);
    let dataset = Dataset::generate(&FlowConfig { scale: cli.scale, ..FlowConfig::default() });
    let (model, default_epochs) = match cli.scale {
        Scale::Tiny => (ModelConfig::tiny(), 10),
        // Huge scales the circuits for prepare benchmarks, not the model.
        Scale::Small | Scale::Huge => (ModelConfig::small(), 300),
        Scale::Paper => (ModelConfig::paper(), 200),
    };
    let epochs = cli.epochs.unwrap_or(default_epochs);
    eprintln!("[ablation] training 3 variants × {epochs} epochs ...");
    let rows = ablation(
        &dataset,
        &model,
        &TrainConfig { epochs, lr: 2e-3, log_every: 25, ..TrainConfig::default() },
    );
    let mut report =
        format!("# Design-choice ablations (scale: {}, {epochs} epochs)\n\n", cli.scale);
    report.push_str(&render_ablation(&rows));
    cli.write_report("ablation", &report);
    cli.finish_trace();
}
