//! `restructure-timing` — command-line front end for the flow.
//!
//! ```text
//! restructure-timing gen  --design rocket [--scale small] --out DIR
//! restructure-timing sta  --netlist F.v --placement F.place [--period PS]
//! restructure-timing opt  --netlist F.v --placement F.place --period PS --out DIR
//! restructure-timing flow --design rocket [--scale small]
//! ```
//!
//! `gen` writes a synthetic design as structural Verilog plus a placement
//! file; `sta` re-imports such files and reports sign-off timing; `opt`
//! runs the restructuring optimizer and writes the optimized design back
//! out; `flow` runs the paper's two-flow comparison and prints a Table-I
//! style summary for one design; `serve` exposes a trained model as a
//! fault-tolerant HTTP prediction daemon (see `rtt-serve`).

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use restructure_timing::flow::{run_design_flow, FlowConfig};
use restructure_timing::netlist::{parse_verilog, write_verilog, Netlist};
use restructure_timing::opt::diff_netlists;
use restructure_timing::place::{parse_placement, write_placement, Placement};
use restructure_timing::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let opts = parse_opts(&args[1..]);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "sta" => cmd_sta(&opts),
        "opt" => cmd_opt(&opts),
        "flow" => cmd_flow(&opts),
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "serve" => cmd_serve(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    // Trace export runs even when the command failed (a partial trace is
    // often exactly what's needed to debug the failure), but an export
    // failure turns a successful command into an error exit.
    let result = match (result, emit_traces(&opts)) {
        (Err(e), _) => Err(e),
        (Ok(()), r) => r,
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

/// Handles `--trace` (human-readable span tree to stderr) and
/// `--trace-out FILE` (JSON trace document).
fn emit_traces(opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("trace") {
        eprint!("{}", restructure_timing::obs::snapshot().render_tree());
    }
    if let Some(path) = opts.get("trace-out") {
        if path.is_empty() {
            return Err("missing value for --trace-out".to_owned());
        }
        std::fs::write(path, restructure_timing::obs::snapshot().to_json())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "restructure-timing <command> [options]\n\
         \n\
         commands:\n\
         \x20 gen  --design NAME [--scale tiny|small|paper] [--seed N] --out DIR\n\
         \x20 sta  --netlist FILE.v --placement FILE.place [--period PS]\n\
         \x20 opt  --netlist FILE.v --placement FILE.place --period PS --out DIR\n\
         \x20      [--weights FILE]  (incremental model prediction across the opt)\n\
         \x20 flow --design NAME [--scale tiny|small|paper]\n\
         \x20 train   [--scale S] [--epochs N] --weights FILE\n\
         \x20 predict --netlist FILE.v --placement FILE.place --weights FILE\n\
         \x20 serve   --weights FILE [--addr HOST:PORT] [--workers N]\n\
         \x20         [--netlist FILE.v --placement FILE.place [--name NAME]]\n\
         \n\
         every command also accepts:\n\
         \x20 --trace           print the span tree (counts, wall time, counters) to stderr\n\
         \x20 --trace-out FILE  write the JSON trace document to FILE\n"
    );
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            // A following `--flag` is the next option, not this one's value,
            // so value-less flags (`--trace`) compose with valued ones.
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            out.insert(key.to_owned(), value);
        }
    }
    out
}

fn opt_scale(opts: &HashMap<String, String>) -> Result<Scale, String> {
    match opts.get("scale") {
        None => Ok(Scale::Small),
        Some(s) => s.parse(),
    }
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn load_design(
    opts: &HashMap<String, String>,
) -> Result<(CellLibrary, Netlist, Placement), String> {
    let lib = CellLibrary::asap7_like();
    let v_path = required(opts, "netlist")?;
    let p_path = required(opts, "placement")?;
    let v_text = std::fs::read_to_string(v_path).map_err(|e| format!("{v_path}: {e}"))?;
    let netlist = parse_verilog(&v_text, &lib).map_err(|e| format!("{v_path}: {e}"))?;
    let p_text = std::fs::read_to_string(p_path).map_err(|e| format!("{p_path}: {e}"))?;
    let placement = parse_placement(&netlist, &p_text).map_err(|e| format!("{p_path}: {e}"))?;
    Ok((lib, netlist, placement))
}

fn write_design(
    dir: &Path,
    stem: &str,
    netlist: &Netlist,
    library: &CellLibrary,
    placement: &Placement,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let v = dir.join(format!("{stem}.v"));
    std::fs::write(&v, write_verilog(netlist, library))
        .map_err(|e| format!("{}: {e}", v.display()))?;
    let p = dir.join(format!("{stem}.place"));
    std::fs::write(&p, write_placement(netlist, placement))
        .map_err(|e| format!("{}: {e}", p.display()))?;
    println!("wrote {} and {}", v.display(), p.display());
    Ok(())
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let name = required(opts, "design")?;
    let scale = opt_scale(opts)?;
    let out = PathBuf::from(required(opts, "out")?);
    let lib = CellLibrary::asap7_like();
    let mut params = preset(name, scale).ok_or_else(|| {
        format!(
            "unknown design `{name}` (known: {})",
            restructure_timing::circgen::preset_names().join(", ")
        )
    })?;
    if let Some(seed) = opts.get("seed") {
        params.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    let design = params.generate(&lib);
    let placement = place(&design.netlist, &lib, design.num_macros, &PlaceConfig::default());
    println!(
        "generated `{name}` at scale {scale}: {} cells, {} nets, {} macros",
        design.netlist.num_cells(),
        design.netlist.num_nets(),
        placement.floorplan().macros.len()
    );
    write_design(&out, name, &design.netlist, &lib, &placement)
}

fn cmd_sta(opts: &HashMap<String, String>) -> Result<(), String> {
    let (lib, netlist, placement) = load_design(opts)?;
    let graph = TimingGraph::build(&netlist, &lib);
    let routing = route(&netlist, &lib, &placement, &RouteConfig::default());
    let period: f32 = match opts.get("period") {
        Some(p) => p.parse().map_err(|e| format!("bad --period: {e}"))?,
        None => {
            let probe = run_sta(&netlist, &lib, &graph, WireModel::Routed(&routing), 1.0);
            probe.max_arrival()
        }
    };
    let report = run_sta(&netlist, &lib, &graph, WireModel::Routed(&routing), period);
    println!(
        "{}: {} endpoints, period {:.1} ps, wns {:.2} ps, tns {:.2} ps",
        netlist.name,
        report.endpoint_arrivals().len(),
        period,
        report.wns,
        report.tns
    );
    let mut worst: Vec<(String, f32)> = report
        .endpoint_arrivals()
        .iter()
        .map(|&(pin, a)| (netlist.pin(pin).name.clone(), a))
        .collect();
    worst.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("worst endpoints:");
    for (name, a) in worst.into_iter().take(5) {
        println!("  {name:<24} arrival {a:>10.2} ps  slack {:>10.2} ps", period - a);
    }
    Ok(())
}

fn cmd_opt(opts: &HashMap<String, String>) -> Result<(), String> {
    let (lib, mut netlist, mut placement) = load_design(opts)?;
    let period: f32 =
        required(opts, "period")?.parse().map_err(|e| format!("bad --period: {e}"))?;
    let out = PathBuf::from(required(opts, "out")?);
    let before = netlist.clone();
    let before_placement = placement.clone();
    let report = optimize(
        &mut netlist,
        &mut placement,
        &lib,
        &OptConfig { clock_period_ps: period, ..OptConfig::default() },
    );
    let diff = diff_netlists(&before, &netlist, &lib);
    println!(
        "wns {:.1} -> {:.1} ps | {} upsized, {} downsized, {} drv buffers, {} buffers, \
         {} decomposed, {} bypassed | {:.1}% net edges, {:.1}% cell edges replaced",
        report.wns_before,
        report.wns_after,
        report.sizing_ops,
        report.downsize_ops,
        report.drv_buffer_ops,
        report.buffer_ops,
        report.decompose_ops,
        report.bypass_ops,
        diff.net_replaced_fraction() * 100.0,
        diff.cell_replaced_fraction() * 100.0,
    );
    // Optional model-in-the-loop: with --weights, predict the optimized
    // design incrementally from a cache primed on the input design, and
    // check the result against a cold full forward pass.
    if let Some(weights) = opts.get("weights").filter(|w| !w.is_empty()) {
        let scale = opt_scale(opts)?;
        opt_incremental_report(
            &lib,
            (&before, &before_placement),
            (&netlist, &placement),
            weights,
            scale,
        )?;
    }
    let stem = format!("{}_opt", netlist.name);
    write_design(&out, &stem, &netlist, &lib, &placement)
}

/// Predicts the optimized design's endpoint arrivals twice — incrementally
/// (delta-updated preparation plus cached activations, dirty cones seeded
/// by [`restructure_timing::opt::dirty_seed_pins`]) and with a cold full
/// prepare + forward — reporting the reuse ratios and verifying both the
/// preparation and the predictions agree bit-for-bit.
fn opt_incremental_report(
    lib: &CellLibrary,
    (before, before_placement): (&Netlist, &Placement),
    (after, after_placement): (&Netlist, &Placement),
    weights: &str,
    scale: Scale,
) -> Result<(), String> {
    use restructure_timing::model::{
        IncrementalCtx, PREP_MASKS_RECOMPUTED_COUNTER, PREP_MASKS_TOTAL_COUNTER,
        ROWS_RECOMPUTED_COUNTER, ROWS_TOTAL_COUNTER,
    };
    use restructure_timing::nn::InferCtx;

    let model = load_model_file(weights, scale)?;
    let cfg = model.config().clone();
    let build = |nl: &Netlist| -> Result<TimingGraph, String> {
        TimingGraph::try_build(nl, lib).map_err(|e| format!("timing graph: {e}"))
    };
    let graph_before = build(before)?;
    let (prep_before, mut pctx) = PreparedDesign::prepare_full(
        before,
        lib,
        before_placement,
        &graph_before,
        &cfg,
        vec![0.0; graph_before.endpoints().len()],
    );

    let counters_at =
        |key: &str| restructure_timing::obs::snapshot().counters.get(key).copied().unwrap_or(0);
    let seeds = restructure_timing::opt::dirty_seed_pins(before, after);

    // Preparation, both ways: a cold prepare of the optimized design, and
    // a delta update of the input design's preparation. They must agree
    // field-by-field to the bit.
    let graph_after = build(after)?;
    let targets = vec![0.0; graph_after.endpoints().len()];
    let tc = std::time::Instant::now();
    let prep_cold =
        PreparedDesign::prepare(after, lib, after_placement, &graph_after, &cfg, targets.clone());
    let cold_prep_s = tc.elapsed().as_secs_f64();
    let (masks0, masks_total0) =
        (counters_at(PREP_MASKS_RECOMPUTED_COUNTER), counters_at(PREP_MASKS_TOTAL_COUNTER));
    let td = std::time::Instant::now();
    let prep_after = prep_before.update(
        &mut pctx,
        (before, before_placement),
        (after, after_placement),
        lib,
        &graph_after,
        &cfg,
        &seeds,
        targets,
    );
    let delta_prep_s = td.elapsed().as_secs_f64();
    let masks = counters_at(PREP_MASKS_RECOMPUTED_COUNTER) - masks0;
    let masks_total = counters_at(PREP_MASKS_TOTAL_COUNTER) - masks_total0;
    prep_after
        .bit_eq(&prep_cold)
        .map_err(|field| format!("delta-prepared design diverged from cold prepare at {field}"))?;
    println!(
        "delta prepare: {masks}/{masks_total} masks recomputed, {:.1} ms vs {:.1} ms cold \
         ({:.1}x)",
        delta_prep_s * 1e3,
        cold_prep_s * 1e3,
        cold_prep_s / delta_prep_s.max(1e-9),
    );

    let ctx = InferCtx::new();
    let mut inc = IncrementalCtx::new();
    // Prime the cache with a full pass over the input design (no seeds,
    // cold cache: this is an ordinary forward).
    let all_before: Vec<u32> = (0..prep_before.num_endpoints() as u32).collect();
    let _ = model.predict_incremental(&ctx, &mut inc, &prep_before, &[], &all_before);

    let all_after: Vec<u32> = (0..prep_after.num_endpoints() as u32).collect();
    let (rows0, total0) = (counters_at(ROWS_RECOMPUTED_COUNTER), counters_at(ROWS_TOTAL_COUNTER));
    let t0 = std::time::Instant::now();
    let inc_pred = model.predict_incremental(&ctx, &mut inc, &prep_after, &seeds, &all_after);
    let inc_s = t0.elapsed().as_secs_f64();
    let rows = counters_at(ROWS_RECOMPUTED_COUNTER) - rows0;
    let total = counters_at(ROWS_TOTAL_COUNTER) - total0;

    let t1 = std::time::Instant::now();
    let full_pred = model.predict_batch(&ctx, &prep_after, &all_after);
    let full_s = t1.elapsed().as_secs_f64();
    let identical = inc_pred.len() == full_pred.len()
        && inc_pred.iter().zip(&full_pred).all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "incremental predict: {} dirty seed pins, {rows}/{total} rows recomputed, \
         {:.1} ms vs {:.1} ms full",
        seeds.len(),
        inc_s * 1e3,
        full_s * 1e3,
    );
    if !identical {
        return Err("incremental prediction diverged from the full forward pass".to_owned());
    }
    println!("incremental prediction is bit-identical to the full forward pass");
    Ok(())
}

/// Model architecture per scale (must match between `train` and `predict`).
fn model_config_for(scale: Scale) -> ModelConfig {
    match scale {
        Scale::Tiny => ModelConfig::tiny(),
        // `Huge` scales the circuits, not the model: it exists for
        // preparation benchmarks, which are architecture-independent.
        Scale::Small | Scale::Huge => ModelConfig::small(),
        Scale::Paper => ModelConfig::paper(),
    }
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let scale = opt_scale(opts)?;
    let weights_path = PathBuf::from(required(opts, "weights")?);
    let epochs: usize = opts
        .get("epochs")
        .map(|e| e.parse().map_err(|e| format!("bad --epochs: {e}")))
        .transpose()?
        .unwrap_or(match scale {
            Scale::Tiny => 60,
            _ => 300,
        });
    eprintln!("generating the training dataset at scale {scale} (two full flows per design) ...");
    let dataset = Dataset::generate(&FlowConfig { scale, ..FlowConfig::default() });
    let cfg = model_config_for(scale);
    let train: Vec<PreparedDesign> =
        dataset.train_designs().iter().map(|d| d.prepared(&dataset.library, &cfg)).collect();
    let mut model = TimingModel::new(cfg.clone());
    eprintln!("training {} parameters for {epochs} epochs ...", model.num_parameters());
    let log = model
        .train(&train, &TrainConfig { epochs, lr: 2e-3, log_every: 25, ..TrainConfig::default() });
    eprintln!("final training loss {:.5}", log.final_loss());
    for d in dataset.test_designs() {
        let prep = d.prepared(&dataset.library, &cfg);
        let r2 = restructure_timing::flow::r2_score(&model.predict(&prep), &d.endpoint_targets());
        println!("held-out {:<10} R² = {r2:.4}", d.name);
    }
    // The versioned container (magic + config + checksum) rather than the
    // raw weight blob: `predict`/`serve` recover the architecture from the
    // file itself, and corruption is caught with a typed error instead of
    // a shape mismatch deep in the loader.
    std::fs::write(&weights_path, restructure_timing::model::model_io::save_model(&model))
        .map_err(|e| format!("{}: {e}", weights_path.display()))?;
    println!("wrote weights to {}", weights_path.display());
    Ok(())
}

/// Loads a model file: the versioned `RTTM` container (architecture comes
/// from the file), falling back to the legacy raw weight blob, whose
/// architecture must be supplied via `--scale`.
fn load_model_file(path: &str, scale: Scale) -> Result<TimingModel, String> {
    use restructure_timing::model::model_io::{load_model, ModelIoError};
    let blob = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    match load_model(&blob) {
        Ok(model) => Ok(model),
        Err(ModelIoError::BadMagic) => {
            let mut model = TimingModel::new(model_config_for(scale));
            model.load_weights(&blob).map_err(|e| format!("{path}: legacy weight blob: {e}"))?;
            Ok(model)
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), String> {
    let scale = opt_scale(opts)?;
    let (lib, netlist, placement) = load_design(opts)?;
    let model = load_model_file(required(opts, "weights")?, scale)?;
    let cfg = model.config().clone();

    let graph = TimingGraph::build(&netlist, &lib);
    let prep = PreparedDesign::prepare(
        &netlist,
        &lib,
        &placement,
        &graph,
        &cfg,
        vec![0.0; graph.endpoints().len()],
    );
    let t0 = std::time::Instant::now();
    let pred = model.predict(&prep);
    let secs = t0.elapsed().as_secs_f64();
    println!("endpoint\tpredicted_arrival_ps");
    for (&v, p) in graph.endpoints().iter().zip(&pred) {
        println!("{}\t{p:.2}", netlist.pin(graph.pin_of(v)).name);
    }
    eprintln!(
        "predicted {} endpoints in {secs:.3} s ({:.0} endpoints/s, tape-free)",
        pred.len(),
        pred.len() as f64 / secs.max(1e-9)
    );
    Ok(())
}

/// `serve` — run the fault-tolerant prediction daemon until a client
/// POSTs `/shutdown` (or the process is killed). Designs can be seeded
/// from the command line and added at runtime via `POST /load`; fault
/// injection is enabled by the `RTT_FAULTS` environment variable.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    use restructure_timing::serve::{FaultPlan, ServeConfig, Server};

    let scale = opt_scale(opts)?;
    let weights_path = required(opts, "weights")?;
    let model = load_model_file(weights_path, scale)?;
    let cfg = model.config().clone();

    let mut designs = Vec::new();
    if opts.contains_key("netlist") {
        let (lib, netlist, placement) = load_design(opts)?;
        let graph =
            TimingGraph::try_build(&netlist, &lib).map_err(|e| format!("timing graph: {e}"))?;
        let targets = vec![0.0; graph.endpoints().len()];
        let prep = PreparedDesign::prepare(&netlist, &lib, &placement, &graph, &cfg, targets);
        let name = match opts.get("name") {
            Some(n) if !n.is_empty() => n.clone(),
            _ => netlist.name.clone(),
        };
        println!("registered design `{name}` ({} endpoints)", graph.endpoints().len());
        designs.push((name, prep));
    }

    let mut serve_cfg = ServeConfig {
        weights_path: Some(PathBuf::from(weights_path)),
        faults: FaultPlan::from_env(),
        ..ServeConfig::default()
    };
    if let Some(addr) = opts.get("addr") {
        if !addr.is_empty() {
            serve_cfg.addr = addr.clone();
        }
    }
    if let Some(workers) = opts.get("workers") {
        serve_cfg.workers = workers.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if serve_cfg.faults.active() {
        eprintln!("fault injection active (RTT_FAULTS)");
    }

    let mut server = Server::start(serve_cfg, model, designs).map_err(|e| format!("bind: {e}"))?;
    println!("serving on http://{}/ (POST /shutdown to stop)", server.addr());
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let report = server.shutdown();
    println!(
        "drained: {} requests, {} endpoints predicted, {} reload(s), {} queue rejection(s)",
        report.stats.requests,
        report.stats.endpoints_predicted,
        report.stats.reloads_ok,
        report.stats.queue_rejections
    );
    Ok(())
}

fn cmd_flow(opts: &HashMap<String, String>) -> Result<(), String> {
    let name = required(opts, "design")?;
    let scale = opt_scale(opts)?;
    let lib = CellLibrary::asap7_like();
    let params = preset(name, scale).ok_or_else(|| format!("unknown design `{name}`"))?;
    let data = run_design_flow(&params, &lib, &FlowConfig { scale, ..FlowConfig::default() });
    println!(
        "{name}: {} pins, {} endpoints, period {:.1} ps",
        data.input_netlist.num_pins(),
        data.input_graph.endpoints().len(),
        data.clock_period_ps
    );
    println!("  without opt: wns {:.1} ps, tns {:.1} ps", data.no_opt.wns, data.no_opt.tns);
    println!(
        "  with opt:    wns {:.1} ps, tns {:.1} ps ({} ops, {:.1}s opt / {:.1}s route / {:.1}s sta)",
        data.signoff.wns,
        data.signoff.tns,
        data.opt_report.total_ops(),
        data.timings.opt_s,
        data.timings.route_s,
        data.timings.sta_s,
    );
    println!(
        "  replaced: {:.1}% net edges, {:.1}% cell edges",
        data.diff.net_replaced_fraction() * 100.0,
        data.diff.cell_replaced_fraction() * 100.0
    );
    Ok(())
}
