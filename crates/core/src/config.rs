//! Model and training configuration.

/// Which branches of the model are active.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ModelVariant {
    /// GNN + CNN multimodal fusion (the paper's full model).
    #[default]
    Full,
    /// Netlist branch only ("our GNN-only" column of Table II).
    GnnOnly,
    /// Layout branch only ("our CNN-only" column of Table II).
    CnnOnly,
}

/// Fanin aggregation used for cell nodes (Equation 3 uses max; mean is the
/// A2 design-choice ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Aggregation {
    /// Column-wise maximum — matches the worst-arrival semantics of timing.
    #[default]
    Max,
    /// Column-wise mean.
    Mean,
}

/// Hyper-parameters of the model.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Active branches.
    pub variant: ModelVariant,
    /// Cell-node aggregation.
    pub aggregation: Aggregation,
    /// Apply the endpoint-wise critical-region mask (disablable for the A2
    /// ablation: a shared unmasked layout map for every endpoint).
    pub masking: bool,
    /// Node/endpoint embedding width (paper: 128).
    pub embed_dim: usize,
    /// Hidden width of the GNN MLPs (paper: 256).
    pub gnn_hidden: usize,
    /// Channels of the CNN trunk.
    pub cnn_channels: usize,
    /// Layout map resolution `G` (paper: 512); pooled to `G/4`. Must be a
    /// multiple of 4.
    pub grid: usize,
    /// Hidden width of the regression MLP (paper: 512).
    pub regressor_hidden: usize,
    /// Residual message passing: each node's embedding is its aggregated
    /// fanin message *plus* a non-negative ReLU increment
    /// (`h_v = agg + relu(f_c1(agg) + f_c2(x_v))`), instead of the literal
    /// Equation 3 form (`h_v = relu(f_c1(agg) + f_c2(x_v))`).
    ///
    /// The literal form must push gradients through hundreds of stacked
    /// MLP applications (fanin cones reach depth 400 in the paper) and
    /// collapses to a fixpoint in practice; the residual form mirrors
    /// arrival-time accumulation — monotone non-decreasing along paths —
    /// and trains reliably. Disablable for the ablation study.
    pub residual: bool,
    /// Regress `ln(1 + arrival)` instead of raw arrival.
    ///
    /// Our synthetic benchmark suite spans a ~400× range of endpoint
    /// arrival magnitudes (the paper's pin counts span 65×, with tighter
    /// arrival ranges). With linear targets the small designs contribute
    /// almost nothing to a standardized MSE, so their per-design R²
    /// collapses; log-space targets weight relative error uniformly. This
    /// is a reproduction-scale adaptation of the paper's Equation 2, noted
    /// in DESIGN.md.
    pub log_space: bool,
    /// RNG seed for weight initialization and batching.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's configuration (512×512 maps, 128-d embeddings, 256/512
    /// hidden). Heavy on CPU — use for `--scale paper` runs.
    pub fn paper() -> Self {
        Self {
            variant: ModelVariant::Full,
            aggregation: Aggregation::Max,
            masking: true,
            embed_dim: 128,
            gnn_hidden: 256,
            cnn_channels: 16,
            grid: 512,
            regressor_hidden: 512,
            residual: true,
            log_space: false,
            seed: 0xDAC2023,
        }
    }

    /// Default experiment scale: same architecture, reduced widths.
    pub fn small() -> Self {
        Self {
            embed_dim: 32,
            gnn_hidden: 32,
            cnn_channels: 8,
            grid: 64,
            regressor_hidden: 64,
            ..Self::paper()
        }
    }

    /// Minimal dimensions for tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            embed_dim: 8,
            gnn_hidden: 8,
            cnn_channels: 4,
            grid: 16,
            regressor_hidden: 16,
            ..Self::paper()
        }
    }

    /// Pooled layout-map edge length (`grid / 4`).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not a multiple of 4.
    pub fn pooled_grid(&self) -> usize {
        assert!(
            self.grid.is_multiple_of(4) && self.grid > 0,
            "grid must be a positive multiple of 4"
        );
        self.grid / 4
    }

    /// Returns a copy with another variant.
    #[must_use]
    pub fn with_variant(mut self, variant: ModelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Width of the fused embedding entering the regressor.
    pub fn fused_dim(&self) -> usize {
        match self.variant {
            ModelVariant::Full => 2 * self.embed_dim,
            ModelVariant::GnnOnly | ModelVariant::CnnOnly => self.embed_dim,
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Training-loop configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Epochs over the training designs (paper: 200).
    pub epochs: usize,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
    /// Endpoints sampled per design per step (paper batch: 1024).
    pub batch_endpoints: usize,
    /// Print progress every N epochs (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 60, lr: 1e-3, batch_endpoints: 1024, log_every: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_text() {
        let p = ModelConfig::paper();
        assert_eq!(p.embed_dim, 128);
        assert_eq!(p.gnn_hidden, 256);
        assert_eq!(p.grid, 512);
        assert_eq!(p.pooled_grid(), 128);
        assert_eq!(p.regressor_hidden, 512);
        assert_eq!(TrainConfig { epochs: 200, ..TrainConfig::default() }.lr, 1e-3);
    }

    #[test]
    fn fused_dim_depends_on_variant() {
        let c = ModelConfig::small();
        assert_eq!(c.fused_dim(), 64);
        assert_eq!(c.with_variant(ModelVariant::GnnOnly).fused_dim(), 32);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn grid_must_divide() {
        let c = ModelConfig { grid: 30, ..ModelConfig::tiny() };
        let _ = c.pooled_grid();
    }
}
