//! Tier-1 enforcement: the workspace must lint clean. This runs the same
//! pass as `cargo run -p rtt-lint --release`, so `cargo test` fails when
//! new findings land without a fix, an inline reason, or a baseline entry.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = rtt_lint::lint_workspace(root).expect("lint pass runs");
    assert!(report.files_checked > 50, "walker must cover the workspace");
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    assert!(
        report.warnings.is_empty(),
        "malformed suppressions or unreadable files: {:?}",
        report.warnings
    );
    let rendered: String = report.findings.iter().map(|f| f.render_text()).collect();
    assert!(
        report.findings.is_empty(),
        "rtt-lint found {} unsuppressed finding(s):\n{rendered}",
        report.findings.len()
    );
}

#[test]
fn call_graph_covers_the_serving_surface() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = rtt_lint::lint_workspace(root).expect("lint pass runs");
    // The serving surface: TimingModel::{predict, predict_with,
    // predict_batch, predict_many} plus the baselines' predict entry
    // points. Losing a marker would silently turn R003 off for that path.
    assert!(report.entry_points >= 7, "only {} entry points annotated", report.entry_points);
    // The kernel hot set: ops kernels, layer forward_into paths, and the
    // inference-arena primitives.
    assert!(report.hot_fns >= 20, "only {} hot fns annotated", report.hot_fns);
    assert!(report.call_edges > 1_000, "call graph collapsed: {} edges", report.call_edges);
}

#[test]
fn baseline_entries_point_at_real_files() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("lint-allow.toml")).expect("baseline exists");
    let baseline = rtt_lint::Baseline::parse(&text).expect("baseline parses");
    assert!(!baseline.entries.is_empty());
    for e in &baseline.entries {
        assert!(root.join(&e.path).is_file(), "stale baseline entry: {}", e.path);
        assert!(!e.reason.trim().is_empty(), "empty reason for {}", e.path);
    }
}
