//! Evaluation metrics.

/// Coefficient of determination `R² = 1 - SS_res / SS_tot` — the paper's
/// evaluation metric for all regression results.
///
/// Returns 1.0 for a perfect fit; can be arbitrarily negative for a model
/// worse than predicting the mean. Returns `f32::NAN` for fewer than two
/// samples or zero target variance.
pub fn r2_score(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "r2 needs aligned slices");
    if truth.len() < 2 {
        return f32::NAN;
    }
    let mean = truth.iter().sum::<f32>() / truth.len() as f32;
    let ss_tot: f32 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot <= f32::MIN_POSITIVE {
        return f32::NAN;
    }
    let ss_res: f32 = pred.iter().zip(truth).map(|(p, t)| (p - t).powi(2)).sum();
    1.0 - ss_res / ss_tot
}

/// Mean absolute error.
pub fn mae(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "mae needs aligned slices");
    if pred.is_empty() {
        return f32::NAN;
    }
    pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f32>() / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_fit_is_one() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn mean_predictor_is_zero() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!((r2_score(&pred, &truth)).abs() < 1e-6);
    }

    #[test]
    fn bad_fit_is_negative() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 99.0];
        assert!(r2_score(&pred, &truth) < 0.0);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(r2_score(&[1.0], &[1.0]).is_nan());
        assert!(r2_score(&[1.0, 2.0], &[5.0, 5.0]).is_nan());
        assert!(mae(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let _ = r2_score(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn r2_is_at_most_one(
            truth in proptest::collection::vec(-100.0f32..100.0, 3..30),
            noise in proptest::collection::vec(-10.0f32..10.0, 3..30),
        ) {
            let n = truth.len().min(noise.len());
            let pred: Vec<f32> = truth[..n].iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
            let r = r2_score(&pred, &truth[..n]);
            prop_assert!(r.is_nan() || r <= 1.0 + 1e-5);
        }

        #[test]
        fn mae_is_translation_invariant(
            truth in proptest::collection::vec(-50.0f32..50.0, 2..20),
            shift in -5.0f32..5.0,
        ) {
            let pred: Vec<f32> = truth.iter().map(|t| t + shift).collect();
            prop_assert!((mae(&pred, &truth) - shift.abs()).abs() < 1e-4);
        }
    }
}
