//! Layer zoo: linear, MLP, and 2-D convolution.

use rand::Rng;

use crate::{ops, Exec, ParamId, ParamStore, Tensor};

/// A fully-connected layer `y = x·W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized layer in `store`.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let w = store.register(Tensor::xavier(rng, in_dim, out_dim));
        let b = store.register(Tensor::zeros(&[out_dim]));
        Self { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a `[rows, in_dim]` matrix on any execution
    /// backend (`&Tape` for training, `&InferCtx` for tape-free serving).
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn forward<E: Exec>(&self, ex: E, store: &ParamStore, x: E::Value) -> E::Value {
        let w = ex.param(store, self.w);
        let b = ex.param(store, self.b);
        ex.add_row(ex.matmul(x, w), b)
    }

    /// Tape-free forward directly into a caller-provided buffer: one
    /// matmul plus an in-place bias add, bit-identical to
    /// [`Linear::forward`] on any backend (the kernels and their order
    /// are the same; only the intermediate copies disappear).
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    // rtt-lint: hot
    pub fn forward_into(&self, store: &ParamStore, x: &Tensor, out: &mut Tensor) {
        ops::matmul(x, store.value(self.w), out);
        ops::add_row_in_place(out, store.value(self.b).data());
    }
}

/// A multi-layer perceptron with ReLU between layers — the paper's
/// `f^MLP` blocks (3 layers in all experiments).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    // Cached from `widths` at construction so the dim accessors stay
    // panic-free on the serving path (R003).
    in_dim: usize,
    out_dim: usize,
}

impl Mlp {
    /// Builds an MLP through the given widths, e.g. `[in, hidden, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        let layers = widths.windows(2).map(|w| Linear::new(store, rng, w[0], w[1])).collect();
        Self { layers, in_dim: widths[0], out_dim: widths[widths.len() - 1] }
    }

    /// Builds an MLP whose *final* layer is initialized `output_scale`
    /// smaller, with a small positive bias.
    ///
    /// This is the standard initialization for residual increments: the
    /// block starts near (but not exactly at) zero, so a deep residual
    /// stack neither explodes at initialization nor starves the ReLU of
    /// gradient.
    pub fn new_scaled<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        widths: &[usize],
        output_scale: f32,
    ) -> Self {
        let mlp = Self::new(store, rng, widths);
        if let Some(last) = mlp.layers.last() {
            store.value_mut(last.w).scale_assign(output_scale);
            for v in store.value_mut(last.b).data_mut() {
                *v = 0.02;
            }
        }
        mlp
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies all layers with ReLU on every hidden activation (the output
    /// layer is linear).
    pub fn forward<E: Exec>(&self, ex: E, store: &ParamStore, x: E::Value) -> E::Value {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(ex, store, h);
            if i + 1 < self.layers.len() {
                h = ex.relu(h);
            }
        }
        h
    }

    /// Tape-free forward through all layers into `out`, ping-ponging the
    /// hidden activations between `tmp0` and `tmp1` with in-place ReLU.
    /// Bit-identical to [`Mlp::forward`] (same kernels, same order).
    // rtt-lint: hot
    pub fn forward_into(
        &self,
        store: &ParamStore,
        x: &Tensor,
        tmp0: &mut Tensor,
        tmp1: &mut Tensor,
        out: &mut Tensor,
    ) {
        let n = self.layers.len();
        if n == 1 {
            self.layers[0].forward_into(store, x, out);
            return;
        }
        self.layers[0].forward_into(store, x, tmp0);
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            ops::relu_in_place(tmp0);
            if i + 1 == n {
                layer.forward_into(store, tmp0, out);
            } else {
                layer.forward_into(store, tmp0, tmp1);
                std::mem::swap(tmp0, tmp1);
            }
        }
    }
}

/// A 2-D convolution layer with per-channel bias, stride 1.
#[derive(Clone, Debug)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    pad: usize,
}

impl Conv2d {
    /// Registers a conv layer with a `[out_ch, in_ch, k, k]` kernel.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        pad: usize,
    ) -> Self {
        let fan_in = in_ch * k * k;
        let bound = (6.0 / (fan_in + out_ch * k * k) as f32).sqrt();
        let w = store.register(Tensor::uniform(rng, &[out_ch, in_ch, k, k], bound));
        let b = store.register(Tensor::zeros(&[out_ch]));
        Self { w, b, pad }
    }

    /// Applies the convolution to a `[in_ch, H, W]` feature map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward<E: Exec>(&self, ex: E, store: &ParamStore, x: E::Value) -> E::Value {
        let w = ex.param(store, self.w);
        let b = ex.param(store, self.b);
        ex.add_channel(ex.conv2d(x, w, self.pad), b)
    }

    /// Tape-free forward into `out`, reusing the caller's im2col scratch
    /// `col` across calls. Bit-identical to [`Conv2d::forward`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    // rtt-lint: hot
    pub fn forward_into(&self, store: &ParamStore, x: &Tensor, col: &mut Tensor, out: &mut Tensor) {
        ops::conv2d(x, store.value(self.w), self.pad, col, out);
        ops::add_channel_in_place(out, store.value(self.b).data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse, Adam, Tape};
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, &mut rng, 3, 5);
        assert_eq!((l.in_dim(), l.out_dim()), (3, 5));
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[7, 3]));
        let y = l.forward(&tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[7, 5]);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, &[2, 8, 8, 1]);
        let x = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut adam = Adam::new(0.02);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let tape = Tape::new();
            let pred = mlp.forward(&tape, &store, tape.constant(x.clone()));
            let loss = mse(&tape, pred, tape.constant(y.clone()));
            last = tape.value(loss).data()[0];
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(last < 0.02, "xor loss stayed at {last}");
    }

    #[test]
    fn conv_output_shape_with_padding() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let conv = Conv2d::new(&mut store, &mut rng, 3, 6, 3, 1);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 16, 16]));
        let y = conv.forward(&tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[6, 16, 16]);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn mlp_needs_two_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, &mut rng, &[4]);
    }
}
