//! Criterion micro-benchmarks of the kernels behind every experiment:
//! STA propagation (Tables I/III), routing (Tables I/III), GNN forward and
//! CNN forward (Tables II/III), and mask generation (Fig. 6 / Table III
//! preprocessing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtt_circgen::GenParams;
use rtt_core::{Aggregation, GnnSchedule, LayoutCnn, LevelFeats, ModelConfig, NetlistGnn};
use rtt_features::{endpoint_masks, NodeFeatures};
use rtt_netlist::{CellLibrary, Netlist, TimingGraph};
use rtt_nn::{ParamStore, Tape, Tensor};
use rtt_place::{place, PlaceConfig, Placement};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, WireModel};

struct World {
    lib: CellLibrary,
    nl: Netlist,
    pl: Placement,
    graph: TimingGraph,
}

fn world(cells: usize) -> World {
    let lib = CellLibrary::asap7_like();
    let nl = GenParams::new(format!("b{cells}"), cells, 7).generate(&lib).netlist;
    let pl = place(&nl, &lib, 1, &PlaceConfig::default());
    let graph = TimingGraph::build(&nl, &lib);
    World { lib, nl, pl, graph }
}

fn bench_sta(c: &mut Criterion) {
    let mut g = c.benchmark_group("sta_propagation");
    for cells in [500usize, 2000] {
        let w = world(cells);
        let rt = route(&w.nl, &w.lib, &w.pl, &RouteConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&rt), 500.0))
        });
    }
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("route");
    for cells in [500usize, 2000] {
        let w = world(cells);
        g.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| route(&w.nl, &w.lib, &w.pl, &RouteConfig::default()))
        });
    }
    g.finish();
}

fn bench_gnn_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("gnn_forward");
    g.sample_size(20);
    for cells in [500usize, 2000] {
        let w = world(cells);
        let schedule = GnnSchedule::build(&w.graph);
        let features = NodeFeatures::extract(&w.nl, &w.lib, &w.graph, &w.pl);
        let feats = LevelFeats::assemble(&schedule, &features);
        let cfg = ModelConfig::small();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let mut store = ParamStore::new();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        g.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
                tape.value(emb)
            })
        });
    }
    g.finish();
}

fn bench_cnn_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("cnn_forward");
    g.sample_size(20);
    for grid in [32usize, 64] {
        let cfg = ModelConfig { grid, ..ModelConfig::small() };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cnn = LayoutCnn::new(&mut store, &mut rng, &cfg);
        let input = Tensor::full(&[3, grid, grid], 0.3);
        g.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, _| {
            b.iter(|| {
                let tape = Tape::new();
                let y = cnn.forward(&tape, &store, tape.constant(input.clone()));
                tape.value(y)
            })
        });
    }
    g.finish();
}

fn bench_masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("endpoint_masks");
    for cells in [500usize, 2000] {
        let w = world(cells);
        g.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| endpoint_masks(&w.nl, &w.pl, &w.graph, 16))
        });
    }
    g.finish();
}

/// Thread counts the kernel benchmarks sweep: serial vs. every core.
fn thread_counts() -> Vec<usize> {
    let all = std::thread::available_parallelism().map_or(1, |n| n.get());
    if all > 1 {
        vec![1, all]
    } else {
        vec![1]
    }
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    // Rows span a minibatch (8) up to a large endpoint batch (256); the
    // inner dims match the model's hidden width.
    let hidden = ModelConfig::small().gnn_hidden.max(64);
    for rows in [8usize, 64, 256] {
        let a = Tensor::uniform(&mut rng, &[rows, hidden], 1.0);
        let b = Tensor::uniform(&mut rng, &[hidden, hidden], 1.0);
        for threads in thread_counts() {
            rtt_nn::parallel::set_num_threads(threads);
            let id = BenchmarkId::new(format!("{rows}x{hidden}x{hidden}"), format!("t{threads}"));
            g.bench_with_input(id, &rows, |bch, _| bch.iter(|| a.matmul(&b)));
        }
    }
    rtt_nn::parallel::set_num_threads(1);
    g.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    g.sample_size(20);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    // The layout CNN's first conv at the two bench grids.
    let channels = ModelConfig::small().cnn_channels;
    let w = Tensor::uniform(&mut rng, &[channels, 3, 3, 3], 0.5);
    for grid in [32usize, 64] {
        let x = Tensor::uniform(&mut rng, &[3, grid, grid], 1.0);
        for threads in thread_counts() {
            rtt_nn::parallel::set_num_threads(threads);
            let id = BenchmarkId::new(format!("3x{grid}x{grid}"), format!("t{threads}"));
            g.bench_with_input(id, &grid, |bch, _| {
                bch.iter(|| {
                    let tape = Tape::new();
                    let y = tape.conv2d(tape.constant(x.clone()), tape.constant(w.clone()), 1);
                    tape.value(y)
                })
            });
        }
    }
    rtt_nn::parallel::set_num_threads(1);
    g.finish();
}

fn bench_place(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    g.sample_size(10);
    let lib = CellLibrary::asap7_like();
    let d = GenParams::new("p", 1000, 3).generate(&lib);
    g.bench_function("place_1000", |b| {
        b.iter(|| place(&d.netlist, &lib, 1, &PlaceConfig::default()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sta,
    bench_route,
    bench_gnn_forward,
    bench_cnn_forward,
    bench_matmul,
    bench_conv2d,
    bench_masks,
    bench_place
);
criterion_main!(benches);
