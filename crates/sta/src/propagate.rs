//! Arrival-time propagation.

use std::collections::{BTreeMap, HashMap};

use rtt_netlist::{CellLibrary, EdgeKind, Netlist, PinDir, PinId, TimingEdge, TimingGraph};
use rtt_place::Placement;
use rtt_route::Routing;

/// Where wire delays and loads come from.
#[derive(Clone, Copy, Debug)]
pub enum WireModel<'a> {
    /// Placement-only estimate: per-sink Manhattan wire treated as an
    /// isolated RC line (the classic pre-routing Elmore model).
    PreRoute(&'a Placement),
    /// Sign-off mode: delays and loads from the routed RC trees.
    Routed(&'a Routing),
}

/// Generic PERT traversal: computes the arrival time of every node given a
/// per-edge delay function and a per-source launch time function.
///
/// This is shared by the real STA (physical delays) and by the local-view
/// baselines, which re-assemble *predicted* local delays into endpoint
/// arrivals exactly this way.
pub fn propagate<D, S>(graph: &TimingGraph, mut edge_delay: D, mut source_time: S) -> Vec<f32>
where
    D: FnMut(&TimingEdge) -> f32,
    S: FnMut(u32) -> f32,
{
    let obs = rtt_obs::span("sta::propagate");
    let mut edges = 0u64;
    let mut max_level = 0u32;
    let mut arrival = vec![0.0f32; graph.num_nodes()];
    for v in graph.topo_order() {
        // `None` means "no fanin yet" — distinct from any arrival value, so
        // sources need no sentinel and no float-equality test.
        let mut best: Option<f32> = None;
        for e in graph.fanin(v) {
            let a = arrival[e.from as usize] + edge_delay(e);
            edges += 1;
            best = Some(match best {
                Some(b) if b >= a => b,
                _ => a,
            });
        }
        max_level = max_level.max(graph.level(v));
        arrival[v as usize] = best.unwrap_or_else(|| source_time(v));
    }
    obs.add("nodes", graph.num_nodes() as u64);
    obs.add("edges_relaxed", edges);
    obs.add("levels", u64::from(max_level) + u64::from(graph.num_nodes() > 0));
    arrival
}

/// Transitive fan-out cone of `seeds` (the seeds included), in the same
/// PERT/topological order [`propagate`] visits nodes. One in-order sweep
/// suffices because every edge points from an earlier to a later node in
/// `topo_order`. This is the cone an incremental predictor must
/// recompute when the seed pins change, and the cone a restructuring
/// transform invalidates — callers use it both to bound dirty-set sizes
/// and to pick transform sites with a target cone fraction.
pub fn fanout_cone(graph: &TimingGraph, seeds: &[u32]) -> Vec<u32> {
    let mut marked = vec![false; graph.num_nodes()];
    for &s in seeds {
        marked[s as usize] = true;
    }
    let mut cone = Vec::new();
    for v in graph.topo_order() {
        if !marked[v as usize] && graph.fanin(v).any(|e| marked[e.from as usize]) {
            marked[v as usize] = true;
        }
        if marked[v as usize] {
            cone.push(v);
        }
    }
    cone
}

/// Min-delay counterpart of [`propagate`]: earliest arrival per node (the
/// forward pass of hold-time analysis).
pub fn propagate_min<D, S>(graph: &TimingGraph, mut edge_delay: D, mut source_time: S) -> Vec<f32>
where
    D: FnMut(&TimingEdge) -> f32,
    S: FnMut(u32) -> f32,
{
    let mut arrival = vec![0.0f32; graph.num_nodes()];
    for v in graph.topo_order() {
        let mut best: Option<f32> = None;
        for e in graph.fanin(v) {
            let a = arrival[e.from as usize] + edge_delay(e);
            best = Some(match best {
                Some(b) if b <= a => b,
                _ => a,
            });
        }
        arrival[v as usize] = best.unwrap_or_else(|| source_time(v));
    }
    arrival
}

/// Runs sign-off or pre-routing STA and assembles an [`crate::StaReport`].
///
/// Flip-flop outputs launch at the cell's intrinsic (clock-to-Q) delay;
/// primary inputs launch at time 0.
pub fn run_sta(
    netlist: &Netlist,
    library: &CellLibrary,
    graph: &TimingGraph,
    wire: WireModel<'_>,
    clock_period_ps: f32,
) -> crate::StaReport {
    rtt_obs::span!("sta::run");
    // Per-driver output load (for the cell delay model).
    let load_of = |driver: PinId| -> f32 {
        let Some(net_id) = netlist.pin(driver).net else { return 0.0 };
        match wire {
            WireModel::Routed(routing) => routing.net(net_id).map_or(0.0, |rn| rn.total_cap_ff),
            WireModel::PreRoute(placement) => {
                let net = netlist.net(net_id);
                let d = placement.pin_position(netlist, driver);
                let cfg = rtt_route::RouteConfig::default();
                net.sinks
                    .iter()
                    .map(|&s| {
                        let len = d.manhattan(placement.pin_position(netlist, s));
                        len * cfg.unit_cap_ff_per_um + sink_cap(netlist, library, s)
                    })
                    .sum()
            }
        }
    };

    let edge_delay = |e: &TimingEdge| -> f32 {
        match e.kind {
            EdgeKind::Net => {
                let driver = graph.pin_of(e.from);
                let sink = graph.pin_of(e.to);
                match wire {
                    WireModel::Routed(routing) => e
                        .net
                        .and_then(|nid| routing.net(nid))
                        .and_then(|rn| rn.sink_delay(sink))
                        .unwrap_or(0.0),
                    WireModel::PreRoute(placement) => {
                        let cfg = rtt_route::RouteConfig::default();
                        let len = placement
                            .pin_position(netlist, driver)
                            .manhattan(placement.pin_position(netlist, sink));
                        let r = len * cfg.unit_res_kohm_per_um;
                        let c = len * cfg.unit_cap_ff_per_um;
                        r * (c * 0.5 + sink_cap(netlist, library, sink))
                    }
                }
            }
            EdgeKind::Cell => match e.cell {
                Some(cell) => {
                    let ty = library.cell_type(netlist.cell(cell).type_id);
                    let out = netlist.cell(cell).output;
                    ty.intrinsic_ps + ty.drive_res_kohm * load_of(out)
                }
                None => {
                    // TimingGraph construction attaches the cell id to
                    // every cell edge; zero delay is the safe fallback.
                    debug_assert!(false, "cell edge {}->{} lost its cell id", e.from, e.to);
                    0.0
                }
            },
        }
    };

    let source_time = |v: u32| -> f32 {
        let pin = netlist.pin(graph.pin_of(v));
        match (pin.cell, pin.dir) {
            // Flip-flop Q pin: clock-to-Q launch.
            (Some(c), PinDir::Drive) => {
                let ty = library.cell_type(netlist.cell(c).type_id);
                if ty.is_sequential() {
                    ty.intrinsic_ps
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    };

    // Compute every edge delay once, up front: the max/min/required
    // passes and the report all read from this cache, and a miss is
    // structurally impossible because the same edge iterator fills it.
    let mut edge_delay_cache: HashMap<(PinId, PinId), f32> = HashMap::new();
    for e in graph.edges() {
        edge_delay_cache.insert((graph.pin_of(e.from), graph.pin_of(e.to)), edge_delay(e));
    }
    let cached_delay = |from: u32, to: u32| -> f32 {
        let d = edge_delay_cache.get(&(graph.pin_of(from), graph.pin_of(to))).copied();
        debug_assert!(d.is_some(), "edge {from}->{to} was cached above");
        d.unwrap_or(0.0)
    };
    let arrival_nodes = propagate(graph, |e| cached_delay(e.from, e.to), source_time);

    // Split the cache by edge kind. BTreeMap: the report iterates these,
    // and downstream feature extraction must see a stable order.
    let mut net_edge_delay = BTreeMap::new();
    let mut cell_edge_delay = BTreeMap::new();
    for e in graph.edges() {
        let key = (graph.pin_of(e.from), graph.pin_of(e.to));
        let d = cached_delay(e.from, e.to);
        match e.kind {
            EdgeKind::Net => net_edge_delay.insert(key, d),
            EdgeKind::Cell => cell_edge_delay.insert(key, d),
        };
    }

    // Min-delay (hold) analysis: earliest arrivals over the cached edge
    // delays, checked against the flip-flop hold requirement.
    let arrival_min_nodes = propagate_min(graph, |e| cached_delay(e.from, e.to), source_time);
    let mut hold_wns = f32::INFINITY;
    for &v in graph.endpoints() {
        let pin = netlist.pin(graph.pin_of(v));
        // Hold requirement applies at sequential data pins only.
        let hold_ps = match pin.cell {
            Some(c) if library.cell_type(netlist.cell(c).type_id).is_sequential() => {
                HOLD_REQUIREMENT_PS
            }
            _ => 0.0,
        };
        hold_wns = hold_wns.min(arrival_min_nodes[v as usize] - hold_ps);
    }
    if graph.endpoints().is_empty() {
        hold_wns = 0.0;
    }

    // Required times: backward min-propagation from the endpoints.
    let mut required_nodes = vec![f32::INFINITY; graph.num_nodes()];
    for &v in graph.endpoints() {
        required_nodes[v as usize] = clock_period_ps;
    }
    let order: Vec<u32> = graph.topo_order().collect();
    for &v in order.iter().rev() {
        for e in graph.fanout(v) {
            let d = cached_delay(e.from, e.to);
            let r = required_nodes[e.to as usize] - d;
            if r < required_nodes[v as usize] {
                required_nodes[v as usize] = r;
            }
        }
    }

    // Re-index arrivals/required by pin id and collect endpoints.
    let mut arrival = vec![f32::NAN; netlist.pin_capacity()];
    let mut arrival_min = vec![f32::NAN; netlist.pin_capacity()];
    let mut required = vec![f32::NAN; netlist.pin_capacity()];
    for v in 0..graph.num_nodes() as u32 {
        arrival[graph.pin_of(v).index()] = arrival_nodes[v as usize];
        arrival_min[graph.pin_of(v).index()] = arrival_min_nodes[v as usize];
        let r = required_nodes[v as usize];
        required[graph.pin_of(v).index()] = if r.is_finite() { r } else { f32::NAN };
    }
    let endpoints: Vec<(PinId, f32)> =
        graph.endpoints().iter().map(|&v| (graph.pin_of(v), arrival_nodes[v as usize])).collect();

    let mut wns = f32::INFINITY;
    let mut tns = 0.0f32;
    for &(_, a) in &endpoints {
        let slack = clock_period_ps - a;
        wns = wns.min(slack);
        if slack < 0.0 {
            tns += slack;
        }
    }
    if endpoints.is_empty() {
        wns = 0.0;
    }

    crate::StaReport {
        clock_period_ps,
        wns,
        tns,
        hold_wns,
        arrival,
        arrival_min,
        required,
        endpoints,
        net_edge_delay,
        cell_edge_delay,
    }
}

/// Hold requirement at sequential data pins, ps. A fixed synthetic value:
/// the library does not model per-cell hold arcs.
pub const HOLD_REQUIREMENT_PS: f32 = 4.0;

fn sink_cap(netlist: &Netlist, library: &CellLibrary, sink: PinId) -> f32 {
    match netlist.pin(sink).cell {
        Some(c) => library.cell_type(netlist.cell(c).type_id).pin_cap_ff,
        None => 1.0, // output port load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_netlist::TimingGraph;
    use rtt_place::{place, PlaceConfig};
    use rtt_route::{route, RouteConfig};

    struct World {
        lib: CellLibrary,
        nl: Netlist,
        pl: Placement,
        rt: Routing,
        graph: TimingGraph,
    }

    fn world(nl_builder: impl FnOnce(&CellLibrary) -> Netlist) -> World {
        let lib = CellLibrary::asap7_like();
        let nl = nl_builder(&lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let rt = route(&nl, &lib, &pl, &RouteConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        World { lib, nl, pl, rt, graph }
    }

    #[test]
    fn arrivals_increase_along_paths() {
        let w = world(|lib| ripple_carry_adder(8, lib));
        let rep = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 500.0);
        for e in w.graph.edges() {
            let a = rep.arrival(w.graph.pin_of(e.from)).unwrap();
            let b = rep.arrival(w.graph.pin_of(e.to)).unwrap();
            assert!(b >= a, "arrival not monotonic along edge");
        }
    }

    #[test]
    fn carry_chain_dominates() {
        let w = world(|lib| ripple_carry_adder(8, lib));
        let rep = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 500.0);
        // cout (end of the carry chain) must be the slowest endpoint.
        let cout =
            w.nl.output_ports().iter().copied().find(|&p| w.nl.pin(p).name == "cout").unwrap();
        let cout_arr = rep.arrival(cout).unwrap();
        assert!((rep.max_arrival() - cout_arr).abs() < 1e-3);
    }

    #[test]
    fn wns_tns_match_endpoints() {
        let w = world(|lib| ripple_carry_adder(6, lib));
        let rep = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 100.0);
        let min_slack =
            rep.endpoint_arrivals().iter().map(|&(_, a)| 100.0 - a).fold(f32::INFINITY, f32::min);
        assert!((rep.wns - min_slack).abs() < 1e-4);
        let neg: f32 = rep.endpoint_arrivals().iter().map(|&(_, a)| (100.0 - a).min(0.0)).sum();
        assert!((rep.tns - neg).abs() < 1e-3);
        assert!(rep.tns <= 0.0);
    }

    #[test]
    fn flop_outputs_launch_at_clk2q() {
        let w = world(|lib| ripple_carry_adder(4, lib));
        let rep = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 500.0);
        let (dff_c, dff) =
            w.nl.cells().find(|(_, c)| w.lib.cell_type(c.type_id).is_sequential()).unwrap();
        let _ = dff_c;
        let q_arr = rep.arrival(dff.output).unwrap();
        let clk2q = w.lib.cell_type(dff.type_id).intrinsic_ps;
        assert!((q_arr - clk2q).abs() < 1e-4);
    }

    #[test]
    fn preroute_and_routed_disagree() {
        let w = world(|lib| GenParams::new("g", 300, 3).generate(lib).netlist);
        let pre = run_sta(&w.nl, &w.lib, &w.graph, WireModel::PreRoute(&w.pl), 500.0);
        let post = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 500.0);
        // Same endpoints, different numbers (detours + tree sharing).
        assert_eq!(pre.endpoint_arrivals().len(), post.endpoint_arrivals().len());
        let diff: f32 = pre
            .endpoint_arrivals()
            .iter()
            .zip(post.endpoint_arrivals())
            .map(|(&(_, a), &(_, b))| (a - b).abs())
            .sum();
        assert!(diff > 0.0, "models should not agree exactly");
    }

    #[test]
    fn edge_delays_are_exposed() {
        let w = world(|lib| ripple_carry_adder(2, lib));
        let rep = run_sta(&w.nl, &w.lib, &w.graph, WireModel::Routed(&w.rt), 500.0);
        assert_eq!(rep.net_edge_delays().count(), w.graph.num_net_edges());
        assert_eq!(rep.cell_edge_delays().count(), w.graph.num_cell_edges());
        for (_, _, d) in rep.net_edge_delays() {
            assert!(d.is_finite() && d >= 0.0);
        }
        for (_, _, d) in rep.cell_edge_delays() {
            assert!(d > 0.0, "cell delay includes intrinsic");
        }
    }

    #[test]
    fn generic_propagate_with_unit_delays_counts_levels() {
        let w = world(|lib| ripple_carry_adder(3, lib));
        let arr = propagate(&w.graph, |_| 1.0, |_| 0.0);
        for v in 0..w.graph.num_nodes() as u32 {
            assert!(
                (arr[v as usize] - w.graph.level(v) as f32).abs() < 1e-5,
                "unit-delay arrival must equal topological level"
            );
        }
    }

    #[test]
    fn upsizing_a_driver_reduces_its_cell_delay() {
        let lib = CellLibrary::asap7_like();
        let mut nl = ripple_carry_adder(4, &lib);
        let (cid, cell) = nl
            .cells()
            .find(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(id, c)| (id, c.clone()))
            .unwrap();
        let input = cell.inputs[0];
        let out = cell.output;

        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let rt = route(&nl, &lib, &pl, &RouteConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        let before = run_sta(&nl, &lib, &g, WireModel::Routed(&rt), 500.0)
            .cell_edge_delay(input, out)
            .unwrap();

        let stronger = lib.pick(lib.cell_type(cell.type_id).gate, 8).unwrap();
        nl.resize_cell(cid, stronger, &lib).unwrap();
        let rt2 = route(&nl, &lib, &pl, &RouteConfig::default());
        let g2 = TimingGraph::build(&nl, &lib);
        let after = run_sta(&nl, &lib, &g2, WireModel::Routed(&rt2), 500.0)
            .cell_edge_delay(input, out)
            .unwrap();
        assert!(after < before, "upsize should speed the cell: {after} vs {before}");
    }
}

#[cfg(test)]
mod required_tests {
    use super::*;
    use rtt_circgen::ripple_carry_adder;
    use rtt_netlist::TimingGraph;
    use rtt_place::{place, PlaceConfig};
    use rtt_route::{route, RouteConfig};

    #[test]
    fn slack_matches_endpoint_definition() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(6, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let rt = route(&nl, &lib, &pl, &RouteConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        let rep = run_sta(&nl, &lib, &g, WireModel::Routed(&rt), 200.0);
        // At an endpoint, slack = period - arrival exactly.
        for &(pin, a) in rep.endpoint_arrivals() {
            let s = rep.pin_slack(pin).unwrap();
            assert!((s - (200.0 - a)).abs() < 1e-3, "slack {s} vs {}", 200.0 - a);
        }
        // Along every edge, slack never increases toward the endpoint side
        // beyond numerical noise on the *critical* fanout; generally
        // required(from) <= required(to) - delay for the tightest fanout.
        let min_pin_slack = (0..g.num_nodes() as u32)
            .filter_map(|v| rep.pin_slack(g.pin_of(v)))
            .fold(f32::INFINITY, f32::min);
        assert!((min_pin_slack - rep.wns).abs() < 1e-3, "wns must be the min slack");
    }

    #[test]
    fn hold_analysis_reports_min_arrivals() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(6, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let rt = route(&nl, &lib, &pl, &RouteConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        let rep = run_sta(&nl, &lib, &g, WireModel::Routed(&rt), 500.0);
        // Min arrival never exceeds max arrival, anywhere.
        for v in 0..g.num_nodes() as u32 {
            let pin = g.pin_of(v);
            let lo = rep.arrival_min(pin).unwrap();
            let hi = rep.arrival(pin).unwrap();
            assert!(lo <= hi + 1e-4, "min {lo} > max {hi}");
        }
        // The worst hold slack matches the endpoint definition.
        let mut expect = f32::INFINITY;
        for &v in g.endpoints() {
            let pin = g.pin_of(v);
            let is_seq = nl
                .pin(pin)
                .cell
                .map(|c| lib.cell_type(nl.cell(c).type_id).is_sequential())
                .unwrap_or(false);
            let req = if is_seq { HOLD_REQUIREMENT_PS } else { 0.0 };
            expect = expect.min(rep.arrival_min(pin).unwrap() - req);
        }
        assert!((rep.hold_wns - expect).abs() < 1e-4);
    }

    #[test]
    fn min_propagation_with_unit_delays_is_shortest_path() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(3, &lib);
        let g = TimingGraph::build(&nl, &lib);
        let lo = propagate_min(&g, |_| 1.0, |_| 0.0);
        let hi = propagate(&g, |_| 1.0, |_| 0.0);
        for v in 0..g.num_nodes() as u32 {
            assert!(lo[v as usize] <= hi[v as usize]);
        }
    }

    #[test]
    fn required_is_infinite_only_off_path() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(3, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let rt = route(&nl, &lib, &pl, &RouteConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        let rep = run_sta(&nl, &lib, &g, WireModel::Routed(&rt), 300.0);
        // Every pin in the adder reaches an endpoint, so all have required.
        for v in 0..g.num_nodes() as u32 {
            assert!(rep.required(g.pin_of(v)).is_some());
        }
    }
}
