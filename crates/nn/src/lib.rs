//! A minimal reverse-mode autodiff engine for the paper's models.
//!
//! The paper builds on DGL + PyTorch; no comparable Rust stack exists, so
//! this crate implements exactly the operator set the customized GNN
//! (Equation 3), the layout CNN, the endpoint masking, and the MLP heads
//! need: dense matmul/broadcast arithmetic, ReLU/tanh, gather/segment ops
//! for levelized message passing, row/column concatenation, 2-D convolution
//! and max-pooling, and scalar reductions — all with hand-written backward
//! passes that are verified against central finite differences in the test
//! suite.
//!
//! # Architecture
//!
//! * [`Tensor`] — a dense row-major float tensor.
//! * [`ops`] — pure forward kernels, written once and shared by both
//!   execution backends (the bit-identity contract lives here).
//! * [`Tape`] / [`Var`] — a define-by-run computation graph; every forward
//!   op records what it needs for the backward sweep.
//! * [`Exec`] — the execution-backend trait model code is generic over.
//! * [`InferCtx`] — the tape-free inference backend: same kernels, no
//!   gradient nodes, a buffer arena recycled across forward passes.
//! * [`ParamStore`] / [`ParamId`] — long-lived trainable tensors, injected
//!   into each tape as leaves and updated from [`Grads`] by an optimizer.
//! * [`Linear`], [`Mlp`], [`Conv2d`] — the layer zoo.
//! * [`Adam`], [`Sgd`] — optimizers.
//! * [`parallel`] — global thread-pool configuration; every kernel is
//!   bit-identical across thread counts.
//!
//! # Example
//!
//! Fit `y = 2x` with one linear layer:
//!
//! ```
//! use rtt_nn::{Adam, Linear, ParamStore, Tape, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, &mut rng, 1, 1);
//! let mut adam = Adam::new(0.05);
//! let x = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
//! let y = Tensor::from_rows(&[&[2.0], &[4.0], &[6.0]]);
//! for _ in 0..800 {
//!     let tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let pred = layer.forward(&tape, &store, xv);
//!     let loss = rtt_nn::mse(&tape, pred, tape.constant(y.clone()));
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &grads);
//! }
//! let tape = Tape::new();
//! let out = layer.forward(&tape, &store, tape.constant(Tensor::from_rows(&[&[5.0]])));
//! assert!((tape.value(out).data()[0] - 10.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod infer;
mod layers;
pub mod ops;
mod optim;
pub mod parallel;
pub mod sanitize;
mod store;
mod tape;
mod tensor;

pub use exec::Exec;
pub use infer::{InferCtx, Val};
pub use layers::{Conv2d, Linear, Mlp};
pub use optim::{Adam, Sgd};
pub use store::{Grads, ParamId, ParamStore, WeightsError};
pub use tape::{mse, Tape, Var};
pub use tensor::Tensor;
