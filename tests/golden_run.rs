//! Golden-run regression test: a short, fully seeded train/predict cycle
//! whose outputs are compared byte-for-byte against a checked-in golden
//! file.
//!
//! The entire pipeline is deterministic by contract (fixed seeds, ordered
//! reductions, thread-count-invariant math), so any diff here means a
//! behavioral change — intended or not. To re-bless after an *intended*
//! numeric change:
//!
//! ```text
//! RTT_BLESS=1 cargo test --test golden_run
//! ```
//!
//! then commit the updated `tests/golden/golden_run.txt` and call out the
//! re-bless (with why) in the PR description.

use std::fmt::Write as _;
use std::path::PathBuf;

use restructure_timing::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/golden_run.txt")
}

/// Runs the canonical two-epoch golden workload and renders every output
/// that must stay bit-stable: final loss, per-epoch losses, and every
/// prediction (as both decimal and the exact f32 bit pattern).
fn run_golden_workload() -> String {
    let lib = CellLibrary::asap7_like();
    let design = GenParams::new("golden", 150, 7).generate(&lib);
    let pl = place(&design.netlist, &lib, 0, &PlaceConfig::default());
    let rt = route(&design.netlist, &lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&design.netlist, &lib);
    let sta = run_sta(&design.netlist, &lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets: Vec<f32> = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();

    let cfg = ModelConfig::tiny();
    let prep = PreparedDesign::prepare(&design.netlist, &lib, &pl, &graph, &cfg, targets);
    let mut model = TimingModel::new(cfg);
    let log = model
        .train(std::slice::from_ref(&prep), &TrainConfig { epochs: 2, ..TrainConfig::default() });
    let pred = model.predict(&prep);

    let mut out = String::new();
    writeln!(out, "golden run: design=golden cells=150 seed=7 epochs=2").unwrap();
    for (i, l) in log.epoch_loss.iter().enumerate() {
        writeln!(out, "epoch {i} loss {l:.9e} bits 0x{:08x}", l.to_bits()).unwrap();
    }
    writeln!(out, "endpoints {}", pred.len()).unwrap();
    for (i, p) in pred.iter().enumerate() {
        writeln!(out, "pred {i} {p:.9e} bits 0x{:08x}", p.to_bits()).unwrap();
    }
    out
}

#[test]
fn golden_run_matches_blessed_output() {
    let text = run_golden_workload();
    let path = golden_path();
    if std::env::var_os("RTT_BLESS").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nmissing or unreadable golden file; create it with \
             `RTT_BLESS=1 cargo test --test golden_run`",
            path.display()
        )
    });
    assert!(
        text == golden,
        "golden-run output drifted from {}.\n\
         If the numeric change is intended, re-bless with \
         `RTT_BLESS=1 cargo test --test golden_run` and commit the new file.\n\
         --- expected ---\n{golden}\n--- actual ---\n{text}",
        path.display()
    );
}
