use rtt_core::*;
use rtt_flow::*;
use std::time::Instant;
fn main() {
    let cfg = FlowConfig { ..FlowConfig::default() };
    let ds = Dataset::generate(&cfg);
    let lib = &ds.library;
    let mc = ModelConfig::small().with_variant(ModelVariant::GnnOnly);
    let train: Vec<PreparedDesign> =
        ds.train_designs().iter().map(|d| d.prepared(lib, &mc)).collect();
    let mut model = TimingModel::new(mc.clone());
    let t0 = Instant::now();
    let log = model.train(&train, &TrainConfig { epochs: 10, lr: 2e-3, ..Default::default() });
    println!(
        "10 epochs in {:.1}s, loss {:.4} -> {:.4}",
        t0.elapsed().as_secs_f64(),
        log.epoch_loss[0],
        log.final_loss()
    );
    let log = model.train(&train, &TrainConfig { epochs: 490, lr: 2e-3, ..Default::default() });
    println!("loss after 500: {:.4}", log.final_loss());
    for d in ds.designs.iter() {
        let prep = d.prepared(lib, &mc);
        let pred = model.predict(&prep);
        let t = d.endpoint_targets();
        let pm = pred.iter().sum::<f32>() / pred.len() as f32;
        let tm = t.iter().sum::<f32>() / t.len() as f32;
        println!(
            "{:<10} r2={:+.3} pred_mean={:.0} true_mean={:.0} n={}",
            d.name,
            r2_score(&pred, &t),
            pm,
            tm,
            t.len()
        );
    }
}
