// D001 negative: ordered maps may be iterated; hash maps may be probed.
use std::collections::{BTreeMap, HashMap};

pub fn sum_values(scores: &BTreeMap<u32, f32>) -> f32 {
    let mut total = 0.0;
    for (_, v) in scores.iter() {
        total += v;
    }
    total
}

pub fn lookup_only(index: &HashMap<u32, f32>, keys: &[u32]) -> f32 {
    // Probing a HashMap is fine — only *iteration* leaks hash order.
    keys.iter().filter_map(|k| index.get(k)).sum()
}

pub fn sorted_traversal(index: &HashMap<u32, f32>, keys: &[u32]) -> Vec<f32> {
    let mut sorted: Vec<u32> = keys.to_vec();
    sorted.sort_unstable();
    sorted.iter().filter_map(|k| index.get(k).copied()).collect()
}
