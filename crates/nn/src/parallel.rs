//! Thread-pool configuration for every parallel kernel in the workspace.
//!
//! All parallelism funnels through rayon's global pool. The pool size
//! defaults to the `RTT_THREADS` environment variable, falling back to all
//! available cores. `RTT_THREADS=1` (or [`set_num_threads`]`(1)`) runs every
//! kernel serially and reproduces single-threaded results exactly — the
//! parallel kernels are written to be bit-identical to their serial
//! counterparts regardless of thread count, so this is a debugging aid, not
//! a correctness requirement.

/// The number of threads parallel kernels fan out to.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Reconfigures the global thread count (`1` forces serial execution).
pub fn set_num_threads(n: usize) {
    let n = n.max(1);
    // The builder cannot fail in practice; panicking here would turn a
    // configuration call into a hidden abort site, so ignore the result.
    let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
}

/// `true` when a kernel processing `work` elements (or flops) should fan
/// out: the pool has more than one thread and the work amortizes spawn
/// overhead.
pub(crate) fn should_parallelize(work: usize, threshold: usize) -> bool {
    work >= threshold && num_threads() > 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_num_threads_round_trips() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        assert!(!should_parallelize(usize::MAX, 1));
        set_num_threads(2);
        assert!(should_parallelize(100, 100));
        assert!(!should_parallelize(99, 100));
    }
}
