//! Tier-1 determinism contract of the observability layer: the recorded
//! span tree, call counts, counters, gauges, and series must be
//! bit-identical for any thread count — only wall-clock durations may
//! differ (and they are excluded from [`structure_json`]).
//!
//! Kept as a single `#[test]` on purpose: the rtt-obs registry is process
//! global, and the default test harness runs `#[test]` functions of one
//! binary concurrently.
//!
//! [`structure_json`]: restructure_timing::obs::Snapshot::structure_json

use restructure_timing::nn::parallel;
use restructure_timing::obs;
use restructure_timing::prelude::*;

/// An instrumented workload touching every span family: the parallel
/// dataset fan-out (circgen/place/route/sta/opt under `flow::design_flow`
/// roots), feature extraction, and a short train/predict cycle (parallel
/// design passes, nn kernel counters, epoch-loss series).
fn run_workload() {
    let flow_cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let dataset = Dataset::generate_subset(&flow_cfg, 2, 0);

    let lib = CellLibrary::asap7_like();
    let d = GenParams::new("obs", 200, 11).generate(&lib);
    let pl = place(&d.netlist, &lib, 0, &PlaceConfig::default());
    let rt = route(&d.netlist, &lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&d.netlist, &lib);
    let sta = run_sta(&d.netlist, &lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets: Vec<f32> = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();

    let cfg = ModelConfig::tiny();
    let preps: Vec<PreparedDesign> = dataset
        .designs
        .iter()
        .map(|dd| dd.prepared(&dataset.library, &cfg))
        .chain(std::iter::once(PreparedDesign::prepare(
            &d.netlist, &lib, &pl, &graph, &cfg, targets,
        )))
        .collect();
    let mut model = TimingModel::new(cfg);
    model.train(&preps, &TrainConfig { epochs: 2, ..TrainConfig::default() });
    model.predict(&preps[0]);
}

#[test]
fn trace_structure_is_bit_identical_across_thread_counts() {
    let mut structures = Vec::new();
    for threads in [1, 4] {
        parallel::set_num_threads(threads);
        obs::reset();
        run_workload();
        structures.push(obs::snapshot().structure_json());
    }
    parallel::set_num_threads(1);
    assert!(
        structures[0] == structures[1],
        "span structure diverged between 1 and 4 threads:\n--- 1 thread ---\n{}\n--- 4 threads ---\n{}",
        structures[0],
        structures[1]
    );
    // Sanity: the workload actually recorded the pipeline spans.
    for needle in [
        "\"flow::design_flow\"",
        "\"core::train\"",
        "\"core::train::design_pass/core::forward\"",
        "\"core::train::design_pass/nn::backward\"",
        "\"core::train/nn::optimizer_step\"",
        "\"core::predict/nn::infer\"",
        "nn::infer_arena_bytes",
        "nn::matmul_flops",
        "core::train::epoch_loss",
    ] {
        assert!(structures[0].contains(needle), "missing `{needle}` in {}", structures[0]);
    }
}
