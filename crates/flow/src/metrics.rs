//! Evaluation metrics.

/// Coefficient of determination `R² = 1 - SS_res / SS_tot` — the paper's
/// evaluation metric for all regression results.
///
/// Returns 1.0 for a perfect fit; can be arbitrarily negative for a model
/// worse than predicting the mean. Returns `f32::NAN` for fewer than two
/// samples or zero target variance.
///
/// Contract: `pred` and `truth` must be the same length — every caller
/// aligns both to the same endpoint/edge enumeration, so a mismatch is a
/// caller bug. Checked in debug builds only; release builds truncate to
/// the shorter slice (the behavior of `zip`).
pub fn r2_score(pred: &[f32], truth: &[f32]) -> f32 {
    debug_assert_eq!(pred.len(), truth.len(), "r2 needs aligned slices");
    if truth.len() < 2 {
        return f32::NAN;
    }
    let mean = truth.iter().sum::<f32>() / truth.len() as f32;
    let ss_tot: f32 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot <= f32::MIN_POSITIVE {
        return f32::NAN;
    }
    let ss_res: f32 = pred.iter().zip(truth).map(|(p, t)| (p - t).powi(2)).sum();
    1.0 - ss_res / ss_tot
}

/// Mean absolute error.
///
/// Same length contract as [`r2_score`]: aligned slices, debug-checked.
pub fn mae(pred: &[f32], truth: &[f32]) -> f32 {
    debug_assert_eq!(pred.len(), truth.len(), "mae needs aligned slices");
    if pred.is_empty() {
        return f32::NAN;
    }
    pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f32>() / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_fit_is_one() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2_score(&y, &y), 1.0);
        assert_eq!(mae(&y, &y), 0.0);
    }

    #[test]
    fn mean_predictor_is_zero() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!((r2_score(&pred, &truth)).abs() < 1e-6);
    }

    #[test]
    fn bad_fit_is_negative() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 99.0];
        assert!(r2_score(&pred, &truth) < 0.0);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(r2_score(&[1.0], &[1.0]).is_nan());
        assert!(r2_score(&[1.0, 2.0], &[5.0, 5.0]).is_nan());
        assert!(mae(&[], &[]).is_nan());
    }

    // The alignment contract is debug-checked only, so the panic test is
    // compiled out of release test runs.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic_in_debug() {
        let _ = r2_score(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn r2_is_at_most_one(
            truth in proptest::collection::vec(-100.0f32..100.0, 3..30),
            noise in proptest::collection::vec(-10.0f32..10.0, 3..30),
        ) {
            let n = truth.len().min(noise.len());
            let pred: Vec<f32> = truth[..n].iter().zip(&noise[..n]).map(|(t, e)| t + e).collect();
            let r = r2_score(&pred, &truth[..n]);
            prop_assert!(r.is_nan() || r <= 1.0 + 1e-5);
        }

        #[test]
        fn mae_is_translation_invariant(
            truth in proptest::collection::vec(-50.0f32..50.0, 2..20),
            shift in -5.0f32..5.0,
        ) {
            let pred: Vec<f32> = truth.iter().map(|t| t + shift).collect();
            prop_assert!((mae(&pred, &truth) - shift.abs()).abs() < 1e-4);
        }

        #[test]
        fn perfect_fit_is_exactly_one(
            truth in proptest::collection::vec(-100.0f32..100.0, 2..30),
        ) {
            // ss_res is a sum of exact zeros, so R² is exactly 1.0 whenever
            // the metric is defined at all (enough variance).
            let r = r2_score(&truth, &truth);
            prop_assert!(r.is_nan() || r.to_bits() == 1.0f32.to_bits());
            prop_assert_eq!(mae(&truth, &truth), 0.0);
        }

        #[test]
        fn single_sample_and_constant_truth_are_nan(
            xi in -100i32..100,
            pred in proptest::collection::vec(-100.0f32..100.0, 2..20),
        ) {
            // Integer-valued constants make the mean exact, so the target
            // variance is exactly zero (arbitrary floats can leave rounding
            // residue in ss_tot).
            let x = xi as f32;
            prop_assert!(r2_score(&[x], &[x]).is_nan());
            let constant = vec![x; pred.len()];
            prop_assert!(r2_score(&pred, &constant).is_nan());
        }

        #[test]
        fn metrics_are_jointly_permutation_invariant(
            pairs in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 3..24),
            rot in 1usize..23,
        ) {
            // Rotating *both* slices by the same amount permutes the sample
            // order without changing the pairing; float sums reorder, so the
            // comparison is approximate, not bitwise.
            let pred: Vec<f32> = pairs.iter().map(|p| p.0).collect();
            let truth: Vec<f32> = pairs.iter().map(|p| p.1).collect();
            let k = rot % pairs.len();
            let mut pred_r = pred.clone();
            let mut truth_r = truth.clone();
            pred_r.rotate_left(k);
            truth_r.rotate_left(k);
            let (r0, r1) = (r2_score(&pred, &truth), r2_score(&pred_r, &truth_r));
            prop_assert!((r0.is_nan() && r1.is_nan()) || (r0 - r1).abs() < 1e-3);
            prop_assert!((mae(&pred, &truth) - mae(&pred_r, &truth_r)).abs() < 1e-3);
        }
    }
}
