//! Property tests: the lexer must never panic, whatever bytes arrive, and
//! suppression comments embedded in generated soup must still parse.

use proptest::collection::vec;
use proptest::prelude::*;
use rtt_lint::lexer::lex;
use rtt_lint::suppress::parse_inline;
use rtt_lint::Rule;

/// Fragments that stress the tricky lexer states: raw strings, nested
/// comments, lifetimes vs chars, numeric suffixes, unterminated openers.
const FRAGMENTS: &[&str] = &[
    "fn",
    "r#",
    "r#\"x\"#",
    "r###\"y\"###",
    "b'",
    "b\"z\"",
    "'a'",
    "'static",
    "'\\''",
    "\"str\"",
    "\"\\\"esc\\\"\"",
    "/*",
    "*/",
    "/* /* nested */ */",
    "//",
    "// line\n",
    "0x1f",
    "0b10",
    "0o7",
    "1e9",
    "1.5e-3",
    "2.0f32",
    "3f64",
    "0..n",
    "x.0",
    "1.max(2)",
    "==",
    "!=",
    "::",
    "->",
    "=>",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "ident",
    "HashMap",
    "unsafe",
    "unwrap",
    "\\",
    "\u{e9}",
    "\n",
    " ",
    "\t",
    "0x",
    "1e",
];

proptest! {
    #[test]
    fn lexer_never_panics_on_token_soup(picks in vec(0usize..48, 0..60)) {
        let source: String = picks.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect();
        let lexed = lex(&source);
        // Tokens must carry sane positions (1-based, within the text).
        let max_line = source.lines().count() as u32 + 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= max_line.max(1));
            prop_assert!(t.col >= 1);
        }
    }

    #[test]
    fn suppressions_survive_surrounding_soup(picks in vec(0usize..16, 0..20)) {
        // Only self-contained fragments here: an unterminated string or
        // block comment would legitimately swallow the suppression line.
        const CLOSED: &[&str] = &[
            "fn", "ident", "==", "{", "}", ";", "\n", " ", "0x1f", "1.5e-3",
            "'a'", "'static ", "\"str\"", "// line\n", "/* ok */", "1.max(2)",
        ];
        let soup: String = picks.iter().map(|&i| CLOSED[i % CLOSED.len()]).collect();
        let source =
            format!("{soup}\n// rtt-lint: allow(D001, reason = \"prop test\")\n{soup}\n");
        let lexed = lex(&source);
        let (allows, warnings) = parse_inline(&lexed.comments, "soup.rs");
        prop_assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
        prop_assert!(
            allows.iter().any(|a| a.rules == vec![Rule::D001] && a.reason == "prop test"),
            "suppression lost in: {source:?}"
        );
    }
}
