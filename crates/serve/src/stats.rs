//! Request counters and latency rings for the daemon's `/stats`
//! endpoint.
//!
//! Everything here is lock-free atomics plus one [`rtt_obs::Ring`] for
//! request latencies (bounded by construction — per-request series must
//! never grow with traffic) and one short mutex for the last reload
//! error string. Counters are written from the acceptor and every
//! worker; the snapshot is taken on the `/stats` query path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use rtt_obs::json::write_string;
use rtt_obs::Ring;

/// Shared counters for one daemon instance.
#[derive(Debug)]
pub struct Stats {
    accepted: AtomicU64,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    queue_rejections: AtomicU64,
    deadline_drops: AtomicU64,
    io_errors: AtomicU64,
    worker_panics: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
    endpoints_predicted: AtomicU64,
    latencies_ms: Ring,
    arena_bytes: Vec<AtomicU64>,
    last_reload_error: Mutex<Option<String>>,
}

impl Stats {
    /// Creates counters for a daemon with `workers` worker threads,
    /// keeping the most recent `latency_window` request latencies.
    pub fn new(workers: usize, latency_window: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            deadline_drops: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_failed: AtomicU64::new(0),
            endpoints_predicted: AtomicU64::new(0),
            latencies_ms: Ring::new(latency_window.max(1)),
            arena_bytes: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            last_reload_error: Mutex::new(None),
        }
    }

    /// One accepted TCP connection.
    pub fn record_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One fully parsed request entering the handler.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A response by status class (anything < 400 counts as success).
    pub fn record_response(&self, status: u16) {
        let slot = match status {
            0..=399 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection refused at the acceptor because the queue was full.
    pub fn record_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A request dropped because its deadline passed before (or while)
    /// a worker could answer it.
    pub fn record_deadline_drop(&self) {
        self.deadline_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// A socket read/write failure (includes injected disconnects).
    pub fn record_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker body panicked and was caught; the worker kept running.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Outcome of a hot-reload attempt; failures keep the error text for
    /// `/stats`, successes clear it.
    pub fn record_reload(&self, outcome: Result<(), String>) {
        let mut last = self.last_reload_error.lock().unwrap_or_else(PoisonError::into_inner);
        match outcome {
            Ok(()) => {
                self.reloads_ok.fetch_add(1, Ordering::Relaxed);
                *last = None;
            }
            Err(why) => {
                self.reloads_failed.fetch_add(1, Ordering::Relaxed);
                *last = Some(why);
            }
        }
    }

    /// One answered `/predict`: its wall latency and endpoint count.
    pub fn record_predict(&self, latency_ms: f64, endpoints: usize) {
        self.latencies_ms.push(latency_ms);
        self.endpoints_predicted.fetch_add(endpoints as u64, Ordering::Relaxed);
    }

    /// Publishes worker `w`'s current `InferCtx` arena footprint.
    pub fn set_arena_bytes(&self, worker: usize, bytes: u64) {
        if let Some(slot) = self.arena_bytes.get(worker) {
            slot.store(bytes, Ordering::Relaxed);
        }
    }

    /// Consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_2xx: self.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            deadline_drops: self.deadline_drops.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_failed: self.reloads_failed.load(Ordering::Relaxed),
            endpoints_predicted: self.endpoints_predicted.load(Ordering::Relaxed),
            latency_p50_ms: self.latencies_ms.quantile(0.5),
            latency_p99_ms: self.latencies_ms.quantile(0.99),
            latency_max_ms: self.latencies_ms.max(),
            arena_bytes: self.arena_bytes.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            last_reload_error: self
                .last_reload_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }
}

/// Point-in-time counter values (see [`Stats::snapshot`]).
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field names mirror the /stats JSON keys below
pub struct StatsSnapshot {
    pub accepted: u64,
    pub requests: u64,
    pub responses_2xx: u64,
    pub responses_4xx: u64,
    pub responses_5xx: u64,
    pub queue_rejections: u64,
    pub deadline_drops: u64,
    pub io_errors: u64,
    pub worker_panics: u64,
    pub reloads_ok: u64,
    pub reloads_failed: u64,
    pub endpoints_predicted: u64,
    pub latency_p50_ms: Option<f64>,
    pub latency_p99_ms: Option<f64>,
    pub latency_max_ms: Option<f64>,
    pub arena_bytes: Vec<u64>,
    pub last_reload_error: Option<String>,
}

impl StatsSnapshot {
    /// Appends this snapshot's members (no surrounding braces) to a JSON
    /// object under construction, so the server can splice in its own
    /// fields (generation, queue depth, fault counts) alongside.
    pub fn write_json_members(&self, out: &mut String) {
        let uints: [(&str, u64); 12] = [
            ("accepted", self.accepted),
            ("requests", self.requests),
            ("responses_2xx", self.responses_2xx),
            ("responses_4xx", self.responses_4xx),
            ("responses_5xx", self.responses_5xx),
            ("queue_rejections", self.queue_rejections),
            ("deadline_drops", self.deadline_drops),
            ("io_errors", self.io_errors),
            ("worker_panics", self.worker_panics),
            ("reloads_ok", self.reloads_ok),
            ("reloads_failed", self.reloads_failed),
            ("endpoints_predicted", self.endpoints_predicted),
        ];
        for (key, value) in uints {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value.to_string());
            out.push(',');
        }
        let floats = [
            ("latency_p50_ms", self.latency_p50_ms),
            ("latency_p99_ms", self.latency_p99_ms),
            ("latency_max_ms", self.latency_max_ms),
        ];
        for (key, value) in floats {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            match value {
                Some(v) => rtt_obs::json::write_f64(out, v),
                None => out.push_str("null"),
            }
            out.push(',');
        }
        out.push_str("\"arena_bytes\":[");
        for (i, b) in self.arena_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"last_reload_error\":");
        match &self.last_reload_error {
            Some(e) => write_string(out, e),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_obs::json::Value;

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = Stats::new(2, 16);
        stats.record_accept();
        stats.record_request();
        stats.record_response(200);
        stats.record_response(404);
        stats.record_response(503);
        stats.record_predict(1.5, 32);
        stats.record_predict(2.5, 32);
        stats.set_arena_bytes(1, 4096);
        stats.record_reload(Err("checksum \"mismatch\"".to_owned()));

        let mut json = String::from("{");
        stats.snapshot().write_json_members(&mut json);
        json.push('}');
        let doc = Value::parse(&json).expect("valid json");
        assert_eq!(doc.get("accepted"), Some(&Value::Num("1".into())));
        assert_eq!(doc.get("responses_2xx"), Some(&Value::Num("1".into())));
        assert_eq!(doc.get("responses_4xx"), Some(&Value::Num("1".into())));
        assert_eq!(doc.get("responses_5xx"), Some(&Value::Num("1".into())));
        assert_eq!(doc.get("endpoints_predicted"), Some(&Value::Num("64".into())));
        assert_eq!(doc.get("reloads_failed"), Some(&Value::Num("1".into())));
        assert_eq!(
            doc.get("last_reload_error"),
            Some(&Value::Str("checksum \"mismatch\"".into())),
            "error text must survive JSON escaping"
        );
        assert_eq!(
            doc.get("arena_bytes"),
            Some(&Value::Arr(vec![Value::Num("0".into()), Value::Num("4096".into())]))
        );
        assert!(doc.get("latency_p50_ms").is_some());
    }

    #[test]
    fn reload_success_clears_the_error() {
        let stats = Stats::new(1, 4);
        stats.record_reload(Err("boom".to_owned()));
        assert_eq!(stats.snapshot().last_reload_error.as_deref(), Some("boom"));
        stats.record_reload(Ok(()));
        let snap = stats.snapshot();
        assert_eq!(snap.last_reload_error, None);
        assert_eq!(snap.reloads_ok, 1);
        assert_eq!(snap.reloads_failed, 1);
    }
}
