//! Long-lived trainable parameters and gradient collection.

use std::collections::BTreeMap;
use std::fmt;

use crate::Tensor;

/// Why a serialized weight blob failed to load.
///
/// Deserialization is total: every malformed input maps to one of these
/// variants, never a panic, and the store is left untouched on error (the
/// restored tensors are committed only after the whole blob validates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightsError {
    /// The blob ended before its declared contents (`needed` more bytes
    /// than the `available` remainder).
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes left in the blob.
        available: usize,
    },
    /// The blob's tensor count differs from the registered parameters.
    TensorCount {
        /// Count declared by the blob.
        blob: usize,
        /// Count registered in the store.
        store: usize,
    },
    /// A tensor's shape differs from the registered parameter.
    ShapeMismatch {
        /// Which tensor (registration order).
        index: usize,
        /// Shape declared by the blob.
        blob: Vec<usize>,
        /// Shape registered in the store.
        store: Vec<usize>,
    },
    /// A declared dimension is implausibly large (corrupt length field);
    /// rejected before any allocation is attempted.
    DimTooLarge {
        /// Which tensor (registration order).
        index: usize,
        /// The offending dimension value.
        dim: usize,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "truncated weight blob: needed {needed} more bytes, {available} left")
            }
            Self::TensorCount { blob, store } => {
                write!(f, "blob has {blob} tensors, store has {store}")
            }
            Self::ShapeMismatch { index, blob, store } => {
                write!(f, "tensor {index} shape {blob:?} != registered {store:?}")
            }
            Self::DimTooLarge { index, dim } => {
                write!(f, "tensor {index} declares an implausible dimension {dim}")
            }
        }
    }
}

impl std::error::Error for WeightsError {}

/// Per-dimension sanity cap for [`ParamStore::load_bytes`]: no real layer
/// in this workspace comes near it, but a corrupt length field easily
/// does, and rejecting early avoids attempting a multi-gigabyte
/// allocation on garbage input.
const MAX_DIM: usize = 1 << 28;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

/// Owns all trainable tensors of a model.
///
/// Layers keep [`ParamId`] handles; each forward pass injects the current
/// values into a [`crate::Tape`] and optimizers update them from
/// [`Grads`].
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    tensors: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter; returns its handle.
    pub fn register(&mut self, init: Tensor) -> ParamId {
        self.tensors.push(init);
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different store.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Iterates over `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }

    /// Serializes all parameters into a simple length-prefixed byte blob
    /// (shape rank, dims, then little-endian f32s, per tensor).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        for t in &self.tensors {
            out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
            for &d in t.shape() {
                out.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in t.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restores parameter values from [`Self::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`WeightsError`] if the blob is truncated, declares a
    /// corrupt dimension, or its shapes do not match this store's
    /// registered parameters. On error the store is unchanged.
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), WeightsError> {
        let mut cur = 0usize;
        let mut take = |n: usize| -> Result<&[u8], WeightsError> {
            // `cur <= bytes.len()` always holds, so the subtraction is safe
            // and the comparison cannot overflow the way `cur + n` could.
            if n > bytes.len() - cur {
                return Err(WeightsError::Truncated { needed: n, available: bytes.len() - cur });
            }
            let s = &bytes[cur..cur + n];
            cur += n;
            Ok(s)
        };
        let count = le_u32(take(4)?) as usize;
        if count != self.tensors.len() {
            return Err(WeightsError::TensorCount { blob: count, store: self.tensors.len() });
        }
        let mut restored = Vec::with_capacity(count);
        for i in 0..count {
            let rank = le_u32(take(4)?) as usize;
            if rank > 8 {
                // A corrupt rank would otherwise drive the dim loop below
                // through up to 2^32 reads of garbage.
                return Err(WeightsError::DimTooLarge { index: i, dim: rank });
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                let d = le_u32(take(4)?) as usize;
                if d > MAX_DIM {
                    return Err(WeightsError::DimTooLarge { index: i, dim: d });
                }
                shape.push(d);
            }
            if shape != self.tensors[i].shape() {
                return Err(WeightsError::ShapeMismatch {
                    index: i,
                    blob: shape,
                    store: self.tensors[i].shape().to_vec(),
                });
            }
            let volume: usize = shape.iter().product();
            let raw = take(volume * 4)?;
            // chunks_exact(4) guarantees 4-byte chunks, so indexing is safe.
            let data =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            restored.push(Tensor::from_vec(&shape, data));
        }
        self.tensors = restored;
        Ok(())
    }
}

/// Decodes a little-endian u32 from a slice of at least 4 bytes (callers
/// obtain it from `take(4)`, which guarantees the length).
fn le_u32(s: &[u8]) -> u32 {
    let mut arr = [0u8; 4];
    arr.copy_from_slice(&s[..4]);
    u32::from_le_bytes(arr)
}

/// Gradients produced by [`crate::Tape::backward`].
#[derive(Debug, Default)]
pub struct Grads {
    // BTreeMap, not HashMap: `norm()` and `merge_sum()` iterate this map,
    // and float accumulation order must not depend on hasher state.
    by_param: BTreeMap<ParamId, Tensor>,
    by_var: Vec<Option<Tensor>>,
}

impl Grads {
    pub(crate) fn insert_param(&mut self, id: ParamId, g: Tensor) {
        self.by_param.insert(id, g);
    }

    pub(crate) fn set_var_grads(&mut self, grads: Vec<Option<Tensor>>) {
        self.by_var = grads;
    }

    /// Gradient of the loss with respect to parameter `id`, if it
    /// participated in the forward pass.
    pub fn of(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Gradient with respect to the tape node `var_id` (see
    /// [`crate::Var::id`]); useful for tests and saliency inspection.
    pub fn wrt(&self, var_id: usize) -> Option<&Tensor> {
        self.by_var.get(var_id).and_then(Option::as_ref)
    }

    /// Global gradient L2 norm over all parameters.
    pub fn norm(&self) -> f32 {
        self.by_param.values().map(|t| t.norm().powi(2)).sum::<f32>().sqrt()
    }

    /// Adds `other`'s parameter gradients into `self` (elementwise).
    /// Per-tape-node gradients are dropped — they are meaningless across
    /// tapes.
    ///
    /// # Panics
    ///
    /// Panics if a parameter appears in both with different shapes.
    pub fn merge_sum(&mut self, other: Grads) {
        self.by_var.clear();
        for (id, g) in other.by_param {
            match self.by_param.get_mut(&id) {
                Some(acc) => acc.add_assign(&g),
                None => {
                    self.by_param.insert(id, g);
                }
            }
        }
    }

    /// Reduces gradient sets with a fixed-shape pairwise tree:
    /// `(0+1) + (2+3) + …`, recursively. Because the tree's shape depends
    /// only on `items.len()`, the floating-point result is a pure function
    /// of the inputs and their order — independent of thread count — which
    /// keeps multi-design training deterministic.
    ///
    /// Returns empty `Grads` for an empty input.
    #[must_use]
    pub fn tree_sum(mut items: Vec<Grads>) -> Grads {
        if items.is_empty() {
            return Grads::default();
        }
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge_sum(b);
                }
                next.push(a);
            }
            items = next;
        }
        // The loop above leaves exactly one element; default is unreachable.
        items.pop().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn register_and_access() {
        let mut s = ParamStore::new();
        let a = s.register(Tensor::zeros(&[2, 3]));
        let b = s.register(Tensor::full(&[4], 1.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 10);
        assert_eq!(s.value(a).shape(), &[2, 3]);
        s.value_mut(b).data_mut()[0] = 9.0;
        assert_eq!(s.value(b).data()[0], 9.0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        s.register(Tensor::uniform(&mut rng, &[3, 5], 1.0));
        s.register(Tensor::uniform(&mut rng, &[7], 2.0));
        let bytes = s.to_bytes();
        let mut s2 = ParamStore::new();
        s2.register(Tensor::zeros(&[3, 5]));
        s2.register(Tensor::zeros(&[7]));
        s2.load_bytes(&bytes).unwrap();
        for ((_, a), (_, b)) in s.iter().zip(s2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_rejects_mismatched_shapes() {
        let mut s = ParamStore::new();
        s.register(Tensor::zeros(&[2, 2]));
        let bytes = s.to_bytes();
        let mut other = ParamStore::new();
        other.register(Tensor::zeros(&[4]));
        assert!(other.load_bytes(&bytes).is_err());
    }

    #[test]
    fn tree_sum_adds_disjoint_and_shared_params() {
        let (a, b) = (ParamId(0), ParamId(1));
        let mk = |id: ParamId, v: f32| {
            let mut g = Grads::default();
            g.insert_param(id, Tensor::full(&[2], v));
            g
        };
        let mut shared = mk(a, 1.0);
        shared.insert_param(b, Tensor::full(&[3], 10.0));
        let total = Grads::tree_sum(vec![shared, mk(a, 2.0), mk(a, 4.0)]);
        assert_eq!(total.of(a).unwrap().data(), &[7.0, 7.0]);
        assert_eq!(total.of(b).unwrap().data(), &[10.0, 10.0, 10.0]);
        assert!(Grads::tree_sum(vec![]).of(a).is_none());
    }

    #[test]
    fn load_rejects_truncation() {
        let mut s = ParamStore::new();
        s.register(Tensor::zeros(&[2, 2]));
        let bytes = s.to_bytes();
        let mut s2 = ParamStore::new();
        s2.register(Tensor::zeros(&[2, 2]));
        assert!(s2.load_bytes(&bytes[..bytes.len() - 2]).is_err());
    }
}
