//! Layout-legality tracking for optimizer transforms.

use rtt_netlist::{CellLibrary, Netlist};
use rtt_place::{Grid, Placement, Point};

/// Why a transform was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LegalityViolation {
    /// The target bin would exceed the density limit.
    Density,
    /// The target position lies inside a macro block (or off-die).
    Macro,
}

/// Incrementally-updated bin density used to gate area-adding transforms.
///
/// This is where the paper's layout dependence enters the optimizer: a
/// transform that inserts or grows gates must find whitespace, so dense
/// regions and macro shadows suppress optimization — the signal the CNN
/// branch of the model learns from the density/RUDY/macro maps.
#[derive(Clone, Debug)]
pub struct DensityTracker {
    occupancy: Grid,
    limit: f32,
}

impl DensityTracker {
    /// Builds the tracker from the current placement.
    pub fn new(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        bins: usize,
        density_limit: f32,
    ) -> Self {
        let mut occupancy = Grid::new(bins, bins, placement.floorplan().die);
        for (cid, cell) in netlist.cells() {
            let p = placement.cell_pos(cid);
            let (bx, by) = occupancy.bin_of(p.x, p.y);
            let area = library.cell_type(cell.type_id).area_um2;
            occupancy.set(bx, by, occupancy.at(bx, by) + area);
        }
        Self { occupancy, limit: density_limit }
    }

    /// Current utilization (0..) of the bin containing `p`.
    pub fn utilization_at(&self, p: Point) -> f32 {
        let (bx, by) = self.occupancy.bin_of(p.x, p.y);
        let (bw, bh) = self.occupancy.bin_size();
        self.occupancy.at(bx, by) / (bw * bh)
    }

    /// Checks whether `extra_area` µm² can be added at `p`.
    ///
    /// # Errors
    ///
    /// Returns the violation that blocks the insertion.
    pub fn check(
        &self,
        placement: &Placement,
        p: Point,
        extra_area: f32,
    ) -> Result<(), LegalityViolation> {
        self.check_scaled(placement, p, extra_area, 1.0)
    }

    /// Like [`Self::check`], with the density limit scaled by `limit_scale`.
    ///
    /// In-place growth (gate sizing) uses a scale above 1: it does not need
    /// a free site, only legalization headroom, so it tolerates denser bins
    /// than gate insertion does.
    ///
    /// # Errors
    ///
    /// Returns the violation that blocks the insertion.
    pub fn check_scaled(
        &self,
        placement: &Placement,
        p: Point,
        extra_area: f32,
        limit_scale: f32,
    ) -> Result<(), LegalityViolation> {
        self.check_floorplan(placement.floorplan(), p, extra_area, limit_scale)
    }

    /// Like [`Self::check_scaled`], against a floorplan directly (usable
    /// while the placement itself is mutably borrowed by a transform).
    ///
    /// # Errors
    ///
    /// Returns the violation that blocks the insertion.
    pub fn check_floorplan(
        &self,
        floorplan: &rtt_place::Floorplan,
        p: Point,
        extra_area: f32,
        limit_scale: f32,
    ) -> Result<(), LegalityViolation> {
        if !floorplan.is_placeable(p) {
            return Err(LegalityViolation::Macro);
        }
        let (bx, by) = self.occupancy.bin_of(p.x, p.y);
        let (bw, bh) = self.occupancy.bin_size();
        let util = (self.occupancy.at(bx, by) + extra_area) / (bw * bh);
        if util > self.limit * limit_scale {
            return Err(LegalityViolation::Density);
        }
        Ok(())
    }

    /// Records `extra_area` µm² of new cell area at `p` (call after a
    /// successful transform).
    pub fn commit(&mut self, p: Point, extra_area: f32) {
        let (bx, by) = self.occupancy.bin_of(p.x, p.y);
        self.occupancy.set(bx, by, self.occupancy.at(bx, by) + extra_area);
    }

    /// Tries `p` first, then a ring of nearby candidate positions; returns
    /// the first legal one.
    pub fn find_legal_near(
        &self,
        placement: &Placement,
        p: Point,
        extra_area: f32,
    ) -> Result<Point, LegalityViolation> {
        let mut last = LegalityViolation::Density;
        let (bw, bh) = self.occupancy.bin_size();
        let offsets =
            [(0.0, 0.0), (bw, 0.0), (-bw, 0.0), (0.0, bh), (0.0, -bh), (bw, bh), (-bw, -bh)];
        for (dx, dy) in offsets {
            let cand = placement.floorplan().die.clamp(Point::new(p.x + dx, p.y + dy));
            match self.check(placement, cand, extra_area) {
                Ok(()) => return Ok(cand),
                Err(v) => last = v,
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::GenParams;
    use rtt_netlist::CellLibrary;
    use rtt_place::{place, PlaceConfig};

    fn world(util: f32) -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("l", 300, 3).generate(&lib);
        let cfg = PlaceConfig { utilization: util, ..PlaceConfig::default() };
        let pl = place(&d.netlist, &lib, 1, &cfg);
        (lib, d.netlist, pl)
    }

    #[test]
    fn macro_positions_are_illegal() {
        let (lib, nl, pl) = world(0.5);
        let t = DensityTracker::new(&nl, &lib, &pl, 16, 0.8);
        let m = pl.floorplan().macros[0];
        assert_eq!(t.check(&pl, m.center(), 0.1), Err(LegalityViolation::Macro));
    }

    #[test]
    fn off_die_is_illegal() {
        let (lib, nl, pl) = world(0.5);
        let t = DensityTracker::new(&nl, &lib, &pl, 16, 0.8);
        let off = Point::new(pl.floorplan().die.x1 + 100.0, 0.0);
        assert_eq!(t.check(&pl, off, 0.1), Err(LegalityViolation::Macro));
    }

    #[test]
    fn commits_accumulate_until_blocked() {
        let (lib, nl, pl) = world(0.5);
        // Limit above the initial occupancy so the first checks pass.
        let mut t = DensityTracker::new(&nl, &lib, &pl, 8, 2.0);
        // Find a legal open spot and fill it up.
        let p = pl.floorplan().die.center();
        let mut added = 0.0;
        while t.check(&pl, p, 5.0).is_ok() && added < 1e6 {
            t.commit(p, 5.0);
            added += 5.0;
        }
        assert!(added > 0.0);
        assert_eq!(t.check(&pl, p, 5.0), Err(LegalityViolation::Density));
    }

    #[test]
    fn find_legal_near_escapes_a_full_bin() {
        let (lib, nl, pl) = world(0.5);
        let mut t = DensityTracker::new(&nl, &lib, &pl, 8, 2.0);
        let p = pl.floorplan().die.center();
        while t.check(&pl, p, 5.0).is_ok() {
            t.commit(p, 5.0);
        }
        // The exact bin is full, but a neighbor should accept the area.
        let found = t.find_legal_near(&pl, p, 5.0);
        assert!(found.is_ok());
        assert_ne!(found.unwrap(), p);
    }

    #[test]
    fn utilization_is_positive_where_cells_sit() {
        let (lib, nl, pl) = world(0.6);
        let t = DensityTracker::new(&nl, &lib, &pl, 8, 0.8);
        let (cid, _) = nl.cells().next().unwrap();
        assert!(t.utilization_at(pl.cell_pos(cid)) > 0.0);
    }
}
