//! Routing estimator: rectilinear spanning trees, congestion, RC trees.
//!
//! The paper's ground-truth labels come from Cadence Innovus routing plus
//! sign-off STA. This crate is the simulated equivalent: it builds a
//! rectilinear (Prim) spanning tree per net, applies a congestion-dependent
//! detour factor derived from a RUDY map, and produces per-net RC trees with
//! Elmore sink delays. Sign-off wire delays therefore differ from the
//! pre-routing Manhattan estimate in a *layout-dependent* way — exactly the
//! gap the paper's model must learn.
//!
//! # Example
//!
//! ```
//! use rtt_netlist::CellLibrary;
//! use rtt_circgen::ripple_carry_adder;
//! use rtt_place::{place, PlaceConfig};
//! use rtt_route::{route, RouteConfig};
//!
//! let lib = CellLibrary::asap7_like();
//! let nl = ripple_carry_adder(4, &lib);
//! let pl = place(&nl, &lib, 0, &PlaceConfig::default());
//! let routing = route(&nl, &lib, &pl, &RouteConfig::default());
//! assert!(routing.total_wirelength() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rc;
mod router;
mod steiner;

pub use rc::{elmore_delays, RcTree};
pub use router::{route, rudy_map, RouteConfig, RoutedNet, Routing};
pub use steiner::{rectilinear_mst, tree_length};
