//! `rtt-lint` — workspace-specific determinism and robustness lints.
//!
//! A from-scratch static-analysis pass over this workspace's Rust sources:
//! a hand-rolled lexer (no `syn`; the build environment is offline) feeds
//! token-stream matchers for seven rules:
//!
//! | id   | checks |
//! |------|--------|
//! | D001 | HashMap/HashSet iteration in determinism-critical crates |
//! | D002 | ambient entropy (`thread_rng`, `SystemTime::now`, `Instant::now`) |
//! | D003 | exact float `==` / `!=` comparison |
//! | D004 | `par_iter()` reduced with `.sum()`/`.reduce()` (scheduling-order) |
//! | R001 | `unwrap()`/`expect()` in library code |
//! | R002 | `panic!`/`todo!`/`unimplemented!` in library code |
//! | U001 | `unsafe` without a `// SAFETY:` comment |
//!
//! Findings are suppressed either inline
//! (`// rtt-lint: allow(D001, reason = "...")`) or through the checked-in
//! `lint-allow.toml` baseline; both channels require a reason.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use diag::{Finding, Rule};
pub use rules::{FileContext, FileKind};
pub use suppress::Baseline;

use std::path::Path;

/// Output of one lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Non-fatal problems: malformed suppressions, unreadable files.
    pub warnings: Vec<String>,
    /// Number of findings silenced by inline suppressions.
    pub suppressed_inline: usize,
    /// Number of findings silenced by the baseline.
    pub suppressed_baseline: usize,
    /// Number of files checked.
    pub files_checked: usize,
}

/// Lints a single source string under an explicit context. This is the
/// entry point used by fixture tests; `lint_workspace` funnels through it.
/// The baseline is **not** consulted here — only inline suppressions.
pub fn lint_source(source: &str, ctx: &FileContext) -> LintReport {
    let lexed = lexer::lex(source);
    let raw = rules::check_file(&lexed, ctx, source);
    let (allows, warnings) = suppress::parse_inline(&lexed.comments, &ctx.path);
    let mut report = LintReport { warnings, files_checked: 1, ..LintReport::default() };
    for f in raw {
        if allows.iter().any(|a| a.covers(f.rule, f.line)) {
            report.suppressed_inline += 1;
        } else {
            report.findings.push(f);
        }
    }
    sort_findings(&mut report.findings);
    report
}

/// Lints every workspace source file under `root`, applying inline
/// suppressions and the `lint-allow.toml` baseline (when present).
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let baseline = match std::fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("lint-allow.toml: {e}")),
    };
    let files = walk::workspace_rs_files(root)?;
    let mut report = LintReport::default();
    for path in files {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().replace('\\', "/"),
        };
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                report.warnings.push(format!("{rel}: unreadable: {e}"));
                continue;
            }
        };
        let ctx = walk::classify(&rel);
        let file_report = lint_source(&source, &ctx);
        report.files_checked += 1;
        report.suppressed_inline += file_report.suppressed_inline;
        report.warnings.extend(file_report.warnings);
        for f in file_report.findings {
            if baseline.covers(f.rule, &f.file) {
                report.suppressed_baseline += 1;
            } else {
                report.findings.push(f);
            }
        }
    }
    sort_findings(&mut report.findings);
    Ok(report)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(crate_name: &str) -> FileContext {
        FileContext {
            path: format!("crates/{crate_name}/src/lib.rs"),
            crate_name: crate_name.to_owned(),
            determinism_critical: walk::DETERMINISM_CRITICAL.contains(&crate_name),
            kind: FileKind::Lib,
        }
    }

    #[test]
    fn inline_suppression_silences_and_counts() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
                   // rtt-lint: allow(D001, reason = \"sum is order-independent over ints\")\n\
                   m.values().sum()\n}\n";
        let report = lint_source(src, &lib_ctx("sta"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed_inline, 1);
    }

    #[test]
    fn findings_sorted_by_position() {
        let src =
            "fn f() {\n    let x = 1.0f32;\n    let b = x == 0.0;\n    let c = x != 1.0;\n}\n";
        let report = lint_source(src, &lib_ctx("sta"));
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].line < report.findings[1].line);
    }
}
