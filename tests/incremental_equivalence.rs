//! Differential transform-fuzz harness for dirty-cone incremental
//! prediction *and* delta-aware preparation.
//!
//! The property: after *any* sequence of optimizer transforms, (a)
//! `PreparedDesign::update` — reusing the previous design's schedule,
//! node features, layout maps, and endpoint masks outside the
//! transform's dirty cone — is bit-identical, field by field, to a cold
//! `prepare` of the transformed design, and (b)
//! `TimingModel::predict_incremental` — fed that delta-updated
//! preparation and reusing activations cached for the previous design
//! state, recomputing only the dirtied fan-out cones seeded by
//! `rtt_opt::dirty_seed_pins` — produces bit-identical predictions to a
//! cold `predict_batch` over the same design, at 1 and at 4 threads,
//! and the same bits across the two thread counts.
//!
//! The offline `proptest` shim has no shrinking, so shrinking is
//! replay-based and manual: every applied transform is recorded as a
//! concrete [`Op`] (resolved ids + operands), and on failure the driver
//! first truncates to the failing prefix, then greedily deletes ops one
//! at a time, replaying the whole sequence from the base design after
//! each deletion and keeping the deletion whenever the failure survives.
//! Ops whose prerequisites were deleted simply become inapplicable on
//! replay and are skipped.
//!
//! Thread settings are process-global, so everything (including the
//! zero-dirty cache-reuse fixture, which reads global `rtt_obs`
//! counters) runs inside a single `#[test]`.

use proptest::TestRunner;
use restructure_timing::model::{
    IncrementalCtx, PrepareCtx, PREP_FEAT_ROWS_RECOMPUTED_COUNTER,
    PREP_MAP_BINS_RECOMPUTED_COUNTER, PREP_MASKS_RECOMPUTED_COUNTER, PREP_MASKS_TOTAL_COUNTER,
    ROWS_RECOMPUTED_COUNTER, ROWS_TOTAL_COUNTER,
};
use restructure_timing::netlist::{CellId, NetId, PinId, DRIVE_STRENGTHS};
use restructure_timing::nn::{parallel, InferCtx};
use restructure_timing::opt::{self, dirty_seed_pins};
use restructure_timing::place::{place as place_design, PlaceConfig, Point};
use restructure_timing::prelude::*;

/// One concrete, replayable transform. Ids are resolved at generation
/// time against the then-current netlist; on replay an op that no longer
/// applies (its prerequisites were shrunk away) is skipped.
#[derive(Clone, Debug)]
enum Op {
    InsertBuffer { net: NetId, sink: PinId, pos: Point },
    DecomposeGate { cell: CellId },
    BypassRepeater { cell: CellId },
    BypassInverterPair { first: CellId, second: CellId },
    SplitHighFanout { net: NetId, max_fanout: usize },
    PruneDangling,
    ResizeCell { cell: CellId, drive: u8 },
}

/// Applies `op` if it is still applicable; `false` means "skipped".
fn apply(op: &Op, nl: &mut Netlist, pl: &mut Placement, lib: &CellLibrary) -> bool {
    let cell_ok = |nl: &Netlist, c: CellId| c.index() < nl.cell_capacity();
    let net_ok = |nl: &Netlist, n: NetId| n.index() < nl.net_capacity();
    match *op {
        Op::InsertBuffer { net, sink, pos } => {
            net_ok(nl, net)
                && sink.index() < nl.pin_capacity()
                && opt::insert_buffer(nl, pl, lib, net, sink, pos).is_ok()
        }
        Op::DecomposeGate { cell } => {
            if !cell_ok(nl, cell) || !nl.cell(cell).is_alive() {
                return false;
            }
            let inputs = nl.cell(cell).inputs.clone();
            opt::decompose_gate(nl, pl, lib, cell, &inputs).is_ok()
        }
        Op::BypassRepeater { cell } => {
            cell_ok(nl, cell) && opt::bypass_repeater(nl, lib, cell).is_ok()
        }
        Op::BypassInverterPair { first, second } => {
            cell_ok(nl, first)
                && cell_ok(nl, second)
                && opt::bypass_inverter_pair(nl, lib, first, second).is_ok()
        }
        Op::SplitHighFanout { net, max_fanout } => {
            net_ok(nl, net)
                && opt::split_high_fanout(nl, pl, lib, net, max_fanout, |_, _| true)
                    .map(|buffers| !buffers.is_empty())
                    .unwrap_or(false)
        }
        Op::PruneDangling => opt::prune_dangling(nl, lib) > 0,
        Op::ResizeCell { cell, drive } => {
            if !cell_ok(nl, cell) || !nl.cell(cell).is_alive() {
                return false;
            }
            let gate = lib.cell_type(nl.cell(cell).type_id).gate;
            match lib.pick(gate, drive) {
                Some(ty) if ty != nl.cell(cell).type_id => nl.resize_cell(cell, ty, lib).is_ok(),
                _ => false,
            }
        }
    }
}

/// Samples one candidate op against the current netlist state. Returns
/// `None` when the drawn op kind has no candidate sites.
fn sample_op(r: &mut TestRunner, nl: &Netlist, pl: &Placement, lib: &CellLibrary) -> Option<Op> {
    fn choose<T: Copy>(r: &mut TestRunner, items: &[T]) -> Option<T> {
        (!items.is_empty()).then(|| items[r.below(items.len() as u64) as usize])
    }
    match r.below(7) {
        0 => {
            let nets: Vec<NetId> =
                nl.nets().filter(|(_, n)| !n.sinks.is_empty()).map(|(id, _)| id).collect();
            let net = choose(r, &nets)?;
            let sink = choose(r, &nl.net(net).sinks)?;
            let a = pl.pin_position(nl, nl.net(net).driver);
            let b = pl.pin_position(nl, sink);
            let pos = Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
            Some(Op::InsertBuffer { net, sink, pos })
        }
        1 => {
            let cells: Vec<CellId> = nl
                .cells()
                .filter(|(_, c)| {
                    matches!(
                        lib.cell_type(c.type_id).gate,
                        GateFn::And3 | GateFn::And4 | GateFn::Or3 | GateFn::Or4
                    )
                })
                .map(|(id, _)| id)
                .collect();
            Some(Op::DecomposeGate { cell: choose(r, &cells)? })
        }
        2 => {
            let cells: Vec<CellId> = nl
                .cells()
                .filter(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Buf)
                .map(|(id, _)| id)
                .collect();
            Some(Op::BypassRepeater { cell: choose(r, &cells)? })
        }
        3 => {
            // first -> second back-to-back inverter pairs where first's
            // whole fanout is second's input.
            let pairs: Vec<(CellId, CellId)> = nl
                .cells()
                .filter(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Inv)
                .filter_map(|(first, c)| {
                    let out_net = nl.pin(c.output).net?;
                    let &[sink] = nl.net(out_net).sinks.as_slice() else { return None };
                    let second = nl.pin(sink).cell?;
                    let sc = nl.cell(second);
                    (lib.cell_type(sc.type_id).gate == GateFn::Inv && sc.inputs[0] == sink)
                        .then_some((first, second))
                })
                .collect();
            let (first, second) = choose(r, &pairs)?;
            Some(Op::BypassInverterPair { first, second })
        }
        4 => {
            let nets: Vec<NetId> =
                nl.nets().filter(|(_, n)| n.sinks.len() > 3).map(|(id, _)| id).collect();
            let net = choose(r, &nets)?;
            let max_fanout = 2 + r.below(3) as usize;
            Some(Op::SplitHighFanout { net, max_fanout })
        }
        5 => Some(Op::PruneDangling),
        _ => {
            let cells: Vec<CellId> = nl
                .cells()
                .filter(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
                .map(|(id, _)| id)
                .collect();
            let cell = choose(r, &cells)?;
            let drive = choose(r, &DRIVE_STRENGTHS)?;
            Some(Op::ResizeCell { cell, drive })
        }
    }
}

/// Samples a sequence of `target_len` ops, each applicable (and applied)
/// at the moment it was drawn.
fn generate_sequence(
    r: &mut TestRunner,
    base_nl: &Netlist,
    base_pl: &Placement,
    lib: &CellLibrary,
    target_len: usize,
) -> Vec<Op> {
    let mut nl = base_nl.clone();
    let mut pl = base_pl.clone();
    let mut ops = Vec::new();
    for _ in 0..target_len * 12 {
        if ops.len() == target_len {
            break;
        }
        if let Some(op) = sample_op(r, &nl, &pl, lib) {
            if apply(&op, &mut nl, &mut pl, lib) {
                ops.push(op);
            }
        }
    }
    ops
}

fn prepare_design(
    nl: &Netlist,
    pl: &Placement,
    lib: &CellLibrary,
    cfg: &ModelConfig,
) -> PreparedDesign {
    let graph = TimingGraph::try_build(nl, lib).expect("transformed netlist must stay a DAG");
    let targets = vec![0.0f32; graph.endpoints().len()];
    PreparedDesign::prepare(nl, lib, pl, &graph, cfg, targets)
}

/// Replays `ops` from the base design, checking after every applied op
/// that (a) the delta-updated `PreparedDesign` is bit-identical,
/// field-by-field, to a cold `prepare` of the transformed design, and
/// (b) the incremental prediction — fed the delta-updated preparation —
/// bit-matches a cold full forward. Returns the per-step predictions, or
/// `(failing op index, message)`.
fn run_sequence(
    model: &TimingModel,
    ctx: &InferCtx,
    lib: &CellLibrary,
    base_nl: &Netlist,
    base_pl: &Placement,
    ops: &[Op],
) -> Result<Vec<Vec<f32>>, (usize, String)> {
    let cfg = model.config();
    let mut nl = base_nl.clone();
    let mut pl = base_pl.clone();
    let mut inc = IncrementalCtx::new();
    // Prime the cache with a full pass over the base design, keeping the
    // prepare context so every later step goes through the delta path.
    let graph = TimingGraph::try_build(&nl, lib).expect("base netlist must be a DAG");
    let targets = vec![0.0f32; graph.endpoints().len()];
    let (mut prep, mut pctx) = PreparedDesign::prepare_full(&nl, lib, &pl, &graph, cfg, targets);
    let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
    let _ = model.predict_incremental(ctx, &mut inc, &prep, &[], &all);

    let mut steps = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let before_nl = nl.clone();
        let before_pl = pl.clone();
        if !apply(op, &mut nl, &mut pl, lib) {
            continue;
        }
        let seeds = dirty_seed_pins(&before_nl, &nl);
        let graph = TimingGraph::try_build(&nl, lib).expect("transformed netlist must stay a DAG");
        let targets = vec![0.0f32; graph.endpoints().len()];
        let cold = PreparedDesign::prepare(&nl, lib, &pl, &graph, cfg, targets.clone());
        let delta = prep.update(
            &mut pctx,
            (&before_nl, &before_pl),
            (&nl, &pl),
            lib,
            &graph,
            cfg,
            &seeds,
            targets,
        );
        if let Err(field) = delta.bit_eq(&cold) {
            return Err((
                i,
                format!(
                    "step {i} ({op:?}): delta-updated preparation diverged from cold \
                     prepare at field `{field}`"
                ),
            ));
        }
        prep = delta;
        let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
        let inc_pred = model.predict_incremental(ctx, &mut inc, &prep, &seeds, &all);
        let full = model.predict_batch(ctx, &prep, &all);
        for (j, (a, b)) in inc_pred.iter().zip(&full).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err((
                    i,
                    format!(
                        "step {i} ({op:?}): endpoint {j} diverged: incremental {a:?} \
                         (0x{:08x}) vs full {b:?} (0x{:08x})",
                        a.to_bits(),
                        b.to_bits()
                    ),
                ));
            }
        }
        steps.push(inc_pred);
    }
    Ok(steps)
}

/// Applies one engineered transform and asserts both halves of the delta
/// contract: the delta-updated `PreparedDesign` is bit-identical to a
/// cold prepare, and the incremental prediction on top of it bit-matches
/// a full forward. Returns `false` when the op was inapplicable (its
/// site never materialized on this design), leaving all state untouched.
#[allow(clippy::too_many_arguments)]
fn check_delta_step(
    label: &str,
    op: &Op,
    model: &TimingModel,
    ctx: &InferCtx,
    lib: &CellLibrary,
    nl: &mut Netlist,
    pl: &mut Placement,
    prep: &mut PreparedDesign,
    pctx: &mut PrepareCtx,
    inc: &mut IncrementalCtx,
) -> bool {
    let cfg = model.config();
    let before_nl = nl.clone();
    let before_pl = pl.clone();
    if !apply(op, nl, pl, lib) {
        return false;
    }
    let seeds = dirty_seed_pins(&before_nl, nl);
    let graph = TimingGraph::try_build(nl, lib).expect("transformed netlist must stay a DAG");
    let targets = vec![0.0f32; graph.endpoints().len()];
    let cold = PreparedDesign::prepare(nl, lib, pl, &graph, cfg, targets.clone());
    let delta = prep.update(
        pctx,
        (&before_nl, &before_pl),
        (&*nl, &*pl),
        lib,
        &graph,
        cfg,
        &seeds,
        targets,
    );
    if let Err(field) = delta.bit_eq(&cold) {
        panic!("{label}: delta-updated preparation diverged from cold prepare at field `{field}`");
    }
    *prep = delta;
    let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
    let inc_pred = model.predict_incremental(ctx, inc, prep, &seeds, &all);
    assert_bits_eq(label, &inc_pred, &model.predict_batch(ctx, prep, &all));
    true
}

/// Greedy replay-based shrinking: delete ops one at a time, keeping each
/// deletion whose replay still fails, until no single deletion preserves
/// the failure.
fn shrink(
    model: &TimingModel,
    ctx: &InferCtx,
    lib: &CellLibrary,
    base_nl: &Netlist,
    base_pl: &Placement,
    ops: &[Op],
) -> (Vec<Op>, String) {
    let mut kept: Vec<Op> = ops.to_vec();
    let mut err = match run_sequence(model, ctx, lib, base_nl, base_pl, &kept) {
        Err((_, e)) => e,
        Ok(_) => return (kept, "failure did not reproduce during shrinking".to_owned()),
    };
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            match run_sequence(model, ctx, lib, base_nl, base_pl, &candidate) {
                Err((_, e)) => {
                    kept = candidate;
                    err = e;
                    removed_any = true;
                }
                Ok(_) => i += 1,
            }
        }
        if !removed_any {
            return (kept, err);
        }
    }
}

fn assert_bits_eq(what: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{what}: prediction counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: prediction {i} differs: {x:?} vs {y:?}");
    }
}

fn obs_counter(key: &str) -> u64 {
    restructure_timing::obs::snapshot().counters.get(key).copied().unwrap_or(0)
}

#[test]
fn incremental_predict_is_bit_identical_across_random_transform_sequences() {
    let lib = CellLibrary::asap7_like();
    let model = TimingModel::new(ModelConfig::tiny());
    let mut runner = TestRunner::new("incremental_equivalence::transform_fuzz");

    let designs: Vec<(&str, Netlist, Placement)> = ["xgate", "steelcore"]
        .into_iter()
        .map(|name| {
            let d = preset(name, Scale::Tiny).expect("known preset").generate(&lib);
            let pl = place_design(&d.netlist, &lib, d.num_macros, &PlaceConfig::default());
            (name, d.netlist, pl)
        })
        .collect();

    const SEQUENCES_PER_DESIGN: usize = 3;
    const OPS_PER_SEQUENCE: usize = 8;
    for (name, nl, pl) in &designs {
        for seq in 0..SEQUENCES_PER_DESIGN {
            let ops = generate_sequence(&mut runner, nl, pl, &lib, OPS_PER_SEQUENCE);
            assert!(!ops.is_empty(), "{name} seq {seq}: no applicable transforms sampled");
            let mut per_thread: Vec<Vec<Vec<f32>>> = Vec::new();
            for threads in [1usize, 4] {
                parallel::set_num_threads(threads);
                let ctx = InferCtx::new();
                match run_sequence(&model, &ctx, &lib, nl, pl, &ops) {
                    Ok(steps) => per_thread.push(steps),
                    Err((idx, why)) => {
                        // Shrink before reporting: truncate to the failing
                        // prefix, then greedily delete surviving ops.
                        let (minimal, min_err) = shrink(&model, &ctx, &lib, nl, pl, &ops[..=idx]);
                        parallel::set_num_threads(1);
                        panic!(
                            "{name} seq {seq} @ {threads} threads: {why}\n\
                             shrunk to {} op(s): {minimal:#?}\n\
                             shrunk failure: {min_err}",
                            minimal.len()
                        );
                    }
                }
            }
            parallel::set_num_threads(1);
            for (step, (a, b)) in per_thread[0].iter().zip(&per_thread[1]).enumerate() {
                assert_bits_eq(&format!("{name} seq {seq} step {step} across thread counts"), a, b);
            }
        }
    }

    // --- Deterministic per-transform coverage ------------------------------
    // The fuzz loop draws op kinds at random, so any single run may skip a
    // kind. This chain pins one engineered instance of each transform so
    // every kind's delta-prepare equivalence is exercised on every run.
    // Sites are discovered against the live netlist; kinds whose site
    // exists by construction are asserted applied, the rest are counted.
    for threads in [1usize, 4] {
        parallel::set_num_threads(threads);
        let ctx = InferCtx::new();
        let (name, base_nl, base_pl) = &designs[1];
        let mut nl = base_nl.clone();
        let mut pl = base_pl.clone();
        let graph = TimingGraph::try_build(&nl, &lib).expect("base netlist must be a DAG");
        let targets = vec![0.0f32; graph.endpoints().len()];
        let (mut prep, mut pctx) =
            PreparedDesign::prepare_full(&nl, &lib, &pl, &graph, model.config(), targets);
        let mut inc = IncrementalCtx::new();
        let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
        let _ = model.predict_incremental(&ctx, &mut inc, &prep, &[], &all);
        let mut step = |label: &str, op: &Op, nl: &mut Netlist, pl: &mut Placement| {
            check_delta_step(
                &format!("{name} @ {threads} threads: {label}"),
                op,
                &model,
                &ctx,
                &lib,
                nl,
                pl,
                &mut prep,
                &mut pctx,
                &mut inc,
            )
        };

        // A net with a sink always exists; buffer its first sink.
        let (net, sink) = nl
            .nets()
            .find(|(_, n)| !n.sinks.is_empty())
            .map(|(id, n)| (id, n.sinks[0]))
            .expect("design has at least one loaded net");
        let a = pl.pin_position(&nl, nl.net(net).driver);
        let b = pl.pin_position(&nl, sink);
        let pos = Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
        assert!(
            step("insert_buffer", &Op::InsertBuffer { net, sink, pos }, &mut nl, &mut pl),
            "engineered insert_buffer must apply"
        );

        // ... then bypass the buffer we just inserted.
        let buf = nl
            .cells()
            .filter(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Buf)
            .map(|(id, _)| id)
            .last()
            .expect("buffer inserted above is alive");
        assert!(
            step("bypass_repeater", &Op::BypassRepeater { cell: buf }, &mut nl, &mut pl),
            "engineered bypass_repeater must apply"
        );

        // A comb cell with a different drive variant in the library.
        let resize = nl.cells().find_map(|(id, c)| {
            let ty = lib.cell_type(c.type_id);
            (!ty.is_sequential())
                .then(|| {
                    DRIVE_STRENGTHS.iter().find_map(|&drive| {
                        matches!(lib.pick(ty.gate, drive), Some(t) if t != c.type_id)
                            .then_some(Op::ResizeCell { cell: id, drive })
                    })
                })
                .flatten()
        });
        let op = resize.expect("library has more than one drive per gate");
        assert!(step("resize_cell", &op, &mut nl, &mut pl), "engineered resize_cell must apply");

        // The remaining kinds depend on sites the generator may not have
        // produced at this scale; apply each wherever a site exists.
        let mut applied = vec!["insert_buffer", "bypass_repeater", "resize_cell"];
        let wide_gate = nl
            .cells()
            .find(|(_, c)| {
                matches!(
                    lib.cell_type(c.type_id).gate,
                    GateFn::And3 | GateFn::And4 | GateFn::Or3 | GateFn::Or4
                )
            })
            .map(|(id, _)| id);
        if let Some(cell) = wide_gate {
            if step("decompose_gate", &Op::DecomposeGate { cell }, &mut nl, &mut pl) {
                applied.push("decompose_gate");
            }
        }
        let fat_net = nl.nets().find(|(_, n)| n.sinks.len() > 3).map(|(id, _)| id);
        if let Some(net) = fat_net {
            if step(
                "split_high_fanout",
                &Op::SplitHighFanout { net, max_fanout: 2 },
                &mut nl,
                &mut pl,
            ) {
                applied.push("split_high_fanout");
            }
        }
        let pair = nl
            .cells()
            .filter(|(_, c)| lib.cell_type(c.type_id).gate == GateFn::Inv)
            .find_map(|(first, c)| {
                let out_net = nl.pin(c.output).net?;
                let &[sink] = nl.net(out_net).sinks.as_slice() else { return None };
                let second = nl.pin(sink).cell?;
                let sc = nl.cell(second);
                (lib.cell_type(sc.type_id).gate == GateFn::Inv && sc.inputs[0] == sink)
                    .then_some((first, second))
            });
        if let Some((first, second)) = pair {
            if step(
                "bypass_inverter_pair",
                &Op::BypassInverterPair { first, second },
                &mut nl,
                &mut pl,
            ) {
                applied.push("bypass_inverter_pair");
            }
        }
        if step("prune_dangling", &Op::PruneDangling, &mut nl, &mut pl) {
            applied.push("prune_dangling");
        }

        // bypass_inverter_pair (and, at this scale, prune_dangling) may
        // have no natural site; engineer both on a doctored copy — a
        // hand-built back-to-back inverter pair spliced in front of a
        // sink, plus a gate whose output drives nothing — and run a
        // fresh delta chain over it.
        let mut dnl = nl.clone();
        let mut dpl = pl.clone();
        let (net, sink) = dnl
            .nets()
            .find(|(_, n)| !n.sinks.is_empty())
            .map(|(id, n)| (id, n.sinks[0]))
            .expect("design has at least one loaded net");
        dnl.disconnect_sink(net, sink).expect("sink is on net");
        let inv_ty = lib.pick(GateFn::Inv, 1).expect("library has an inverter");
        let (inv1, inv1_out) = dnl.add_cell("det_inv1", inv_ty, &lib);
        let (inv2, inv2_out) = dnl.add_cell("det_inv2", inv_ty, &lib);
        let inv1_in = dnl.cell(inv1).inputs[0];
        let inv2_in = dnl.cell(inv2).inputs[0];
        dnl.add_sink(net, inv1_in).expect("net is alive");
        dnl.connect_net("det_inv_mid", inv1_out, &[inv2_in]).expect("fresh net");
        dnl.connect_net("det_inv_out", inv2_out, &[sink]).expect("fresh net");
        let (dangling, _) = dnl.add_cell("det_dangling", inv_ty, &lib);
        let dangling_in = dnl.cell(dangling).inputs[0];
        dnl.add_sink(net, dangling_in).expect("net is alive");
        let center = dpl.floorplan().die.center();
        for cell in [inv1, inv2, dangling] {
            dpl.place_cell(cell, center);
        }

        let graph = TimingGraph::try_build(&dnl, &lib).expect("doctored netlist stays a DAG");
        let targets = vec![0.0f32; graph.endpoints().len()];
        let (mut prep, mut pctx) =
            PreparedDesign::prepare_full(&dnl, &lib, &dpl, &graph, model.config(), targets);
        let mut inc = IncrementalCtx::new();
        let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
        let _ = model.predict_incremental(&ctx, &mut inc, &prep, &[], &all);
        let mut step2 = |label: &str, op: &Op, nl: &mut Netlist, pl: &mut Placement| {
            check_delta_step(
                &format!("{name} (doctored) @ {threads} threads: {label}"),
                op,
                &model,
                &ctx,
                &lib,
                nl,
                pl,
                &mut prep,
                &mut pctx,
                &mut inc,
            )
        };
        assert!(
            step2(
                "bypass_inverter_pair",
                &Op::BypassInverterPair { first: inv1, second: inv2 },
                &mut dnl,
                &mut dpl,
            ),
            "engineered bypass_inverter_pair must apply"
        );
        applied.push("bypass_inverter_pair");
        assert!(
            step2("prune_dangling", &Op::PruneDangling, &mut dnl, &mut dpl),
            "engineered prune_dangling must apply"
        );
        if !applied.contains(&"prune_dangling") {
            applied.push("prune_dangling");
        }

        let mut kinds = applied.clone();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(
            kinds.len() >= 6,
            "deterministic chains must exercise at least six transform kinds, got {applied:?}"
        );
        eprintln!("deterministic delta-prepare chain @ {threads} threads: {applied:?}");
    }
    parallel::set_num_threads(1);

    // --- Zero-dirty fixture ------------------------------------------------
    // A transform run that touches no timing-relevant pins (prune with
    // nothing to prune) must produce an empty dirty set and reuse the
    // activation cache in full: the `core::incremental_rows_recomputed`
    // counter does not move while `core::incremental_rows_total` does.
    let (_, nl, pl) = &designs[0];
    let ctx = InferCtx::new();
    let mut inc = IncrementalCtx::new();
    let cfg = model.config();
    let mut nl2 = nl.clone();
    // Clear any dangling logic first so the prune below is a true no-op.
    let _ = opt::prune_dangling(&mut nl2, &lib);
    let graph = TimingGraph::try_build(&nl2, &lib).expect("pruned base must stay a DAG");
    let targets = vec![0.0f32; graph.endpoints().len()];
    let (prep, mut pctx) =
        PreparedDesign::prepare_full(&nl2, &lib, pl, &graph, cfg, targets.clone());
    let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();

    let (r0, t0) = (obs_counter(ROWS_RECOMPUTED_COUNTER), obs_counter(ROWS_TOTAL_COUNTER));
    let _ = model.predict_incremental(&ctx, &mut inc, &prep, &[], &all);
    let (r1, t1) = (obs_counter(ROWS_RECOMPUTED_COUNTER), obs_counter(ROWS_TOTAL_COUNTER));
    assert_eq!(r1 - r0, t1 - t0, "cold prime must recompute every row");
    assert!(t1 - t0 > 0, "cold prime must count total rows");

    let before = nl2.clone();
    let removed = opt::prune_dangling(&mut nl2, &lib);
    assert_eq!(removed, 0, "second prune must be a no-op");
    let seeds = dirty_seed_pins(&before, &nl2);
    assert!(seeds.is_empty(), "no-op transform must seed no dirty pins, got {seeds:?}");

    // Delta-prepare the no-op: every endpoint mask, feature row, and map
    // bin must be reused (the `core::prepare_*_recomputed` counters do
    // not move) while the totals confirm the update actually ran.
    let graph2 = TimingGraph::try_build(&nl2, &lib).expect("no-op keeps the DAG");
    let (pm0, pf0, pb0, pt0) = (
        obs_counter(PREP_MASKS_RECOMPUTED_COUNTER),
        obs_counter(PREP_FEAT_ROWS_RECOMPUTED_COUNTER),
        obs_counter(PREP_MAP_BINS_RECOMPUTED_COUNTER),
        obs_counter(PREP_MASKS_TOTAL_COUNTER),
    );
    let prep2 =
        prep.update(&mut pctx, (&before, pl), (&nl2, pl), &lib, &graph2, cfg, &seeds, targets);
    let (pm1, pf1, pb1, pt1) = (
        obs_counter(PREP_MASKS_RECOMPUTED_COUNTER),
        obs_counter(PREP_FEAT_ROWS_RECOMPUTED_COUNTER),
        obs_counter(PREP_MAP_BINS_RECOMPUTED_COUNTER),
        obs_counter(PREP_MASKS_TOTAL_COUNTER),
    );
    assert_eq!(pm1 - pm0, 0, "no-op update must recompute zero endpoint masks");
    assert_eq!(pf1 - pf0, 0, "no-op update must recompute zero feature rows");
    assert_eq!(pb1 - pb0, 0, "no-op update must recompute zero map bins");
    assert!(pt1 > pt0, "no-op update still counts total masks");
    prep2
        .bit_eq(&prepare_design(&nl2, pl, &lib, cfg))
        .unwrap_or_else(|field| panic!("no-op delta prepare diverged at field `{field}`"));

    let inc_pred = model.predict_incremental(&ctx, &mut inc, &prep2, &seeds, &all);
    let (r2, t2) = (obs_counter(ROWS_RECOMPUTED_COUNTER), obs_counter(ROWS_TOTAL_COUNTER));
    assert_eq!(r2 - r1, 0, "empty dirty set must reuse the cached activations in full");
    assert_eq!(t2 - t1, t1 - t0, "warm pass covers the same row count");
    assert_bits_eq("zero-dirty fixture", &inc_pred, &model.predict_batch(&ctx, &prep2, &all));
}

/// Nightly soak: one long randomized transform session (200+ applied
/// transforms on one design, bit-checked after every step). CI runs this
/// under `RTT_SANITIZE=1` so every kernel output is finite-checked too.
///
/// ```text
/// cargo test --release --test incremental_equivalence -- --ignored
/// ```
#[test]
#[ignore = "nightly soak; run explicitly with -- --ignored"]
fn incremental_soak_survives_hundreds_of_transforms() {
    let lib = CellLibrary::asap7_like();
    let model = TimingModel::new(ModelConfig::tiny());
    let mut runner = TestRunner::new("incremental_equivalence::soak");
    let d = preset("steelcore", Scale::Tiny).expect("known preset").generate(&lib);
    let pl = place_design(&d.netlist, &lib, d.num_macros, &PlaceConfig::default());

    let ops = generate_sequence(&mut runner, &d.netlist, &pl, &lib, 220);
    assert!(ops.len() >= 200, "soak needs 200+ applied transforms, sampled {}", ops.len());
    parallel::set_num_threads(4);
    let ctx = InferCtx::new();
    let outcome = run_sequence(&model, &ctx, &lib, &d.netlist, &pl, &ops);
    parallel::set_num_threads(1);
    if let Err((idx, why)) = outcome {
        panic!("soak failed at op {idx}: {why}");
    }
    let (recomputed, total) =
        (obs_counter(ROWS_RECOMPUTED_COUNTER), obs_counter(ROWS_TOTAL_COUNTER));
    eprintln!(
        "soak: {} transforms, {recomputed}/{total} rows recomputed ({:.1}% reused)",
        ops.len(),
        100.0 * (1.0 - recomputed as f64 / total.max(1) as f64)
    );
}
