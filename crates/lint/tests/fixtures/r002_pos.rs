// R002 positive: panic-family macros in library code.
pub fn checked_div(a: u32, b: u32) -> u32 {
    if b == 0 {
        panic!("division by zero");
    }
    a / b
}

pub fn future_feature() {
    todo!("not built yet")
}

pub fn other_arm(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unimplemented!(),
    }
}
