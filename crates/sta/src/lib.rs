//! Static timing analysis over the pin-level timing graph.
//!
//! Implements the classic PERT-style single traversal (the paper's reference
//! \[5\]): arrival times propagate in topological order, wire delays come
//! from an [`rtt_route`] RC reduction (sign-off mode) or a placement-only
//! Manhattan estimate (pre-routing mode, the paper's Elmore baseline
//! context), and cell delays use a linear `intrinsic + R_drive · C_load`
//! model.
//!
//! The report exposes exactly the quantities the paper's experiments need:
//! per-endpoint arrival times (the prediction target), WNS/TNS (Table I),
//! and per net-edge / cell-edge delays (local labels for the baselines and
//! the Table I churn statistics).
//!
//! # Example
//!
//! ```
//! use rtt_netlist::{CellLibrary, TimingGraph};
//! use rtt_circgen::ripple_carry_adder;
//! use rtt_place::{place, PlaceConfig};
//! use rtt_route::{route, RouteConfig};
//! use rtt_sta::{run_sta, WireModel};
//!
//! let lib = CellLibrary::asap7_like();
//! let nl = ripple_carry_adder(4, &lib);
//! let pl = place(&nl, &lib, 0, &PlaceConfig::default());
//! let rt = route(&nl, &lib, &pl, &RouteConfig::default());
//! let graph = TimingGraph::build(&nl, &lib);
//! let report = run_sta(&nl, &lib, &graph, WireModel::Routed(&rt), 500.0);
//! assert!(report.wns <= report.clock_period_ps);
//! assert!(!report.endpoint_arrivals().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod propagate;
mod report;

pub use propagate::{
    fanout_cone, propagate, propagate_min, run_sta, WireModel, HOLD_REQUIREMENT_PS,
};
pub use report::StaReport;
