//! Debug-build kernel sanitizer, gated on `RTT_SANITIZE=1`.
//!
//! Two families of checks, both free in release builds:
//!
//! * **Value checks** ([`check_finite`]): scan a tensor for NaN/Inf after a
//!   kernel writes it. The serving kernels are closed over finite inputs
//!   (the one NEG_INFINITY sentinel in `segment_max_csr` is zeroed before
//!   it escapes), so any non-finite value is a kernel bug.
//! * **Plan checks** ([`check_csr`]): validate the CSR invariants of a
//!   gather/segment plan at build time — offsets ascend and end exactly at
//!   the index count, and every gather index addresses a real row.
//!
//! [`enabled`] is `const false` in release builds, so every check body is
//! dead code there and the serving path pays nothing. In debug builds the
//! checks run only when `RTT_SANITIZE=1` is set in the environment, and
//! each pass bumps the `nn::sanitize_value_checks` /
//! `nn::sanitize_plan_checks` flat counters so tests can assert the
//! sanitizer actually looked at something. Checks never mutate data, so a
//! sanitized run is bit-identical to an unsanitized one.

use crate::Tensor;

static VALUE_CHECKS: rtt_obs::Counter = rtt_obs::Counter::new("nn::sanitize_value_checks");
static PLAN_CHECKS: rtt_obs::Counter = rtt_obs::Counter::new("nn::sanitize_plan_checks");

/// `true` when sanitizer checks should run: a debug build with
/// `RTT_SANITIZE=1` in the environment. Always `false` in release builds,
/// which lets the optimizer delete every check body.
#[inline]
pub fn enabled() -> bool {
    if cfg!(debug_assertions) {
        std::env::var_os("RTT_SANITIZE").is_some_and(|v| v == "1")
    } else {
        false
    }
}

/// Scans `t` for non-finite values when the sanitizer is enabled.
///
/// # Panics
///
/// Panics naming `tag` and the flat index of the first NaN/Inf found.
#[inline]
pub fn check_finite(tag: &str, t: &Tensor) {
    if !enabled() {
        return;
    }
    VALUE_CHECKS.add(1);
    for (i, &v) in t.data().iter().enumerate() {
        if !v.is_finite() {
            // rtt-lint: allow(R002, R003, reason = "sanitizer abort is the product: debug/env-gated, compiled out of release")
            panic!(
                "sanitize[{tag}]: non-finite value {v} at flat index {i} of shape {:?}",
                t.shape()
            );
        }
    }
}

/// Validates the CSR invariants of a segment plan when the sanitizer is
/// enabled: `offsets` is non-empty, starts at 0, ascends monotonically,
/// ends exactly at `indices.len()`, and every index in `indices` is below
/// `rows`.
///
/// # Panics
///
/// Panics naming `tag` and the violated invariant.
#[inline]
pub fn check_csr(tag: &str, offsets: &[u32], indices: &[u32], rows: usize) {
    if !enabled() {
        return;
    }
    PLAN_CHECKS.add(1);
    // rtt-lint: allow(R002, R003, reason = "sanitizer abort is the product: debug/env-gated, compiled out of release")
    let fail = |what: String| -> ! { panic!("sanitize[{tag}]: {what}") };
    if offsets.is_empty() {
        fail("CSR offsets are empty".to_owned());
    }
    if offsets[0] != 0 {
        fail(format!("CSR offsets start at {} instead of 0", offsets[0]));
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            fail(format!("CSR offsets descend: {} -> {}", w[0], w[1]));
        }
    }
    let last = offsets[offsets.len() - 1] as usize;
    if last != indices.len() {
        fail(format!("CSR offsets end at {last} but there are {} indices", indices.len()));
    }
    for (i, &ix) in indices.iter().enumerate() {
        if ix as usize >= rows {
            fail(format!("gather index {ix} at position {i} exceeds {rows} rows"));
        }
    }
}

/// Validates a plain scatter/gather row-index list when the sanitizer is
/// enabled: every destination in `dst` addresses one of `rows` rows.
///
/// # Panics
///
/// Panics naming `tag` and the out-of-range index.
#[inline]
pub fn check_rows(tag: &str, dst: &[u32], rows: usize) {
    if !enabled() {
        return;
    }
    PLAN_CHECKS.add(1);
    for (i, &ix) in dst.iter().enumerate() {
        if ix as usize >= rows {
            // rtt-lint: allow(R002, R003, reason = "sanitizer abort is the product: debug/env-gated, compiled out of release")
            panic!("sanitize[{tag}]: row index {ix} at position {i} exceeds {rows} rows");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled() gate is covered end-to-end in tests/sanitize.rs (it
    // needs process-level env control); these exercise the check bodies
    // directly by calling through with the gate forced via env.

    fn with_sanitize<R>(f: impl FnOnce() -> R) -> R {
        // One test at a time owns the env var; the lock also survives a
        // should_panic unwind (poisoning is ignored).
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("RTT_SANITIZE", "1");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        std::env::remove_var("RTT_SANITIZE");
        match r {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    #[test]
    fn finite_tensor_passes() {
        with_sanitize(|| check_finite("t", &Tensor::zeros(&[2, 2])));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_is_caught() {
        with_sanitize(|| {
            let mut t = Tensor::zeros(&[2]);
            t.data_mut()[1] = f32::NAN;
            check_finite("t", &t);
        });
    }

    #[test]
    fn valid_csr_passes() {
        with_sanitize(|| check_csr("p", &[0, 2, 2, 3], &[0, 1, 4], 5));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_gather_is_caught() {
        with_sanitize(|| check_csr("p", &[0, 1], &[9], 5));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "end at")]
    fn truncated_offsets_are_caught() {
        with_sanitize(|| check_csr("p", &[0, 1], &[0, 1], 5));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "row index")]
    fn bad_scatter_row_is_caught() {
        with_sanitize(|| check_rows("p", &[7], 3));
    }
}
