//! An offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so the property-testing
//! surface this workspace uses is implemented locally: the [`proptest!`]
//! macro over `arg in strategy` bindings, range strategies for integers and
//! floats, tuple strategies, [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled values via the standard assertion message), and a fixed,
//! deterministic case count of [`CASES`] per property seeded from the test's
//! module path — failures therefore reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Number of random cases executed per property.
pub const CASES: usize = 48;

/// Deterministic case generator (SplitMix64), seeded from the test name.
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a runner whose stream is a pure function of `name`.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the test path gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A value generator. Strategies sample directly (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(runner.below(span) as $t)
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * runner.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )+};
}

impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, runner: &mut TestRunner) -> Self::Value {
        (self.0.sample(runner), self.1.sample(runner))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, runner: &mut TestRunner) -> Self::Value {
        (self.0.sample(runner), self.1.sample(runner), self.2.sample(runner))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.len.sample(runner);
            (0..n).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Runs the body for [`CASES`] deterministic samples of the bound
/// strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner =
                    $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __runner);)+
                    $body
                }
            }
        )*
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, TestRunner};

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f32..2.0, s in 0u64..1000) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(s < 1000);
        }

        #[test]
        fn vec_strategy_respects_length(
            v in collection::vec(0.0f32..1.0, 2..9),
            pairs in collection::vec((0usize..5, 0.0f64..1.0), 1..4),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!((1..4).contains(&pairs.len()));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::new("x::y");
        let mut b = TestRunner::new("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::new("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
