//! A lightweight recursive-descent item/signature parser over the lexer.
//!
//! `rtt-lint` v1 matched token patterns per line; the call-graph rules
//! (R003/P001/P002) need to know *which function* a token belongs to and
//! *which functions it calls*. This module extracts exactly that — no
//! types, no expressions, no macro expansion:
//!
//! * function definitions (name, enclosing `impl` type, receiver-ness,
//!   body span), skipping `#[cfg(test)]` items and bodiless trait
//!   declarations;
//! * struct definitions with per-field type names (the receiver-type
//!   heuristic for `self.field.method(...)` calls);
//! * per-body call sites (free calls, `path::calls`, method calls with a
//!   best-effort receiver type), panic sites, allocation sites, indexed
//!   accesses inside innermost loops, and `assert!`-family guards;
//! * the `// rtt-lint: hot` / `// rtt-lint: entry` function markers.
//!
//! Everything here is a documented heuristic: when the parser cannot
//! resolve something (macro-generated items, trait-object dispatch,
//! closures) it simply records less, and the call-graph layer treats the
//! gap as opaque. See DESIGN.md, "Static analysis architecture".

use crate::lexer::{Comment, Lexed, Token, TokenKind};
use crate::rules::FileContext;

/// Everything extracted from one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Repo-relative path (diagnostics).
    pub path: String,
    /// Owning crate directory name.
    pub crate_name: String,
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Struct definitions with named fields.
    pub types: Vec<TypeDef>,
}

/// A struct definition and the type name of each named field.
#[derive(Clone, Debug)]
pub struct TypeDef {
    /// Struct name.
    pub name: String,
    /// `(field, type)` pairs; the type is the *last* capitalized path
    /// segment of the declared type (`Option<NetlistGnn>` → `NetlistGnn`,
    /// `Vec<Linear>` → `Linear`), which is what method resolution wants.
    pub fields: Vec<(String, String)>,
}

/// One function definition with everything the graph rules consume.
#[derive(Clone, Debug, Default)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (`impl Exec for &InferCtx` → `InferCtx`).
    pub self_ty: Option<String>,
    /// `true` when the first parameter is a `self` receiver.
    pub is_method: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Marked `// rtt-lint: hot` (P001/P002 root).
    pub hot: bool,
    /// Marked `// rtt-lint: entry` (R003 root).
    pub entry: bool,
    /// Outgoing call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Panic sites (`unwrap`, `expect`, panic-family macros, `[&k]` map
    /// indexing), in source order.
    pub panics: Vec<Site>,
    /// Allocation sites (`Vec::new`, `clone`, `push`, `format!`, …).
    pub allocs: Vec<Site>,
    /// `name[...]` accesses inside an *innermost* loop body.
    pub index_sites: Vec<IndexSite>,
    /// `assert!`-family guards and the identifiers they mention.
    pub asserts: Vec<AssertInfo>,
}

impl FnDef {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn qualified_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site and how far the parser got resolving its callee.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The callee, as locally resolvable.
    pub callee: Callee,
    /// 1-based line / column of the callee name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Callee classification; final resolution happens in the call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `name(...)` — a free function call.
    Free(String),
    /// `qualifier::name(...)` — `Type::method` or `module::function`;
    /// only the last qualifier segment is kept.
    Path(String, String),
    /// `recv.name(...)` — receiver type when locally inferable (`self`,
    /// `self.field` via the field table, a typed local), else `None`.
    Method(Option<String>, String),
}

/// A panic or allocation site.
#[derive(Clone, Debug)]
pub struct Site {
    /// What fired (`unwrap`, `panic!`, `clone`, `Vec::new`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// An indexed access `name[...]` inside an innermost loop body.
#[derive(Clone, Debug)]
pub struct IndexSite {
    /// The indexed identifier.
    pub name: String,
    /// 1-based line of the access.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Line of the innermost loop's keyword (asserts must dominate it).
    pub loop_line: u32,
}

/// One `assert!`/`assert_eq!`/`debug_assert!` and the names it mentions.
#[derive(Clone, Debug)]
pub struct AssertInfo {
    /// 1-based line of the macro.
    pub line: u32,
    /// Identifiers appearing in the macro arguments.
    pub idents: Vec<String>,
}

/// Identifiers Rust reserves; never treated as a callee name.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

/// Panic-family macros R003 tracks. `unreachable!` and the `assert!`
/// family are deliberately excluded: they assert statically-known
/// invariants and are the sanctioned bounds-hoisting mechanism (P002).
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that (re)allocate.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "collect",
    "push",
    "extend",
    "extend_from_slice",
    "reserve",
    "resize",
    "resize_with",
    "append",
    "insert",
];

/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

const ASSERT_MACROS: &[&str] =
    &["assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Parses one lexed file into definitions, calls, and sites.
pub fn parse_file(lexed: &Lexed, ctx: &FileContext) -> ParsedFile {
    let toks = &lexed.tokens;
    let markers = markers(&lexed.comments);
    let test_spans = crate::rules::test_spans(toks);
    let impls = impl_ranges(toks);
    let statics = static_bindings(toks);
    let mut out = ParsedFile {
        path: ctx.path.clone(),
        crate_name: ctx.crate_name.clone(),
        ..ParsedFile::default()
    };

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("struct") && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            if let Some((def, next)) = parse_struct(toks, i) {
                out.types.push(def);
                i = next;
                continue;
            }
        }
        // A `fn` keyword followed by an identifier is a definition (a
        // bare `fn(..)` is a function-pointer type).
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            let in_test = test_spans.iter().any(|&(s, e)| t.line >= s && t.line <= e);
            if let Some((def, next)) = parse_fn(toks, i, &impls, &statics) {
                if !in_test {
                    out.fns.push(def);
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
    // A marker attaches to the *first* fn at or after its line (trailing
    // markers share the fn line; up to 4 lines of attributes/docs may sit
    // between a leading marker and its fn).
    for &(mline, kind) in &markers {
        if let Some(def) = out
            .fns
            .iter_mut()
            .filter(|d| d.line >= mline && d.line - mline <= 4)
            .min_by_key(|d| d.line)
        {
            match kind {
                "hot" => def.hot = true,
                _ => def.entry = true,
            }
        }
    }
    out
}

/// `NAME → Type` for every `static`/`const` item in the file (module level
/// or fn-local — both bind the same way), so `COUNTER.add(1)` resolves to
/// the static's type instead of fanning out across the workspace.
fn static_bindings(toks: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if (toks[i].is_ident("static") || toks[i].is_ident("const"))
            && toks[i + 1].kind == TokenKind::Ident
            && toks[i + 2].is_punct(":")
        {
            // Type tokens run to `=` or `;` at depth 0.
            let mut ty = None;
            let (mut d, mut a) = (0i32, 0i32);
            let mut m = i + 3;
            while m < toks.len() {
                let tt = &toks[m];
                match tt.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "<" => a += 1,
                    "<<" => a += 2,
                    ">" if a > 0 => a -= 1,
                    ">>" if a > 1 => a -= 2,
                    "=" | ";" if d == 0 && a == 0 => break,
                    _ => {}
                }
                if tt.kind == TokenKind::Ident && tt.text.starts_with(char::is_uppercase) {
                    ty = Some(tt.text.clone());
                }
                m += 1;
            }
            if let Some(ty) = ty {
                out.push((toks[i + 1].text.clone(), ty));
            }
            i = m;
            continue;
        }
        i += 1;
    }
    out
}

/// Lines carrying `// rtt-lint: hot` / `// rtt-lint: entry` markers.
fn markers(comments: &[Comment]) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("rtt-lint:") else { continue };
        match rest.trim() {
            "hot" => out.push((c.line, "hot")),
            "entry" => out.push((c.line, "entry")),
            _ => {}
        }
    }
    out
}

/// `(start, end, type)` token ranges of every `impl` block body.
fn impl_ranges(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Skip generic parameters on the impl itself.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                j = skip_angles(toks, j);
            }
            // Collect path segments until `for`, `{`, or `where`; the
            // self type is the path after `for` when present.
            let mut first = collect_ty_name(toks, &mut j);
            if toks.get(j).is_some_and(|t| t.is_ident("for")) {
                j += 1;
                first = collect_ty_name(toks, &mut j);
            }
            // Find the opening brace (skips where-clauses).
            while toks.get(j).is_some_and(|t| !t.is_punct("{") && !t.is_punct(";")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                if let (Some(name), Some(end)) = (first, match_brace(toks, j)) {
                    out.push((j, end, name));
                }
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Reads a type path at `*j`, advancing past it; returns the last
/// capitalized segment before any generic arguments (`&mut
/// rtt_nn::InferCtx<'a>` → `InferCtx`).
fn collect_ty_name(toks: &[Token], j: &mut usize) -> Option<String> {
    let mut name = None;
    while let Some(t) = toks.get(*j) {
        match t.kind {
            TokenKind::Punct if t.text == "&" || t.text == "::" => {}
            TokenKind::Lifetime => {}
            TokenKind::Ident if t.text == "mut" || t.text == "dyn" => {}
            TokenKind::Ident => {
                if t.text.starts_with(char::is_uppercase) {
                    name = Some(t.text.clone());
                }
            }
            TokenKind::Punct if t.text == "<" => {
                *j = skip_angles(toks, *j);
                continue;
            }
            _ => break,
        }
        *j += 1;
    }
    name
}

/// Skips a balanced `<...>` starting at `i` (which must be `<`); tolerates
/// the lexer's fused `>>` closing two levels at once.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "->" | "<=" | ">=" | "==" => {}
            ";" | "{" => break,
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" if t.kind == TokenKind::Punct => depth += 1,
            "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses `struct Name { fields }` at `i`; returns the def and the index
/// right after the closing brace. Tuple and unit structs yield no fields.
fn parse_struct(toks: &[Token], i: usize) -> Option<(TypeDef, usize)> {
    let name = toks[i + 1].text.clone();
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(toks, j);
    }
    // Tuple struct `struct X(...);` or unit `struct X;` — no fields.
    if toks.get(j).is_some_and(|t| t.is_punct("(") || t.is_punct(";")) {
        return Some((TypeDef { name, fields: Vec::new() }, j + 1));
    }
    while toks.get(j).is_some_and(|t| !t.is_punct("{") && !t.is_punct(";")) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("{")) {
        return None;
    }
    let end = match_brace(toks, j)?;
    let mut fields = Vec::new();
    // Scan the body at top level: `name :` introduces a field; its type
    // runs to the next comma outside parens/brackets/angles.
    let mut k = j + 1;
    let mut depth = 0i32; // parens + brackets + braces inside the body
    let mut angles = 0i32;
    while k < end {
        let t = &toks[k];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => angles += 1,
            "<<" => angles += 2,
            ">" if angles > 0 => angles -= 1,
            ">>" if angles > 1 => angles -= 2,
            _ => {}
        }
        if depth == 0
            && angles == 0
            && t.kind == TokenKind::Ident
            && !KEYWORDS.contains(&t.text.as_str())
            && toks.get(k + 1).is_some_and(|n| n.is_punct(":"))
        {
            // Type tokens run to the field-separating comma.
            let mut ty = None;
            let (mut d, mut a) = (0i32, 0i32);
            let mut m = k + 2;
            while m < end {
                let tt = &toks[m];
                match tt.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "<" => a += 1,
                    "<<" => a += 2,
                    ">" if a > 0 => a -= 1,
                    ">>" if a > 1 => a -= 2,
                    "," if d == 0 && a == 0 => break,
                    _ => {}
                }
                if tt.kind == TokenKind::Ident && tt.text.starts_with(char::is_uppercase) {
                    ty = Some(tt.text.clone());
                }
                m += 1;
            }
            if let Some(ty) = ty {
                fields.push((t.text.clone(), ty));
            }
            k = m;
            continue;
        }
        k += 1;
    }
    Some((TypeDef { name, fields }, end + 1))
}

/// Parses a `fn` definition at `i`; returns the def and the index right
/// after its body (or signature, for bodiless trait declarations, which
/// yield `None`).
fn parse_fn(
    toks: &[Token],
    i: usize,
    impls: &[(usize, usize, String)],
    statics: &[(String, String)],
) -> Option<(FnDef, usize)> {
    let name_tok = &toks[i + 1];
    let fn_line = toks[i].line;
    let self_ty = impls.iter().find(|&&(s, e, _)| i > s && i < e).map(|(_, _, ty)| ty.clone());

    // Signature: optional generics, then the parameter list.
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_angles(toks, j);
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let params_open = j;
    let params_close = match_paren(toks, params_open)?;
    let is_method = toks[params_open + 1..params_close]
        .iter()
        .take_while(|t| t.is_punct("&") || t.kind == TokenKind::Lifetime || t.is_ident("mut"))
        .count()
        .checked_add(params_open + 1)
        .and_then(|k| toks.get(k))
        .is_some_and(|t| t.is_ident("self"));

    // Body: the first top-level `{` after the parameter list; a `;` first
    // means a bodiless trait declaration.
    let mut k = params_close + 1;
    let mut angles = 0i32;
    loop {
        let t = toks.get(k)?;
        match t.text.as_str() {
            "<" => angles += 1,
            "<<" => angles += 2,
            ">" if angles > 0 => angles -= 1,
            ">>" if angles > 1 => angles -= 2,
            "(" | "[" => {
                k = match_open(toks, k)?;
            }
            "{" if angles == 0 => break,
            ";" if angles == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    let body_open = k;
    let body_close = match_brace(toks, body_open)?;

    // File-level statics first, then parameters: later bindings shadow
    // earlier ones in the receiver lookup.
    let mut params = statics.to_vec();
    params.extend(param_types(toks, params_open + 1, params_close, self_ty.as_deref()));
    let mut def = FnDef {
        name: name_tok.text.clone(),
        self_ty,
        is_method,
        line: fn_line,
        ..FnDef::default()
    };
    scan_body(toks, body_open + 1, body_close, &mut def, params);
    Some((def, body_close + 1))
}

/// Extracts `name → Type` pairs from a parameter list, so method calls on
/// parameters (`store.value(...)` with `store: &ParamStore`) resolve to the
/// parameter's type instead of fanning out to every same-named method in
/// the workspace. The type is the last capitalized path segment, matching
/// the struct-field and let-binding heuristics; generic parameters (`ex: E`)
/// resolve to a type with no known methods and stay opaque.
fn param_types(
    toks: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut i = start;
    while i < end {
        // One parameter runs to the next comma outside parens/angles.
        let chunk = i;
        let (mut d, mut a) = (0i32, 0i32);
        while i < end {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "<" => a += 1,
                "<<" => a += 2,
                ">" if a > 0 => a -= 1,
                ">>" if a > 1 => a -= 2,
                "," if d == 0 && a == 0 => break,
                _ => {}
            }
            i += 1;
        }
        // `[mut] name : ...Type...` — patterns like `(a, b): (A, B)` and
        // the `self` receiver carry no single name/type pair and are skipped.
        let mut j = chunk;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident && !t.is_ident("self"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
        {
            let ty = toks[j + 2..i]
                .iter()
                .rfind(|t| t.kind == TokenKind::Ident && t.text.starts_with(char::is_uppercase))
                .map(|t| t.text.as_str());
            if let Some(ty) = ty {
                let ty = if ty == "Self" { self_ty.unwrap_or("Self") } else { ty };
                params.push((toks[j].text.clone(), ty.to_owned()));
            }
        }
        i += 1;
    }
    params
}

/// Index of the token matching the opener at `open` (`(` or `[`).
fn match_open(toks: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

fn match_paren(toks: &[Token], open: usize) -> Option<usize> {
    match_open(toks, open)
}

/// Loop body token ranges inside `[start, end)`, innermost ones only.
fn innermost_loops(toks: &[Token], start: usize, end: usize) -> Vec<(u32, usize, usize)> {
    let mut all: Vec<(u32, usize, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            // The loop body is the next `{` at zero paren/bracket depth.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut open = None;
            while j < end {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                if let Some(close) = match_brace(toks, open) {
                    all.push((t.line, open + 1, close));
                }
            }
        }
        i += 1;
    }
    // Innermost: contains no other loop body strictly inside it.
    all.iter()
        .filter(|&&(_, s, e)| !all.iter().any(|&(_, s2, e2)| s2 > s && e2 < e))
        .copied()
        .collect()
}

/// Walks one function body, recording calls, panic/alloc sites, asserts,
/// indexed accesses in innermost loops, and locally-inferable types.
fn scan_body(
    toks: &[Token],
    start: usize,
    end: usize,
    def: &mut FnDef,
    params: Vec<(String, String)>,
) {
    let loops = innermost_loops(toks, start, end);
    // `name → Type` for locals whose type is locally evident, seeded with
    // the typed parameters from the signature.
    let mut locals: Vec<(String, String)> = params;
    let self_ty = def.self_ty.clone();
    let resolve_self = |ty: &str| -> String {
        if ty == "Self" {
            self_ty.clone().unwrap_or_else(|| "Self".to_owned())
        } else {
            ty.to_owned()
        }
    };

    let mut i = start;
    while i < end {
        let t = &toks[i];

        // ---- local type bindings --------------------------------------
        // `let [mut] name : ...Type...` / `let [mut] name = Type::ctor(`;
        // body-level `static NAME: Type` and `const NAME: Type` bind the
        // same way (e.g. a fn-local `static C: rtt_obs::Counter`).
        if t.is_ident("let") || t.is_ident("static") || t.is_ident("const") {
            let mut j = i + 1;
            while toks.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.kind == TokenKind::Ident) {
                let name = toks[j].text.clone();
                if toks.get(j + 1).is_some_and(|x| x.is_punct(":")) {
                    // Type tokens run to `=` or `;` at depth 0.
                    let mut ty = None;
                    let (mut d, mut a) = (0i32, 0i32);
                    let mut m = j + 2;
                    while m < end {
                        let tt = &toks[m];
                        match tt.text.as_str() {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => d -= 1,
                            "<" => a += 1,
                            "<<" => a += 2,
                            ">" if a > 0 => a -= 1,
                            ">>" if a > 1 => a -= 2,
                            "=" | ";" if d == 0 && a == 0 => break,
                            _ => {}
                        }
                        if tt.kind == TokenKind::Ident && tt.text.starts_with(char::is_uppercase) {
                            ty = Some(tt.text.clone());
                        }
                        m += 1;
                    }
                    if let Some(ty) = ty {
                        locals.push((name, resolve_self(&ty)));
                    }
                } else if toks.get(j + 1).is_some_and(|x| x.is_punct("="))
                    && toks.get(j + 2).is_some_and(|x| {
                        x.kind == TokenKind::Ident && x.text.starts_with(char::is_uppercase)
                    })
                    && toks.get(j + 3).is_some_and(|x| x.is_punct("::"))
                {
                    locals.push((name, resolve_self(&toks[j + 2].text)));
                }
            }
        }
        // `Some(name) = [&]self.field` (if-let / let-else / while-let):
        // bind `name` to the field's element type.
        if t.is_ident("Some")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
            && toks.get(i + 2).is_some_and(|x| x.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|x| x.is_punct(")"))
            && toks.get(i + 4).is_some_and(|x| x.is_punct("="))
        {
            let mut j = i + 5;
            while toks.get(j).is_some_and(|x| x.is_punct("&") || x.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.is_ident("self"))
                && toks.get(j + 1).is_some_and(|x| x.is_punct("."))
                && toks.get(j + 2).is_some_and(|x| x.kind == TokenKind::Ident)
            {
                // Field type resolution happens in the call graph (it owns
                // the field table); record the access path as a pseudo-type
                // `self.field` for it to resolve.
                locals.push((toks[i + 2].text.clone(), format!("self.{}", toks[j + 2].text)));
            }
        }

        // ---- macros ----------------------------------------------------
        if t.kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            let name = t.text.as_str();
            if PANIC_MACROS.contains(&name) {
                def.panics.push(Site { what: format!("{name}!"), line: t.line, col: t.col });
            } else if ALLOC_MACROS.contains(&name) {
                def.allocs.push(Site { what: format!("{name}!"), line: t.line, col: t.col });
            } else if ASSERT_MACROS.contains(&name) {
                if let Some(open) = toks.get(i + 2).filter(|x| x.is_punct("(")).map(|_| i + 2) {
                    if let Some(close) = match_paren(toks, open) {
                        let idents = toks[open + 1..close]
                            .iter()
                            .filter(|x| x.kind == TokenKind::Ident)
                            .map(|x| x.text.clone())
                            .collect();
                        def.asserts.push(AssertInfo { line: t.line, idents });
                        i = close;
                        continue;
                    }
                }
            }
            i += 2;
            continue;
        }

        // ---- method calls, panic methods, alloc methods ---------------
        if t.is_punct(".")
            && toks.get(i + 1).is_some_and(|m| m.kind == TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|p| p.is_punct("("))
        {
            let m = &toks[i + 1];
            let mname = m.text.as_str();
            if mname == "unwrap" || mname == "expect" {
                def.panics.push(Site { what: mname.to_owned(), line: m.line, col: m.col });
            }
            if ALLOC_METHODS.contains(&mname) {
                def.allocs.push(Site { what: mname.to_owned(), line: m.line, col: m.col });
            }
            let recv = receiver_hint(toks, i, &locals, self_ty.as_deref());
            def.calls.push(CallSite {
                callee: Callee::Method(recv, m.text.clone()),
                line: m.line,
                col: m.col,
            });
            i += 3;
            continue;
        }

        // ---- path and free calls ---------------------------------------
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
            && !KEYWORDS.contains(&t.text.as_str())
            // `fn name(` is a nested definition, not a call.
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            if i > 0 && toks[i - 1].is_punct("::") && i > 1 && toks[i - 2].kind == TokenKind::Ident
            {
                let q = resolve_self(&toks[i - 2].text);
                if let Some(&(_, ctor)) =
                    ALLOC_CTORS.iter().find(|&&(ty, c)| ty == q && c == t.text)
                {
                    def.allocs.push(Site {
                        what: format!("{q}::{ctor}"),
                        line: t.line,
                        col: t.col,
                    });
                }
                def.calls.push(CallSite {
                    callee: Callee::Path(q, t.text.clone()),
                    line: t.line,
                    col: t.col,
                });
            } else if i == 0 || !toks[i - 1].is_punct(".") {
                def.calls.push(CallSite {
                    callee: Callee::Free(t.text.clone()),
                    line: t.line,
                    col: t.col,
                });
            }
            i += 2;
            continue;
        }

        // ---- indexing --------------------------------------------------
        if t.is_punct("[")
            && i > 0
            && toks[i - 1].kind == TokenKind::Ident
            && !KEYWORDS.contains(&toks[i - 1].text.as_str())
        {
            // `map[&key]` indexes a map: panics when the key is missing.
            if toks.get(i + 1).is_some_and(|n| n.is_punct("&")) {
                def.panics.push(Site {
                    what: format!("{}[&…] map index", toks[i - 1].text),
                    line: t.line,
                    col: t.col,
                });
            }
            // `name[...]` inside an innermost loop body: P002 material.
            if toks[i - 1].kind == TokenKind::Ident
                && !toks[i - 1].text.starts_with(char::is_uppercase)
            {
                if let Some(&(loop_line, _, _)) = loops.iter().find(|&&(_, s, e)| i >= s && i < e) {
                    def.index_sites.push(IndexSite {
                        name: toks[i - 1].text.clone(),
                        line: t.line,
                        col: t.col,
                        loop_line,
                    });
                }
            }
        }

        i += 1;
    }
}

/// Best-effort receiver type of the method call whose `.` sits at `dot`.
fn receiver_hint(
    toks: &[Token],
    dot: usize,
    locals: &[(String, String)],
    self_ty: Option<&str>,
) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let local_ty = |name: &str| -> Option<String> {
        locals.iter().rev().find(|(n, _)| n == name).map(|(_, ty)| ty.clone())
    };
    let prev = &toks[dot - 1];
    // `self.m(...)`.
    if prev.is_ident("self") {
        return self_ty.map(str::to_owned);
    }
    if prev.kind == TokenKind::Ident {
        // `self.field.m(...)` — resolved against the field table later.
        if dot >= 3 && toks[dot - 2].is_punct(".") && toks[dot - 3].is_ident("self") {
            return Some(format!("self.{}", prev.text));
        }
        // `local.m(...)` with a locally evident type.
        return local_ty(&prev.text);
    }
    // `expr[...]` receiver: `self.field[i].m(...)` / `local[i].m(...)`.
    if prev.is_punct("]") {
        let mut depth = 0i32;
        let mut j = dot - 1;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j >= 1 && toks[j - 1].kind == TokenKind::Ident {
            if j >= 3 && toks[j - 2].is_punct(".") && toks[j - 3].is_ident("self") {
                return Some(format!("self.{}", toks[j - 1].text));
            }
            return local_ty(&toks[j - 1].text);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walk::classify;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src), &classify("crates/x/src/lib.rs"))
    }

    #[test]
    fn finds_plain_and_impl_fns() {
        let src = "fn a() { b(); }\n\
                   struct S { f: Mlp }\n\
                   impl S {\n    fn m(&self) { self.f.forward_into(x); }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, Callee::Free("b".to_owned()));
        let m = &p.fns[1];
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert!(m.is_method);
        assert_eq!(p.types[0].fields, vec![("f".to_owned(), "Mlp".to_owned())]);
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let src = "trait T { fn a(self) -> usize; fn b(&self) { helper(); } }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "b");
    }

    #[test]
    fn markers_attach_to_the_next_fn() {
        let src = "// rtt-lint: hot\nfn k() {}\n\n// rtt-lint: entry\npub fn e() {}\nfn c() {}\n";
        let p = parse(src);
        assert!(p.fns[0].hot && !p.fns[0].entry);
        assert!(p.fns[1].entry && !p.fns[1].hot);
        assert!(!p.fns[2].hot && !p.fns[2].entry);
    }

    #[test]
    fn panic_and_alloc_sites_are_recorded() {
        let src = "fn f(m: &std::collections::HashMap<u32,u32>) {\n\
                   let x = opt.unwrap();\n    let y = v.to_vec();\n\
                   let z = m[&3];\n    panic!(\"no\");\n}\n";
        let p = parse(src);
        let f = &p.fns[0];
        let whats: Vec<&str> = f.panics.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"unwrap"));
        assert!(whats.contains(&"panic!"));
        assert!(whats.iter().any(|w| w.contains("map index")), "{whats:?}");
        assert_eq!(f.allocs[0].what, "to_vec");
    }

    #[test]
    fn innermost_loop_indexing_and_asserts() {
        let src = "fn k(a: &[f32], out: &mut [f32]) {\n\
                   assert_eq!(a.len(), out.len());\n\
                   for i in 0..a.len() {\n        out[i] = a[i];\n    }\n}\n";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.index_sites.len(), 2);
        assert_eq!(f.asserts.len(), 1);
        assert!(f.asserts[0].idents.contains(&"a".to_owned()));
        assert!(f.asserts[0].idents.contains(&"out".to_owned()));
        assert!(f.asserts[0].line < f.index_sites[0].loop_line);
    }

    #[test]
    fn impl_for_reference_type_resolves() {
        let src = "impl Exec for &InferCtx { fn matmul(self) { self.emit(); } }";
        let p = parse(src);
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("InferCtx"));
    }

    #[test]
    fn parameter_types_drive_receiver_resolution() {
        // The real Linear::forward signature: a generic backend parameter
        // plus a typed store. `ex.matmul` must resolve to the generic `E`
        // (opaque downstream) and `store.value` to ParamStore.
        let src = "pub fn forward<E: Exec>(ex: E, store: &ParamStore, x: E::Value) -> E::Value {\n\
                   ex.matmul(x, store.value(w))\n}\n";
        let p = parse(src);
        let recv: Vec<_> = p.fns[0]
            .calls
            .iter()
            .map(|c| match &c.callee {
                Callee::Method(recv, name) => (recv.as_deref(), name.as_str()),
                other => panic!("unexpected callee {other:?}"),
            })
            .collect();
        assert!(recv.contains(&(Some("E"), "matmul")), "{recv:?}");
        assert!(recv.contains(&(Some("ParamStore"), "value")), "{recv:?}");
    }

    #[test]
    fn closure_params_do_not_break_later_ones() {
        // The real with_scratch signature: an impl-Fn parameter whose type
        // tokens contain parens, references, and generics.
        let src = "pub fn with_scratch<R>(n: usize, \
                   f: impl FnOnce(&mut [Tensor], &mut Vec<u32>, &mut Tensor) -> R, \
                   store: &ParamStore) -> R {\n    store.value(n)\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].name, "with_scratch");
        assert!(
            p.fns[0]
                .calls
                .iter()
                .any(|c| c.callee
                    == Callee::Method(Some("ParamStore".to_owned()), "value".to_owned())),
            "{:?}",
            p.fns[0].calls
        );
    }

    #[test]
    fn file_level_statics_type_their_receivers() {
        let src = "static CALLS: rtt_obs::Counter = rtt_obs::Counter::new(\"x\");\n\
                   fn bump() { CALLS.add(1); }\n\
                   fn local() { static N: rtt_obs::Counter = rtt_obs::Counter::new(\"y\"); N.add(2); }\n";
        let p = parse(src);
        let add_recv = |f: &FnDef| -> Option<String> {
            f.calls.iter().find_map(|c| match &c.callee {
                Callee::Method(recv, name) if name == "add" => recv.clone(),
                _ => None,
            })
        };
        assert_eq!(add_recv(&p.fns[0]).as_deref(), Some("Counter"));
        assert_eq!(add_recv(&p.fns[1]).as_deref(), Some("Counter"));
    }
}
