//! The paper's contribution: restructure-tolerant endpoint-embedding
//! timing prediction via multimodal fusion.
//!
//! For every timing endpoint the model builds an embedding from two
//! modalities and regresses the sign-off arrival time:
//!
//! * **Netlist branch** (Section IV): a customized GNN propagates messages
//!   over the pin-level DAG in topological order. Cell nodes aggregate
//!   their fanin with a *max* (worst-arrival semantics) through `f_c1` and
//!   combine with their cell features through `f_c2`; net nodes add the
//!   single driver message to `f_n` of their net features (Equation 3).
//! * **Layout branch** (Section V): a CNN compresses the stacked density /
//!   RUDY / macro maps into a global layout map `M^L` at quarter
//!   resolution; each endpoint's critical-region mask (Equations 4–6)
//!   selects its relevant region via a Hadamard product, and a shared FC
//!   layer produces the layout embedding.
//!
//! The concatenated embedding feeds an MLP regressor trained with MSE on
//! endpoint arrival times (Equation 2). [`ModelVariant`] exposes the
//! paper's ablations (GNN-only, CNN-only) plus two design-choice ablations
//! (mean aggregation, unmasked layout).
//!
//! # Example
//!
//! Train on a tiny design and predict its endpoint arrivals:
//!
//! ```
//! use rtt_core::{ModelConfig, PreparedDesign, TimingModel, TrainConfig};
//! use rtt_netlist::{CellLibrary, TimingGraph};
//! use rtt_circgen::ripple_carry_adder;
//! use rtt_place::{place, PlaceConfig};
//!
//! let lib = CellLibrary::asap7_like();
//! let nl = ripple_carry_adder(4, &lib);
//! let pl = place(&nl, &lib, 0, &PlaceConfig::default());
//! let graph = TimingGraph::build(&nl, &lib);
//! // Toy targets: one per endpoint.
//! let targets = vec![100.0; graph.endpoints().len()];
//! let cfg = ModelConfig::tiny();
//! let prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, targets);
//! let mut model = TimingModel::new(cfg);
//! model.train(&[prep.clone()], &TrainConfig { epochs: 3, ..TrainConfig::default() });
//! let pred = model.predict(&prep);
//! assert_eq!(pred.len(), graph.endpoints().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnn;
mod config;
mod gnn;
mod incremental;
mod model;
pub mod model_io;
mod prepare;

pub use cnn::LayoutCnn;
pub use config::{Aggregation, ModelConfig, ModelVariant, TrainConfig};
pub use gnn::{GnnSchedule, LevelFeats, NetlistGnn, READOUT_SCALE};
pub use incremental::{
    IncrementalCtx, EPS_REUSED_COUNTER, EPS_TOTAL_COUNTER, ROWS_RECOMPUTED_COUNTER,
    ROWS_TOTAL_COUNTER,
};
pub use model::{TimingModel, TrainLog};
pub use prepare::{
    PrepareCtx, PreparedDesign, PREP_FEAT_ROWS_RECOMPUTED_COUNTER, PREP_FEAT_ROWS_TOTAL_COUNTER,
    PREP_MAP_BINS_RECOMPUTED_COUNTER, PREP_MAP_BINS_TOTAL_COUNTER, PREP_MASKS_RECOMPUTED_COUNTER,
    PREP_MASKS_TOTAL_COUNTER,
};
