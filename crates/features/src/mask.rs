//! Longest-path search and endpoint-wise critical-region masks
//! (paper Section V-B, Equations 4–6).

use rayon::prelude::*;

use rtt_netlist::{EdgeKind, Netlist, TimingGraph};
use rtt_place::{Grid, Placement, Rect};

/// Finds (one of) the longest path(s) from the sources to endpoint node
/// `ep` using the paper's level-descent rule: from a node at topological
/// level `l`, step to any fanin at level `l - 1` (such a fanin always
/// exists on a longest path because levels are longest distances).
///
/// Returns node ids ordered source → endpoint. Deterministic: the first
/// qualifying fanin is taken.
pub fn longest_path(graph: &TimingGraph, ep: u32) -> Vec<u32> {
    let mut path = Vec::new();
    longest_path_into(graph, ep, &mut path);
    path
}

/// [`longest_path`] into a caller-provided buffer, so batched callers
/// reuse one allocation across endpoints.
pub fn longest_path_into(graph: &TimingGraph, ep: u32, path: &mut Vec<u32>) {
    path.clear();
    path.resize(graph.level(ep) as usize + 1, 0);
    let n = fill_path(graph, ep, path);
    path.truncate(n);
}

/// Allocation-free core of [`longest_path_into`]: writes the path into
/// `buf` — which must hold at least `level(ep) + 1` entries — and
/// returns its length. The batched mask kernels call this with one
/// scratch buffer sized to `max_level + 1` per task, keeping the hot
/// loop free of `Vec` growth.
fn fill_path(graph: &TimingGraph, ep: u32, buf: &mut [u32]) -> usize {
    assert!(buf.len() > graph.level(ep) as usize, "buf holds level(ep) + 1 nodes");
    buf[0] = ep;
    let mut n = 1;
    let mut v = ep;
    while graph.level(v) > 0 {
        let want = graph.level(v) - 1;
        // Levels are longest distances, so a node at level l > 0 always
        // has a fanin at level l - 1 on a validated graph. This runs on
        // the serving path (R003), so a violated invariant truncates the
        // path instead of panicking.
        let pred = graph.fanin(v).find(|e| graph.level(e.from) == want).map(|e| e.from);
        debug_assert!(pred.is_some(), "a node at level l has a fanin at level l-1");
        let Some(pred) = pred else { break };
        buf[n] = pred;
        n += 1;
        v = pred;
    }
    buf[..n].reverse();
    n
}

/// Builds the critical-region mask of one endpoint at `grid × grid`
/// resolution: bins overlapping the union of the bounding boxes of the
/// *net edges* along the endpoint's longest path are 1, others 0.
pub fn endpoint_mask(
    netlist: &Netlist,
    placement: &Placement,
    graph: &TimingGraph,
    path: &[u32],
    grid: usize,
) -> Grid {
    let mut mask = Grid::new(grid, grid, placement.floorplan().die);
    for pair in path.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        // Only net edges count: cell-internal regions are not usable by the
        // optimizer (paper Section V-B).
        let is_net = graph.fanin(v).any(|e| e.from == u && e.kind == EdgeKind::Net);
        if !is_net {
            continue;
        }
        let a = placement.pin_position(netlist, graph.pin_of(u));
        let b = placement.pin_position(netlist, graph.pin_of(v));
        mark_bins(&mut mask, Rect::bounding(a, b));
    }
    mask
}

/// Marks every bin overlapping `r` with 1.
fn mark_bins(mask: &mut Grid, r: Rect) {
    let (x0, y0) = mask.bin_of(r.x0, r.y0);
    let (x1, y1) = mask.bin_of(r.x1, r.y1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            mask.set(x, y, 1.0);
        }
    }
}

/// Endpoints per parallel task in [`endpoint_masks`]: large enough to
/// amortize task overhead and keep the reused path buffer warm, small
/// enough that a task's output rows stay cache-resident while written.
const MASK_CHUNK: usize = 64;

/// Computes the masks of every endpoint as rows of a `[num_endpoints,
/// grid²]` row-major buffer (the batched form the model consumes).
///
/// Masks are independent per endpoint, exactly as the paper notes the
/// path-finding can run in parallel — each endpoint's row is a disjoint
/// chunk of the output buffer, so the fan-out is trivially deterministic.
/// Endpoints are processed in cache-sized chunks of [`MASK_CHUNK`]; each
/// task reuses one path buffer and writes bins straight into its
/// (pre-zeroed) output rows instead of building a per-endpoint [`Grid`].
/// Bit-identical to stacking [`endpoint_mask`] rows: the shared geometry
/// grid carries the same die rectangle and bin pitch, so `bin_of` lands
/// every rectangle corner in the same bins.
pub fn endpoint_masks(
    netlist: &Netlist,
    placement: &Placement,
    graph: &TimingGraph,
    grid: usize,
) -> Vec<f32> {
    let obs = rtt_obs::span("features::endpoint_masks");
    let eps = graph.endpoints();
    obs.add("endpoints", eps.len() as u64);
    let gg = grid * grid;
    let mut out = vec![0.0f32; eps.len() * gg];
    // Geometry only: read by `bin_of`, never written.
    let geom = Grid::new(grid, grid, placement.floorplan().die);
    out.par_chunks_mut(MASK_CHUNK * gg).enumerate().for_each(|(c, rows)| {
        let mut path = vec![0u32; graph.max_level() as usize + 1];
        for (j, row) in rows.chunks_mut(gg).enumerate() {
            fill_mask_row(
                netlist,
                placement,
                graph,
                &geom,
                grid,
                eps[c * MASK_CHUNK + j],
                &mut path,
                row,
            );
        }
    });
    out
}

/// Fills one endpoint's (pre-zeroed) dense mask row — the shared inner
/// kernel of [`endpoint_masks`] and [`endpoint_masks_sparse_for`], so a
/// cone-scoped recompute is bit-identical to the batched cold pass.
/// `path` is a caller-owned scratch of at least `max_level + 1` entries.
// rtt-lint: hot
#[allow(clippy::too_many_arguments)]
fn fill_mask_row(
    netlist: &Netlist,
    placement: &Placement,
    graph: &TimingGraph,
    geom: &Grid,
    grid: usize,
    ep: u32,
    path: &mut [u32],
    row: &mut [f32],
) {
    assert!(row.len() == grid * grid, "row is one grid² mask");
    let n = fill_path(graph, ep, path);
    assert!(n <= path.len(), "fill_path stays within the path scratch");
    let steps = &path[..n];
    for pair in steps.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        let is_net = graph.fanin(v).any(|e| e.from == u && e.kind == EdgeKind::Net);
        if !is_net {
            continue;
        }
        let a = placement.pin_position(netlist, graph.pin_of(u));
        let b = placement.pin_position(netlist, graph.pin_of(v));
        let r = Rect::bounding(a, b);
        let (x0, y0) = geom.bin_of(r.x0, r.y0);
        let (x1, y1) = geom.bin_of(r.x1, r.y1);
        for y in y0..=y1 {
            row[y * grid + x0..=y * grid + x1].fill(1.0);
        }
    }
}

/// Computes the masks of an arbitrary subset of endpoint nodes in
/// *sparse* form: per endpoint, the ascending indices of its set bins.
///
/// This is the cone-scoped recompute behind the delta-prepare path: only
/// endpoints whose fan-in cone a transform invalidated are listed in
/// `eps`; every other endpoint's sparse row is carried over from the
/// previous preparation. Rows are independent, so the chunked fan-out is
/// deterministic at any thread count, and each row is bit-identical to
/// sparsifying the matching [`endpoint_masks`] row with `v > 0.0`.
pub fn endpoint_masks_sparse_for(
    netlist: &Netlist,
    placement: &Placement,
    graph: &TimingGraph,
    grid: usize,
    eps: &[u32],
) -> Vec<Vec<u32>> {
    let obs = rtt_obs::span("features::endpoint_masks_sparse_for");
    obs.add("endpoints", eps.len() as u64);
    let gg = grid * grid;
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); eps.len()];
    let geom = Grid::new(grid, grid, placement.floorplan().die);
    out.par_chunks_mut(MASK_CHUNK).enumerate().for_each(|(c, rows)| {
        let mut path = vec![0u32; graph.max_level() as usize + 1];
        let mut dense = vec![0.0f32; gg];
        for (j, sparse) in rows.iter_mut().enumerate() {
            dense.fill(0.0);
            fill_mask_row(
                netlist,
                placement,
                graph,
                &geom,
                grid,
                eps[c * MASK_CHUNK + j],
                &mut path,
                &mut dense,
            );
            sparse
                .extend(dense.iter().enumerate().filter(|(_, &v)| v > 0.0).map(|(i, _)| i as u32));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_netlist::CellLibrary;
    use rtt_place::{place, PlaceConfig};

    fn world() -> (CellLibrary, Netlist, Placement, TimingGraph) {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(6, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        (lib, nl, pl, g)
    }

    #[test]
    fn longest_path_descends_one_level_per_step() {
        let (_, _, _, g) = world();
        for &ep in g.endpoints() {
            let path = longest_path(&g, ep);
            assert_eq!(path.len() as u32, g.level(ep) + 1);
            for (i, &v) in path.iter().enumerate() {
                assert_eq!(g.level(v), i as u32);
            }
            assert_eq!(*path.last().unwrap(), ep);
            assert_eq!(g.fanin(path[0]).count(), 0, "path starts at a source");
        }
    }

    #[test]
    fn longest_path_edges_exist() {
        let (_, _, _, g) = world();
        let ep = g.endpoints()[g.endpoints().len() - 1];
        let path = longest_path(&g, ep);
        for w in path.windows(2) {
            assert!(
                g.fanin(w[1]).any(|e| e.from == w[0]),
                "consecutive path nodes must be connected"
            );
        }
    }

    #[test]
    fn mask_is_binary_and_nonempty_for_deep_endpoints() {
        let (_, nl, pl, g) = world();
        let ep = *g.endpoints().iter().max_by_key(|&&e| g.level(e)).unwrap();
        let path = longest_path(&g, ep);
        let mask = endpoint_mask(&nl, &pl, &g, &path, 16);
        // rtt-lint: allow(D003, reason = "mask entries are written as exact 0.0/1.0 literals")
        assert!(mask.values().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(mask.total() > 0.0, "deep endpoint must have a critical region");
    }

    #[test]
    fn mask_covers_path_pin_bins() {
        let (_, nl, pl, g) = world();
        let ep = *g.endpoints().iter().max_by_key(|&&e| g.level(e)).unwrap();
        let path = longest_path(&g, ep);
        let mask = endpoint_mask(&nl, &pl, &g, &path, 16);
        // Every pin on a net edge of the path must sit in a marked bin.
        for pair in path.windows(2) {
            let is_net = g.fanin(pair[1]).any(|e| e.from == pair[0] && e.kind == EdgeKind::Net);
            if !is_net {
                continue;
            }
            for &v in pair {
                let p = pl.pin_position(&nl, g.pin_of(v));
                let (bx, by) = mask.bin_of(p.x, p.y);
                assert_eq!(mask.at(bx, by), 1.0);
            }
        }
    }

    #[test]
    fn batched_masks_match_individual() {
        let (_, nl, pl, g) = world();
        let grid = 8;
        let all = endpoint_masks(&nl, &pl, &g, grid);
        assert_eq!(all.len(), g.endpoints().len() * grid * grid);
        for (i, &ep) in g.endpoints().iter().enumerate() {
            let path = longest_path(&g, ep);
            let single = endpoint_mask(&nl, &pl, &g, &path, grid);
            assert_eq!(&all[i * grid * grid..(i + 1) * grid * grid], single.values());
        }
    }

    #[test]
    fn different_endpoints_get_different_masks() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("dm", 300, 11).generate(&lib);
        let pl = place(&d.netlist, &lib, 0, &PlaceConfig::default());
        let g = TimingGraph::build(&d.netlist, &lib);
        let grid = 12;
        let masks = endpoint_masks(&d.netlist, &pl, &g, grid);
        let n = g.endpoints().len();
        let mut distinct = std::collections::HashSet::new();
        for i in 0..n {
            let row = &masks[i * grid * grid..(i + 1) * grid * grid];
            distinct.insert(row.iter().map(|&v| v as u8).collect::<Vec<_>>());
        }
        assert!(distinct.len() > n / 4, "masks are suspiciously uniform");
    }
}
