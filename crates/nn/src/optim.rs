//! First-order optimizers.

use std::collections::HashMap;

use crate::{Grads, ParamId, ParamStore, Tensor};

/// Plain stochastic gradient descent.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one update from `grads` to every parameter that has one.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        let ids: Vec<ParamId> = store.iter().map(|(id, _)| id).collect();
        for id in ids {
            if let Some(g) = grads.of(id) {
                let p = store.value_mut(id);
                for (v, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *v -= self.lr * gv;
                }
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the paper trains with Adam at
/// a learning rate of 0.001.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates Adam with the usual β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }

    /// Applies one Adam update from `grads`.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        rtt_obs::span!("nn::optimizer_step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<ParamId> = store.iter().map(|(id, _)| id).collect();
        for id in ids {
            let Some(g) = grads.of(id) else { continue };
            let shape = g.shape().to_vec();
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(&shape));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(&shape));
            let p = store.value_mut(id);
            for i in 0..g.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse, Tape};

    /// Minimize ||x - target||² over a single parameter tensor.
    fn fit(optimizer: &mut dyn FnMut(&mut ParamStore, &Grads), steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let p = store.register(Tensor::zeros(&[1, 3]));
        let target = Tensor::from_rows(&[&[1.0, -2.0, 0.5]]);
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            let tape = Tape::new();
            let x = tape.param(&store, p);
            let loss = mse(&tape, x, tape.constant(target.clone()));
            last = tape.value(loss).data()[0];
            let grads = tape.backward(loss);
            optimizer(&mut store, &grads);
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.5);
        let last = fit(&mut |s, g| sgd.step(s, g), 100);
        assert!(last < 1e-4, "sgd loss {last}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let last = fit(&mut |s, g| adam.step(s, g), 200);
        assert!(last < 1e-4, "adam loss {last}");
    }

    #[test]
    fn adam_ignores_missing_grads() {
        let mut store = ParamStore::new();
        let a = store.register(Tensor::full(&[2], 3.0));
        let _unused = store.register(Tensor::full(&[2], 7.0));
        let mut adam = Adam::new(0.1);
        let tape = Tape::new();
        let x = tape.param(&store, a);
        let loss = x.mul(x).mean();
        let grads = tape.backward(loss);
        adam.step(&mut store, &grads);
        // Unused parameter untouched; used one moved.
        assert_eq!(store.value(ParamId(1)).data(), &[7.0, 7.0]);
        assert!(store.value(a).data()[0] < 3.0);
    }
}
