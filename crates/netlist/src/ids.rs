//! Strongly-typed index newtypes for netlist entities.
//!
//! All ids are stable for the lifetime of a [`crate::Netlist`]: removing an
//! entity tombstones it rather than re-indexing, so ids recorded before a
//! restructuring transform remain valid afterwards. This property is what
//! lets the flow layer diff an optimized netlist against its pre-optimization
//! input to compute the paper's Table I replacement statistics.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw `usize` index.
            ///
            /// Ids are `u32`; callers never exceed that (the largest
            /// paper-scale designs are ~1.4 M pins), so overflow is a
            /// debug-checked invariant rather than a release panic —
            /// release builds wrap, keeping `predict` panic-free.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(u32::try_from(index).is_ok(), "id overflow: {index}");
                Self(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a pin (a cell terminal or a top-level port).
    PinId,
    "p"
);
id_type!(
    /// Identifier of a standard-cell instance.
    CellId,
    "c"
);
id_type!(
    /// Identifier of a net (one driver pin, one or more sink pins).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a cell type (master) in a [`crate::CellLibrary`].
    CellTypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_index() {
        let id = PinId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(PinId(3).to_string(), "p3");
        assert_eq!(CellId(7).to_string(), "c7");
        assert_eq!(NetId(0).to_string(), "n0");
        assert_eq!(CellTypeId(9).to_string(), "t9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NetId(1));
        set.insert(NetId(1));
        set.insert(NetId(2));
        assert_eq!(set.len(), 2);
        assert!(PinId(1) < PinId(2));
    }

    // Overflow is a debug-checked invariant (release builds wrap), so the
    // panic is only observable with debug assertions on.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = PinId::from_index(usize::MAX);
    }
}
