//! The optimization driver: analyze, trace critical paths, transform.

use std::collections::HashSet;

use rtt_netlist::{
    CellId, CellLibrary, CellTypeId, EdgeKind, GateFn, NetId, Netlist, PinId, TimingGraph,
};
use rtt_place::{Placement, Point};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, StaReport, WireModel};

use crate::legal::LegalityViolation;
use crate::transforms::{
    bypass_inverter_pair, bypass_repeater, decompose_gate, insert_buffer, prune_dangling,
};
use crate::{DensityTracker, OptConfig, OptReport};

/// One transform decided during the planning phase of a pass.
#[derive(Clone, Debug)]
enum Action {
    Bypass(CellId),
    InvPair(CellId, CellId),
    Decompose(CellId, Vec<PinId>),
    Upsize(CellId, CellTypeId),
    Buffer(NetId, PinId, Point),
}

/// Runs the layout-aware timing optimizer in place.
///
/// Each pass: sign-off STA → trace the critical path of the worst
/// endpoints → plan legal transforms → apply → dead-logic sweep. Stops when
/// timing is met, no transform applies, or `max_passes` is reached.
///
/// Endpoint pins (ports and flip-flop data pins) are never removed.
pub fn optimize(
    netlist: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    config: &OptConfig,
) -> OptReport {
    let obs = rtt_obs::span("opt::optimize");
    let mut report = OptReport::default();
    let route_cfg = RouteConfig::default();

    let analyze = |nl: &Netlist, pl: &Placement| -> StaReport {
        let graph = TimingGraph::build(nl, library);
        let routing = route(nl, library, pl, &route_cfg);
        run_sta(nl, library, &graph, WireModel::Routed(&routing), config.clock_period_ps)
    };

    let mut sta = analyze(netlist, placement);
    report.wns_before = sta.wns;
    report.tns_before = sta.tns;

    // Every stage is greedy, but the final result is the best state seen
    // by (WNS, TNS) — including the untouched input — so optimization
    // never ends worse than it started. (Op counters report *attempted*
    // work, even if a late state is rolled back.)
    let mut best = BestState::new(netlist, placement, &sta);

    // Stage 1: design-wide DRV fixing (max-fanout and max-length
    // buffering). Commercial flows run this unconditionally; it is a
    // dominant source of netlist restructuring.
    if config.drv_fixing {
        drv_fix(netlist, placement, library, config, &mut report);
        sta = analyze(netlist, placement);
        best.offer(netlist, placement, &sta);
    }

    // Stage 2: cone-wide Boolean restructuring — decompose wide AND/OR
    // gates throughout the fanin cones of violating endpoints, ordered by
    // input arrival. This models the gate-decomposition/remapping step of
    // commercial optimizers and is the main source of *cell* replacement.
    if config.decomposition && sta.wns < 0.0 {
        restructure_cones(netlist, placement, library, config, &sta, &mut report);
        prune_dangling(netlist, library);
        sta = analyze(netlist, placement);
        best.offer(netlist, placement, &sta);
    }

    // Stage 3: slack-driven critical-path passes (sizing, buffering,
    // bypass, residual decomposition).
    for _ in 0..config.max_passes {
        if sta.wns >= 0.0 {
            break;
        }
        let graph = TimingGraph::build(netlist, library);
        let actions = plan_pass(netlist, placement, library, &graph, &sta, config, &mut report);
        if actions.is_empty() {
            break;
        }
        let applied = apply_actions(netlist, placement, library, actions, &mut report);
        prune_dangling(netlist, library);
        report.passes += 1;
        sta = analyze(netlist, placement);
        best.offer(netlist, placement, &sta);
        if applied == 0 {
            break;
        }
    }

    if best.is_better_than(&sta) {
        let (bn, bp) = best.into_state();
        *netlist = bn;
        *placement = bp;
        sta = analyze(netlist, placement);
    }

    // Stage 4: area/leakage recovery — downsize comfortably-slack cells.
    // Accepted only if WNS stays above min(previous, 0): recovery may eat
    // positive slack but must never (re)break timing.
    if config.area_recovery {
        let floor = sta.wns.min(0.0) - 1e-3;
        for margin in [3.0f32, 6.0] {
            let snapshot = netlist.clone();
            let ops = recover_area(netlist, library, config, &sta, margin);
            if ops == 0 {
                break;
            }
            let new_sta = analyze(netlist, placement);
            if new_sta.wns >= floor {
                report.downsize_ops += ops;
                sta = new_sta;
                break;
            }
            *netlist = snapshot; // too aggressive: retry conservatively
        }
    }

    report.wns_after = sta.wns;
    report.tns_after = sta.tns;
    obs.add("passes", report.passes as u64);
    obs.add("sizing_ops", report.sizing_ops as u64);
    obs.add("buffer_ops", (report.buffer_ops + report.drv_buffer_ops) as u64);
    obs.add("decompose_ops", report.decompose_ops as u64);
    obs.add("bypass_ops", report.bypass_ops as u64);
    obs.add("downsize_ops", report.downsize_ops as u64);
    debug_assert!(netlist.validate().is_ok(), "optimizer left an invalid netlist");
    report
}

/// One sweep of area recovery: downsizes every combinational cell whose
/// output slack comfortably covers the estimated delay increase (scaled by
/// `margin` to absorb accumulation along shared paths). Returns the number
/// of cells downsized.
fn recover_area(
    netlist: &mut Netlist,
    library: &CellLibrary,
    config: &OptConfig,
    sta: &StaReport,
    margin: f32,
) -> usize {
    let guard = 0.05 * config.clock_period_ps;
    let candidates: Vec<(CellId, CellTypeId, f32)> = netlist
        .cells()
        .filter(|(_, c)| !library.cell_type(c.type_id).is_sequential())
        .filter_map(|(cid, c)| {
            let down = library.downsize(c.type_id)?;
            let slack = sta.pin_slack(c.output)?;
            let ty = library.cell_type(c.type_id);
            let dty = library.cell_type(down);
            // Current load-dependent part of the cell delay, from any arc.
            let cell_delay = c.inputs.iter().find_map(|&i| sta.cell_edge_delay(i, c.output))?;
            let drive_part = (cell_delay - ty.intrinsic_ps).max(0.0);
            let delta = drive_part * (dty.drive_res_kohm / ty.drive_res_kohm - 1.0)
                + (dty.intrinsic_ps - ty.intrinsic_ps);
            (slack > margin * delta.max(0.0) + guard).then_some((cid, down, delta))
        })
        .collect();
    let mut ops = 0;
    for (cid, down, _) in candidates {
        if netlist.resize_cell(cid, down, library).is_ok() {
            ops += 1;
        }
    }
    ops
}

/// Builds the shared legality tracker: grid coarse enough that an average
/// bin holds many cells, and a limit that floats with the design's global
/// utilization so blocking happens precisely in *locally* hot bins — for
/// both sparse and dense designs.
fn make_density_tracker(
    netlist: &Netlist,
    placement: &Placement,
    library: &CellLibrary,
    config: &OptConfig,
) -> DensityTracker {
    let bins = ((netlist.num_cells() as f32 / 16.0).sqrt().floor() as usize)
        .clamp(2, config.legality_grid);
    let util_global =
        (netlist.total_cell_area(library) as f32 / placement.floorplan().die.area()).min(1.0);
    let limit = config.density_limit.max(util_global * 1.45);
    DensityTracker::new(netlist, library, placement, bins, limit)
}

/// Tracks the best (WNS, then TNS) netlist/placement state seen so far.
struct BestState {
    netlist: Netlist,
    placement: Placement,
    wns: f32,
    tns: f32,
}

impl BestState {
    fn new(netlist: &Netlist, placement: &Placement, sta: &StaReport) -> Self {
        Self { netlist: netlist.clone(), placement: placement.clone(), wns: sta.wns, tns: sta.tns }
    }

    fn offer(&mut self, netlist: &Netlist, placement: &Placement, sta: &StaReport) {
        if sta.wns > self.wns + 1e-6 || (sta.wns >= self.wns - 1e-6 && sta.tns > self.tns + 1e-6) {
            self.netlist = netlist.clone();
            self.placement = placement.clone();
            self.wns = sta.wns;
            self.tns = sta.tns;
        }
    }

    fn is_better_than(&self, sta: &StaReport) -> bool {
        self.wns > sta.wns + 1e-6 || (self.wns >= sta.wns - 1e-6 && self.tns > sta.tns + 1e-6)
    }

    fn into_state(self) -> (Netlist, Placement) {
        (self.netlist, self.placement)
    }
}

/// Decomposes every eligible wide AND/OR gate in the fanin cones of the
/// violating endpoints, latest-arrival input closest to the output.
fn restructure_cones(
    netlist: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    config: &OptConfig,
    sta: &StaReport,
    report: &mut OptReport,
) {
    let graph = TimingGraph::build(netlist, library);
    // Mark the union of fanin cones of violating endpoints.
    let mut in_cone = vec![false; graph.num_nodes()];
    let mut stack: Vec<u32> = graph
        .endpoints()
        .iter()
        .copied()
        .filter(|&v| sta.arrival(graph.pin_of(v)).is_some_and(|a| a > config.clock_period_ps))
        .collect();
    for &v in &stack {
        in_cone[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for e in graph.fanin(v) {
            if !in_cone[e.from as usize] {
                in_cone[e.from as usize] = true;
                stack.push(e.from);
            }
        }
    }

    let mut density = make_density_tracker(netlist, placement, library, config);

    let candidates: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| {
            matches!(
                library.cell_type(c.type_id).gate,
                GateFn::And3 | GateFn::And4 | GateFn::Or3 | GateFn::Or4
            )
        })
        .filter(|(_, c)| graph.node_of(c.output).is_some_and(|v| in_cone[v as usize]))
        .map(|(id, _)| id)
        .collect();

    for cell in candidates {
        let ty = library.cell_type(netlist.cell(cell).type_id);
        let two_input =
            if matches!(ty.gate, GateFn::And3 | GateFn::And4) { GateFn::And2 } else { GateFn::Or2 };
        let Some(ty2) = library
            .pick(two_input, ty.drive)
            .or_else(|| library.variants(two_input).first().copied())
        else {
            continue;
        };
        let extra =
            (library.cell_type(ty2).area_um2 * (ty.num_inputs() - 1) as f32 - ty.area_um2).max(0.0);
        let pos = placement.cell_pos(cell);
        match density.check(placement, pos, extra) {
            Ok(()) => {
                let mut order: Vec<(PinId, f32)> = netlist
                    .cell(cell)
                    .inputs
                    .iter()
                    .map(|&p| (p, sta.arrival(p).unwrap_or(0.0)))
                    .collect();
                order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
                let order: Vec<PinId> = order.into_iter().map(|(p, _)| p).collect();
                if decompose_gate(netlist, placement, library, cell, &order).is_ok() {
                    density.commit(pos, extra);
                    report.decompose_ops += 1;
                }
            }
            Err(LegalityViolation::Density) => report.blocked_by_density += 1,
            Err(LegalityViolation::Macro) => report.blocked_by_macro += 1,
        }
    }
}

/// Design-wide DRV fixing: split every net above the fanout limit, then
/// buffer every remaining net edge longer than the buffering threshold.
/// Both are layout-legality gated — the paper's coupling between whitespace
/// and optimizer efficacy applies here most of all.
fn drv_fix(
    netlist: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    config: &OptConfig,
    report: &mut OptReport,
) {
    let mut density = make_density_tracker(netlist, placement, library, config);

    // Max-fanout splitting.
    let nets: Vec<NetId> = netlist.nets().map(|(id, _)| id).collect();
    for net in &nets {
        if netlist.net(*net).sinks.len() <= config.max_fanout {
            continue;
        }
        let mut blocked_density = 0usize;
        let mut blocked_macro = 0usize;
        let floorplan = placement.floorplan().clone();
        let inserted = {
            let density_ref = &mut density;
            crate::transforms::split_high_fanout(
                netlist,
                placement,
                library,
                *net,
                config.max_fanout,
                |pos, area| match density_ref.check_floorplan(&floorplan, pos, area, 1.0) {
                    Ok(()) => {
                        density_ref.commit(pos, area);
                        true
                    }
                    Err(LegalityViolation::Density) => {
                        blocked_density += 1;
                        false
                    }
                    Err(LegalityViolation::Macro) => {
                        blocked_macro += 1;
                        false
                    }
                },
            )
        };
        report.blocked_by_density += blocked_density;
        report.blocked_by_macro += blocked_macro;
        if let Ok(bufs) = inserted {
            report.drv_buffer_ops += bufs.len();
        }
    }

    // Max-length buffering on every remaining long edge.
    let edges: Vec<(NetId, PinId)> =
        netlist.nets().flat_map(|(id, n)| n.sinks.iter().map(move |&s| (id, s))).collect();
    for (net, sink) in edges {
        if !netlist.net(net).is_alive() || !netlist.net(net).sinks.contains(&sink) {
            continue;
        }
        let driver = netlist.net(net).driver;
        let dp = placement.pin_position(netlist, driver);
        let sp = placement.pin_position(netlist, sink);
        if dp.manhattan(sp) <= config.buffer_length_um {
            continue;
        }
        let mid = Point::new((dp.x + sp.x) * 0.5, (dp.y + sp.y) * 0.5);
        let area = buffer_area(library);
        match density.find_legal_near(placement, mid, area) {
            Ok(pos) => {
                if insert_buffer(netlist, placement, library, net, sink, pos).is_ok() {
                    density.commit(pos, area);
                    report.drv_buffer_ops += 1;
                }
            }
            Err(LegalityViolation::Density) => report.blocked_by_density += 1,
            Err(LegalityViolation::Macro) => report.blocked_by_macro += 1,
        }
    }
}

/// Plans the transforms for one pass (read-only on the netlist).
fn plan_pass(
    netlist: &Netlist,
    placement: &Placement,
    library: &CellLibrary,
    graph: &TimingGraph,
    sta: &StaReport,
    config: &OptConfig,
    report: &mut OptReport,
) -> Vec<Action> {
    // Worst violating endpoints first.
    let mut crit: Vec<(u32, f32)> = graph
        .endpoints()
        .iter()
        .filter_map(|&v| {
            let a = sta.arrival(graph.pin_of(v))?;
            (a > config.clock_period_ps).then_some((v, a))
        })
        .collect();
    if crit.is_empty() {
        return Vec::new();
    }
    crit.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite arrivals"));
    let take = ((crit.len() as f32 * config.endpoint_fraction).ceil() as usize).max(1);

    let mut density = make_density_tracker(netlist, placement, library, config);
    let mut touched_cells: HashSet<CellId> = HashSet::new();
    let mut touched_sinks: HashSet<PinId> = HashSet::new();
    let mut actions = Vec::new();
    let buf_len = config.buffer_length_um;

    for &(ep, _) in crit.iter().take(take) {
        for edge in trace_critical_path(graph, sta, ep) {
            match edge.kind {
                EdgeKind::Cell => {
                    let cell = edge.cell.expect("cell edge");
                    if touched_cells.contains(&cell) {
                        continue;
                    }
                    if let Some(a) = plan_cell_action(
                        netlist,
                        placement,
                        library,
                        sta,
                        config,
                        &mut density,
                        report,
                        cell,
                        buf_len,
                    ) {
                        if let Action::InvPair(_, second) = a {
                            touched_cells.insert(second);
                        }
                        touched_cells.insert(cell);
                        actions.push(a);
                    }
                }
                EdgeKind::Net => {
                    if !config.buffering {
                        continue;
                    }
                    let net = edge.net.expect("net edge");
                    let driver = graph.pin_of(edge.from);
                    let sink = graph.pin_of(edge.to);
                    if touched_sinks.contains(&sink) {
                        continue;
                    }
                    let dp = placement.pin_position(netlist, driver);
                    let sp = placement.pin_position(netlist, sink);
                    if dp.manhattan(sp) <= buf_len {
                        continue;
                    }
                    let mid = Point::new((dp.x + sp.x) * 0.5, (dp.y + sp.y) * 0.5);
                    let area = buffer_area(library);
                    match density.find_legal_near(placement, mid, area) {
                        Ok(pos) => {
                            density.commit(pos, area);
                            touched_sinks.insert(sink);
                            actions.push(Action::Buffer(net, sink, pos));
                        }
                        Err(LegalityViolation::Density) => report.blocked_by_density += 1,
                        Err(LegalityViolation::Macro) => report.blocked_by_macro += 1,
                    }
                }
            }
        }
    }
    actions
}

/// Picks a transform for one cell on a critical path.
#[allow(clippy::too_many_arguments)]
fn plan_cell_action(
    netlist: &Netlist,
    placement: &Placement,
    library: &CellLibrary,
    sta: &StaReport,
    config: &OptConfig,
    density: &mut DensityTracker,
    report: &mut OptReport,
    cell: CellId,
    buf_len: f32,
) -> Option<Action> {
    let c = netlist.cell(cell);
    if !c.is_alive() {
        return None;
    }
    let ty = library.cell_type(c.type_id);
    let pos = placement.cell_pos(cell);

    // Repeater bypass: free speedup, no legality needed — but only for
    // buffers that are not doing useful wire splitting (short wires on both
    // sides), so the optimizer never undoes its own insertions.
    if config.bypass
        && ty.gate == GateFn::Buf
        && repeater_is_useless(netlist, placement, cell, buf_len)
    {
        return Some(Action::Bypass(cell));
    }
    if config.bypass && ty.gate == GateFn::Inv {
        if let Some(second) = inverter_partner(netlist, library, cell) {
            return Some(Action::InvPair(cell, second));
        }
    }

    // Timing-driven decomposition of wide AND/OR gates.
    if config.decomposition
        && matches!(ty.gate, GateFn::And3 | GateFn::And4 | GateFn::Or3 | GateFn::Or4)
    {
        let two_input =
            if matches!(ty.gate, GateFn::And3 | GateFn::And4) { GateFn::And2 } else { GateFn::Or2 };
        let ty2 = library
            .pick(two_input, ty.drive)
            .or_else(|| library.variants(two_input).first().copied())?;
        let new_area = library.cell_type(ty2).area_um2 * (ty.num_inputs() - 1) as f32;
        let extra = (new_area - ty.area_um2).max(0.0);
        match density.check(placement, pos, extra) {
            Ok(()) => {
                density.commit(pos, extra);
                let mut order: Vec<(PinId, f32)> =
                    c.inputs.iter().map(|&p| (p, sta.arrival(p).unwrap_or(0.0))).collect();
                order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
                return Some(Action::Decompose(cell, order.into_iter().map(|(p, _)| p).collect()));
            }
            Err(LegalityViolation::Density) => report.blocked_by_density += 1,
            Err(LegalityViolation::Macro) => report.blocked_by_macro += 1,
        }
    }

    // Structure-preserved sizing: in-place growth tolerates denser bins.
    if config.sizing {
        if let Some(up) = library.upsize(c.type_id) {
            let extra = library.cell_type(up).area_um2 - ty.area_um2;
            match density.check_scaled(placement, pos, extra, 1.4) {
                Ok(()) => {
                    density.commit(pos, extra);
                    return Some(Action::Upsize(cell, up));
                }
                Err(LegalityViolation::Density) => report.blocked_by_density += 1,
                Err(LegalityViolation::Macro) => report.blocked_by_macro += 1,
            }
        }
    }
    None
}

/// A buffer is useless (bypass candidate) when bridging it would not create
/// a wire longer than the buffering threshold.
fn repeater_is_useless(
    netlist: &Netlist,
    placement: &Placement,
    cell: CellId,
    buf_len: f32,
) -> bool {
    let c = netlist.cell(cell);
    let Some(in_net) = netlist.pin(c.inputs[0]).net else { return true };
    let driver = netlist.net(in_net).driver;
    let dp = placement.pin_position(netlist, driver);
    let Some(out_net) = netlist.pin(c.output).net else { return true };
    netlist
        .net(out_net)
        .sinks
        .iter()
        .all(|&s| dp.manhattan(placement.pin_position(netlist, s)) <= buf_len)
}

/// Finds the inverter `second` such that `first` drives only `second`'s
/// input, making the pair a logic identity.
fn inverter_partner(netlist: &Netlist, library: &CellLibrary, first: CellId) -> Option<CellId> {
    let out_net = netlist.pin(netlist.cell(first).output).net?;
    let sinks = &netlist.net(out_net).sinks;
    if sinks.len() != 1 {
        return None;
    }
    let second = netlist.pin(sinks[0]).cell?;
    let sty = library.cell_type(netlist.cell(second).type_id);
    (sty.gate == GateFn::Inv && second != first).then_some(second)
}

/// Applies planned actions, counting successes (stale plans fail silently).
fn apply_actions(
    netlist: &mut Netlist,
    placement: &mut Placement,
    library: &CellLibrary,
    actions: Vec<Action>,
    report: &mut OptReport,
) -> usize {
    let mut applied = 0;
    for action in actions {
        let ok = match action {
            Action::Bypass(c) => {
                bypass_repeater(netlist, library, c).map(|_| report.bypass_ops += 1).is_ok()
            }
            Action::InvPair(a, b) => {
                bypass_inverter_pair(netlist, library, a, b).map(|_| report.bypass_ops += 1).is_ok()
            }
            Action::Decompose(c, order) => decompose_gate(netlist, placement, library, c, &order)
                .map(|_| report.decompose_ops += 1)
                .is_ok(),
            Action::Upsize(c, ty) => {
                netlist.resize_cell(c, ty, library).map(|()| report.sizing_ops += 1).is_ok()
            }
            Action::Buffer(net, sink, pos) => {
                insert_buffer(netlist, placement, library, net, sink, pos)
                    .map(|_| report.buffer_ops += 1)
                    .is_ok()
            }
        };
        if ok {
            applied += 1;
        }
    }
    applied
}

fn buffer_area(library: &CellLibrary) -> f32 {
    library.pick(GateFn::Buf, 4).map(|t| library.cell_type(t).area_um2).unwrap_or(0.5)
}

/// Walks the critical path backwards from endpoint node `ep`: at each node,
/// follow the fanin edge whose `arrival + delay` dominates.
fn trace_critical_path(
    graph: &TimingGraph,
    sta: &StaReport,
    ep: u32,
) -> Vec<rtt_netlist::TimingEdge> {
    let mut path = Vec::new();
    let mut v = ep;
    loop {
        let mut best: Option<(f32, rtt_netlist::TimingEdge)> = None;
        for e in graph.fanin(v) {
            let from_pin = graph.pin_of(e.from);
            let to_pin = graph.pin_of(e.to);
            let delay = match e.kind {
                EdgeKind::Net => sta.net_edge_delay(from_pin, to_pin),
                EdgeKind::Cell => sta.cell_edge_delay(from_pin, to_pin),
            }
            .unwrap_or(0.0);
            let a = sta.arrival(from_pin).unwrap_or(0.0) + delay;
            if best.as_ref().is_none_or(|(ba, _)| a > *ba) {
                best = Some((a, *e));
            }
        }
        let Some((_, e)) = best else { break };
        path.push(e);
        v = e.from;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff_netlists;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_place::{place, PlaceConfig};

    fn tight_period(nl: &Netlist, pl: &Placement, lib: &CellLibrary, frac: f32) -> f32 {
        let g = TimingGraph::build(nl, lib);
        let rt = route(nl, lib, pl, &RouteConfig::default());
        let rep = run_sta(nl, lib, &g, WireModel::Routed(&rt), 1.0);
        rep.max_arrival() * frac
    }

    #[test]
    fn optimizer_improves_wns_on_adder() {
        let lib = CellLibrary::asap7_like();
        let mut nl = ripple_carry_adder(16, &lib);
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let period = tight_period(&nl, &pl, &lib, 0.6);
        let cfg = OptConfig { clock_period_ps: period, ..OptConfig::default() };
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        assert!(rep.wns_before < 0.0, "period should start violated");
        assert!(rep.wns_after > rep.wns_before, "wns {} -> {}", rep.wns_before, rep.wns_after);
        assert!(rep.total_ops() > 0);
        nl.validate().unwrap();
    }

    #[test]
    fn optimizer_restructures_random_designs() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("o", 500, 21).generate(&lib);
        let before = d.netlist.clone();
        let mut nl = d.netlist;
        let mut pl = place(&nl, &lib, 1, &PlaceConfig::default());
        let period = tight_period(&nl, &pl, &lib, 0.55);
        let cfg = OptConfig { clock_period_ps: period, ..OptConfig::default() };
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        assert!(rep.destructive_ops() > 0, "no restructuring happened: {rep:?}");
        let diff = diff_netlists(&before, &nl, &lib);
        assert!(diff.replaced_net_edges > 0);
        assert!(diff.net_replaced_fraction() < 1.0);
    }

    #[test]
    fn endpoints_are_never_replaced() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("e", 400, 33).generate(&lib);
        let before = d.netlist.clone();
        let graph_before = TimingGraph::build(&before, &lib);
        let endpoint_pins: Vec<PinId> =
            graph_before.endpoints().iter().map(|&v| graph_before.pin_of(v)).collect();

        let mut nl = d.netlist;
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let period = tight_period(&nl, &pl, &lib, 0.5);
        let cfg = OptConfig { clock_period_ps: period, ..OptConfig::default() };
        optimize(&mut nl, &mut pl, &lib, &cfg);

        for p in endpoint_pins {
            assert!(nl.pin(p).is_alive(), "endpoint pin {p} was removed");
        }
    }

    #[test]
    fn sizing_only_mode_preserves_structure() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("s", 300, 5).generate(&lib);
        let before = d.netlist.clone();
        let mut nl = d.netlist;
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let period = tight_period(&nl, &pl, &lib, 0.6);
        let cfg = OptConfig::sizing_only(period);
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        assert_eq!(rep.destructive_ops(), 0);
        let diff = diff_netlists(&before, &nl, &lib);
        assert_eq!(diff.replaced_net_edges, 0);
        assert_eq!(diff.replaced_cell_edges, 0);
    }

    #[test]
    fn met_timing_means_no_work() {
        let lib = CellLibrary::asap7_like();
        let mut nl = ripple_carry_adder(4, &lib);
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let cfg = OptConfig { clock_period_ps: 1e6, ..OptConfig::default() };
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        assert_eq!(rep.total_ops(), 0);
        assert_eq!(rep.passes, 0);
        assert!(rep.wns_before > 0.0);
    }

    #[test]
    fn area_recovery_downsizes_slack_cells_without_breaking_timing() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("ar", 500, 91).generate(&lib);
        let mut nl = d.netlist;
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        // Generous period: everything has slack, so the only work left for
        // the optimizer is recovery.
        let period = tight_period(&nl, &pl, &lib, 2.0);
        let cfg = OptConfig { clock_period_ps: period, ..OptConfig::default() };
        let area_before = nl.total_cell_area(&lib);
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        assert!(rep.downsize_ops > 0, "no recovery happened: {rep:?}");
        assert!(nl.total_cell_area(&lib) < area_before, "area must shrink");
        assert!(rep.wns_after >= -1e-2, "recovery must not break timing: {rep:?}");
    }

    #[test]
    fn drv_fixing_splits_high_fanout_nets() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("fo", 600, 95).generate(&lib);
        let max_fanout_before = d.netlist.nets().map(|(_, n)| n.sinks.len()).max().unwrap();
        let mut nl = d.netlist;
        let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let period = tight_period(&nl, &pl, &lib, 0.6);
        let cfg = OptConfig { clock_period_ps: period, max_fanout: 6, ..OptConfig::default() };
        let rep = optimize(&mut nl, &mut pl, &lib, &cfg);
        if max_fanout_before > 6 {
            assert!(rep.drv_buffer_ops > 0, "no fanout fixing: {rep:?}");
        }
    }

    #[test]
    fn denser_placement_blocks_more_transforms() {
        let lib = CellLibrary::asap7_like();
        let run = |util: f32| -> OptReport {
            let d = GenParams::new("d", 600, 77).generate(&lib);
            let mut nl = d.netlist;
            let pcfg = PlaceConfig { utilization: util, ..PlaceConfig::default() };
            let mut pl = place(&nl, &lib, 0, &pcfg);
            let period = tight_period(&nl, &pl, &lib, 0.55);
            let cfg =
                OptConfig { clock_period_ps: period, density_limit: 0.75, ..OptConfig::default() };
            optimize(&mut nl, &mut pl, &lib, &cfg)
        };
        let sparse = run(0.35);
        let dense = run(0.72);
        assert!(
            dense.blocked_by_density > sparse.blocked_by_density,
            "dense {} vs sparse {}",
            dense.blocked_by_density,
            sparse.blocked_by_density
        );
    }
}
