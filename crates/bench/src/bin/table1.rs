//! Regenerates **Table I**: dataset statistics and the impact of timing
//! optimization on sign-off metrics.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use rtt_bench::Cli;
use rtt_flow::tables::{render_table1, table1, Table1Row};
use rtt_flow::{Dataset, FlowConfig};

fn average(rows: &[&Table1Row], label: &str) -> Table1Row {
    let n = rows.len().max(1);
    let nf = n as f64;
    Table1Row {
        name: label.to_owned(),
        train: label == "avg train",
        pins: rows.iter().map(|r| r.pins).sum::<usize>() / n,
        endpoints: rows.iter().map(|r| r.endpoints).sum::<usize>() / n,
        net_edges: rows.iter().map(|r| r.net_edges).sum::<usize>() / n,
        cell_edges: rows.iter().map(|r| r.cell_edges).sum::<usize>() / n,
        d_wns: rows.iter().map(|r| r.d_wns).sum::<f64>() / nf,
        d_tns: rows.iter().map(|r| r.d_tns).sum::<f64>() / nf,
        net_replaced: rows.iter().map(|r| r.net_replaced).sum::<f64>() / nf,
        net_d_delay: rows.iter().map(|r| r.net_d_delay).sum::<f64>() / nf,
        cell_replaced: rows.iter().map(|r| r.cell_replaced).sum::<f64>() / nf,
        cell_d_delay: rows.iter().map(|r| r.cell_d_delay).sum::<f64>() / nf,
    }
}

fn main() {
    let cli = Cli::parse();
    eprintln!("[table1] generating dataset at scale {} ...", cli.scale);
    let dataset = Dataset::generate(&FlowConfig { scale: cli.scale, ..FlowConfig::default() });
    let mut rows = table1(&dataset);
    let train: Vec<&Table1Row> = rows.iter().filter(|r| r.train).collect();
    let test: Vec<&Table1Row> = rows.iter().filter(|r| !r.train).collect();
    let avg_train = average(&train, "avg train");
    let avg_test = average(&test, "avg test");
    rows.push(avg_train);
    rows.push(avg_test);

    let mut report = format!("# Table I (scale: {})\n\n", cli.scale);
    report.push_str(&render_table1(&rows));
    cli.write_report("table1", &report);
    cli.finish_trace();
}
