//! The two-flow dataset generator (paper Section VI-A, simulated).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use rtt_circgen::{all_presets, GenParams, Scale, TRAIN_DESIGNS};
use rtt_netlist::{CellLibrary, TimingGraph};
use rtt_opt::{diff_netlists, optimize, OptConfig};
use rtt_place::{place, PlaceConfig};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, WireModel};

use crate::{DesignData, FlowTimings};

/// Configuration of the dataset-generation flow.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowConfig {
    /// Design scale.
    pub scale: Scale,
    /// Clock period as a fraction of the unoptimized critical path (lower →
    /// more violations → more aggressive restructuring).
    pub period_fraction: f32,
    /// Utilization range sampled per design; varying density is what gives
    /// designs different optimizer headroom (the CNN's signal).
    pub utilization: (f32, f32),
    /// Master seed.
    pub seed: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self { scale: Scale::Small, period_fraction: 0.6, utilization: (0.40, 0.72), seed: 0xF10 }
    }
}

/// Runs both flows for one design.
pub fn run_design_flow(
    params: &GenParams,
    library: &CellLibrary,
    config: &FlowConfig,
) -> DesignData {
    // Root span: design flows fan out across worker threads; detaching from
    // the ambient span stack keeps the recorded tree thread-count-invariant.
    let _flow = rtt_obs::root_span("flow::design_flow");
    let mut rng = StdRng::seed_from_u64(config.seed ^ params.seed);
    let generated = params.generate(library);
    let input_netlist = generated.netlist;

    let utilization = rng.gen_range(config.utilization.0..config.utilization.1);
    let place_cfg = PlaceConfig { utilization, seed: rng.gen(), ..PlaceConfig::default() };
    let input_placement = place(&input_netlist, library, generated.num_macros, &place_cfg);
    let input_graph = TimingGraph::build(&input_netlist, library);
    let route_cfg = RouteConfig::default();

    // Flow A: no optimization (Table I reference, and the source of the
    // clock period).
    let rt_a = route(&input_netlist, library, &input_placement, &route_cfg);
    let sta_probe = run_sta(&input_netlist, library, &input_graph, WireModel::Routed(&rt_a), 1.0);
    let clock_period_ps = sta_probe.max_arrival() * config.period_fraction;
    let no_opt =
        run_sta(&input_netlist, library, &input_graph, WireModel::Routed(&rt_a), clock_period_ps);

    // Flow B: optimize → route → sign-off STA, timed per stage.
    let mut opt_netlist = input_netlist.clone();
    let mut opt_placement = input_placement.clone();
    let opt_cfg = OptConfig { clock_period_ps, ..OptConfig::default() };
    // rtt-lint: allow(D002, reason = "stage wall-clock is the measured quantity (Table III)")
    let t0 = Instant::now();
    let opt_report = optimize(&mut opt_netlist, &mut opt_placement, library, &opt_cfg);
    let opt_s = t0.elapsed().as_secs_f64();

    // rtt-lint: allow(D002, reason = "stage wall-clock is the measured quantity (Table III)")
    let t1 = Instant::now();
    let rt_b = route(&opt_netlist, library, &opt_placement, &route_cfg);
    let route_s = t1.elapsed().as_secs_f64();

    let opt_graph = TimingGraph::build(&opt_netlist, library);
    // rtt-lint: allow(D002, reason = "stage wall-clock is the measured quantity (Table III)")
    let t2 = Instant::now();
    let signoff =
        run_sta(&opt_netlist, library, &opt_graph, WireModel::Routed(&rt_b), clock_period_ps);
    let sta_s = t2.elapsed().as_secs_f64();

    let diff = diff_netlists(&input_netlist, &opt_netlist, library);

    DesignData {
        name: params.name.clone(),
        input_netlist,
        input_placement,
        input_graph,
        opt_netlist,
        opt_placement,
        diff,
        opt_report,
        signoff,
        no_opt,
        clock_period_ps,
        timings: FlowTimings { opt_s, route_s, sta_s },
    }
}

/// The full ten-design dataset with the paper's train/test split.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The shared cell library.
    pub library: CellLibrary,
    /// All designs, train designs first (paper order).
    pub designs: Vec<DesignData>,
}

impl Dataset {
    /// Generates all ten designs at the configured scale.
    ///
    /// Designs run in parallel. Each design's flow seeds its own RNG from
    /// `config.seed ^ params.seed` and shares no other state, so the result
    /// is byte-identical to a serial run regardless of thread count.
    pub fn generate(config: &FlowConfig) -> Self {
        let obs = rtt_obs::span("flow::dataset_generate");
        let library = CellLibrary::asap7_like();
        let designs: Vec<DesignData> = all_presets(config.scale)
            .par_iter()
            .map(|p| run_design_flow(p, &library, config))
            .collect();
        obs.add("designs", designs.len() as u64);
        Self { library, designs }
    }

    /// Generates a reduced dataset (first `n_train` train designs + the
    /// `n_test` *largest* test designs) — used by integration tests.
    /// Picking the largest test designs keeps them meaningful at
    /// [`Scale::Tiny`], where the small presets degenerate to a few gates.
    pub fn generate_subset(config: &FlowConfig, n_train: usize, n_test: usize) -> Self {
        let library = CellLibrary::asap7_like();
        let presets = all_presets(config.scale);
        let mut test: Vec<&GenParams> = presets[5..].iter().collect();
        test.sort_by_key(|p| std::cmp::Reverse(p.comb_cells));
        let chosen: Vec<&GenParams> =
            presets[..n_train.min(5)].iter().chain(test.into_iter().take(n_test.min(5))).collect();
        let designs = chosen.par_iter().map(|p| run_design_flow(p, &library, config)).collect();
        Self { library, designs }
    }

    /// Training designs (the paper's five).
    pub fn train_designs(&self) -> Vec<&DesignData> {
        self.designs.iter().filter(|d| TRAIN_DESIGNS.contains(&d.name.as_str())).collect()
    }

    /// Held-out test designs.
    pub fn test_designs(&self) -> Vec<&DesignData> {
        self.designs.iter().filter(|d| !TRAIN_DESIGNS.contains(&d.name.as_str())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_flow() -> DesignData {
        let lib = CellLibrary::asap7_like();
        let params = rtt_circgen::preset("chacha", Scale::Tiny).unwrap();
        run_design_flow(&params, &lib, &FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() })
    }

    #[test]
    fn flow_produces_consistent_design_data() {
        let d = tiny_flow();
        d.input_netlist.validate().unwrap();
        d.opt_netlist.validate().unwrap();
        assert_eq!(d.endpoint_targets().len(), d.input_graph.endpoints().len());
        assert!(d.clock_period_ps > 0.0);
        // Optimization must not hurt sign-off timing.
        assert!(d.signoff.wns >= d.no_opt.wns - 1e-3);
    }

    #[test]
    fn optimization_restructures_at_tiny_scale() {
        let d = tiny_flow();
        assert!(
            d.diff.replaced_net_edges + d.diff.replaced_cell_edges > 0,
            "flow produced no restructuring; Table I would be empty"
        );
        assert!(d.diff.net_replaced_fraction() < 0.95);
    }

    #[test]
    fn survivor_label_maps_are_consistent() {
        let d = tiny_flow();
        let nets = d.surviving_net_delays();
        let cells = d.surviving_cell_delays();
        assert_eq!(nets.len(), d.diff.surviving_net_edges().len());
        assert!(!cells.is_empty());
        let arrivals = d.surviving_arrivals();
        // Every endpoint survives and has an arrival.
        for &v in d.input_graph.endpoints() {
            assert!(arrivals.contains_key(&d.input_graph.pin_of(v)));
        }
    }

    #[test]
    fn dataset_subset_split_matches_names() {
        let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
        let ds = Dataset::generate_subset(&cfg, 1, 1);
        assert_eq!(ds.designs.len(), 2);
        assert_eq!(ds.train_designs().len(), 1);
        assert_eq!(ds.test_designs().len(), 1);
        assert_eq!(ds.train_designs()[0].name, "jpeg");
        // The largest test design is selected so tiny-scale tests stay
        // meaningful.
        assert_eq!(ds.test_designs()[0].name, "hwacha");
    }

    #[test]
    fn flow_is_deterministic() {
        let a = tiny_flow();
        let b = tiny_flow();
        assert_eq!(a.clock_period_ps, b.clock_period_ps);
        assert_eq!(a.diff.replaced_net_edges, b.diff.replaced_net_edges);
        assert_eq!(a.signoff.wns, b.signoff.wns);
    }
}
