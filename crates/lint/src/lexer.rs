//! Hand-rolled Rust lexer.
//!
//! The offline build environment cannot pull `syn`, so rule matching runs
//! over a flat token stream produced here. The lexer understands everything
//! that would otherwise corrupt naive text matching: line and (nested) block
//! comments, string literals with escapes, raw strings with arbitrary `#`
//! fences, byte strings, char literals vs lifetimes, raw identifiers, and
//! numeric literals with suffixes. It does not need to be a full Rust lexer
//! — only to never misclassify those constructs — and it must never panic,
//! whatever bytes it is fed.

/// Classification of one lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Integer literal, any radix, with optional suffix.
    Int,
    /// Float literal (`1.0`, `1e3`, `2f32`), with optional suffix.
    Float,
    /// String, raw-string, byte-string, or byte literal.
    Str,
    /// Character literal.
    Char,
    /// Punctuation; multi-char operators the rules care about stay fused
    /// (`==`, `!=`, `::`, `->`, …).
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Verbatim token text.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Token {
    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment with its position; kept out of the token stream so rules match
/// over code only, but available for suppressions and `// SAFETY:` checks.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
    /// `true` when a code token precedes the comment on its line.
    pub trailing: bool,
}

/// Output of [`lex`]: tokens plus the comment side-channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Two-char operators kept fused so rules can match `==` / `!=` / `::`
/// directly. Longer operators (`..=`, `<<=`) lex as two tokens, which no
/// rule currently cares about.
const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never panics; bytes that fit no
/// rule become single-char [`TokenKind::Punct`] tokens.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor { chars: source.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();
    let mut last_code_line = 0u32;

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line, trailing: last_code_line == line });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            let mut depth = 1u32;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                    text.push_str("/*");
                    continue;
                }
                if ch == '*' && cur.peek(1) == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                    continue;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line, trailing: last_code_line == line });
            continue;
        }

        let token = lex_token(&mut cur, c, line, col);
        last_code_line = token.line;
        out.tokens.push(token);
    }
    out
}

fn lex_token(cur: &mut Cursor, c: char, line: u32, col: u32) -> Token {
    // Raw strings / raw identifiers / byte strings, before plain idents.
    if (c == 'r' || c == 'b') && starts_special_literal(cur) {
        return lex_special_literal(cur, line, col);
    }
    if is_ident_start(c) {
        let mut text = String::new();
        while let Some(ch) = cur.peek(0) {
            if is_ident_continue(ch) {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokenKind::Ident, text, line, col };
    }
    if c == '"' {
        return lex_string(cur, line, col);
    }
    if c == '\'' {
        return lex_quote(cur, line, col);
    }
    if c.is_ascii_digit() {
        return lex_number(cur, line, col);
    }
    // Punctuation: try fused two-char operators first.
    if let Some(next) = cur.peek(1) {
        let mut two = String::new();
        two.push(c);
        two.push(next);
        if TWO_CHAR_OPS.contains(&two.as_str()) {
            cur.bump();
            cur.bump();
            return Token { kind: TokenKind::Punct, text: two, line, col };
        }
    }
    cur.bump();
    Token { kind: TokenKind::Punct, text: c.to_string(), line, col }
}

/// `true` when the cursor sits on `r"`, `r#"`, `r#ident`, `b"`, `b'`,
/// `br"`, or `br#"` — anything needing special literal handling.
fn starts_special_literal(cur: &Cursor) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"' | '#')) => true,
        (Some('b'), Some('"' | '\'' | 'r')) => {
            // `br` only counts when followed by a raw-string opener, so the
            // identifier `broken` does not trip this path.
            if cur.peek(1) == Some('r') {
                matches!(cur.peek(2), Some('"' | '#'))
            } else {
                true
            }
        }
        _ => false,
    }
}

fn lex_special_literal(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    // Consume the `r` / `b` / `br` prefix.
    while let Some(ch) = cur.peek(0) {
        if ch == 'r' || ch == 'b' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    // Raw identifier: `r#name` (not `r#"`).
    if text == "r"
        && cur.peek(0) == Some('#')
        && cur.peek(1).is_some_and(|c| is_ident_start(c) && c != '"')
    {
        cur.bump(); // '#'
        let mut ident = String::new();
        while let Some(ch) = cur.peek(0) {
            if is_ident_continue(ch) {
                ident.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokenKind::Ident, text: ident, line, col };
    }
    // Byte char: `b'x'`.
    if text == "b" && cur.peek(0) == Some('\'') {
        let t = lex_quote(cur, line, col);
        return Token { kind: TokenKind::Char, text: format!("b{}", t.text), line, col };
    }
    // Raw string fence: count `#`s, then `"` … `"` + same `#`s.
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
        if hashes == 0 && !text.contains('r') {
            // Plain byte string `b"…"`: escapes apply.
            lex_string_body(cur, &mut text);
        } else if hashes == 0 {
            // `r"…"`: ends at the first quote, no escapes.
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '"' {
                    break;
                }
            }
        } else {
            // `r#"…"#`-style: ends at `"` followed by `hashes` `#`s.
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
                    for _ in 0..hashes {
                        if let Some(h) = cur.bump() {
                            text.push(h);
                        }
                    }
                    break;
                }
            }
        }
        return Token { kind: TokenKind::Str, text, line, col };
    }
    // `r#` / `b` followed by nothing usable: emit what we have as an ident.
    Token { kind: TokenKind::Ident, text, line, col }
}

fn lex_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    lex_string_body(cur, &mut text);
    Token { kind: TokenKind::Str, text, line, col }
}

fn lex_string_body(cur: &mut Cursor, text: &mut String) {
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '"' {
            break;
        }
    }
}

/// Lexes a `'`-introduced token: lifetime, loop label, or char literal.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    // Lifetime / label: `'ident` not closed by a quote right after.
    if cur.peek(0).is_some_and(is_ident_start) && cur.peek(1) != Some('\'') {
        while let Some(ch) = cur.peek(0) {
            if is_ident_continue(ch) {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind: TokenKind::Lifetime, text, line, col };
    }
    // Char literal: consume escape or single char, then the closing quote.
    match cur.bump() {
        Some('\\') => {
            text.push('\\');
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' && cur.peek(0) == Some('{') {
                    while let Some(ch) = cur.bump() {
                        text.push(ch);
                        if ch == '}' {
                            break;
                        }
                    }
                }
            }
        }
        Some(ch) => text.push(ch),
        None => return Token { kind: TokenKind::Char, text, line, col },
    }
    if cur.peek(0) == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    Token { kind: TokenKind::Char, text, line, col }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut kind = TokenKind::Int;
    // Radix prefixes never produce floats.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')) {
        for _ in 0..2 {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        return Token { kind, text, line, col };
    }
    while let Some(ch) = cur.peek(0) {
        if ch.is_ascii_digit() || ch == '_' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: a `.` joins the number only when a digit follows, so
    // ranges (`0..n`), field access (`x.0`), and method calls (`1.max(2)`)
    // stay separate tokens.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        kind = TokenKind::Float;
        text.push('.');
        cur.bump();
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokenKind::Float;
            for _ in 0..=usize::from(sign) {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, `usize`, …).
    let mut suffix = String::new();
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            suffix.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        kind = TokenKind::Float;
    }
    text.push_str(&suffix);
    Token { kind, text, line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = a == b;");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, "==".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let t = kinds("1 1.5 1e3 2f32 0x1F 0..n 7usize 1.max(2)");
        assert_eq!(t[0].0, TokenKind::Int);
        assert_eq!(t[1].0, TokenKind::Float);
        assert_eq!(t[2].0, TokenKind::Float);
        assert_eq!(t[3].0, TokenKind::Float);
        assert_eq!(t[4].0, TokenKind::Int);
        // `0..n`
        assert_eq!(t[5], (TokenKind::Int, "0".into()));
        assert_eq!(t[6], (TokenKind::Punct, "..".into()));
        // `1.max(2)` keeps the int separate from the method call
        assert_eq!(t[8], (TokenKind::Int, "7usize".into()));
        assert_eq!(t[9], (TokenKind::Int, "1".into()));
        assert_eq!(t[10], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "a == 0.0 // not a comment";"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!t.iter().any(|(_, s)| s == "=="));
        let l = lex(r#""x" // real comment"#);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex(r###"let s = r#"inner "quote" stays"# ; done"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still */ b");
        assert_eq!(l.tokens.len(), 2);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn trailing_flag_and_lines() {
        let l = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
        let b = l.tokens.iter().find(|t| t.is_ident("b"));
        assert_eq!(b.map(|t| t.line), Some(3));
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("let r#fn = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "fn"));
    }

    #[test]
    fn pathological_inputs_do_not_panic() {
        for src in ["r#", "b", "'", "'\\", "\"unterminated", "r###\"open", "/* open", "0x", "1e"] {
            let _ = lex(src);
        }
    }
}
