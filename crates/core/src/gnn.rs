//! The customized GNN of Section IV: levelized message passing with
//! distinct aggregators for cell edges and net edges (Equation 3).

use rand::Rng;

use rtt_features::{NodeFeatures, CELL_FEATURE_DIM, NET_FEATURE_DIM};
use rtt_netlist::{EdgeKind, NodeKind, PinId, TimingGraph};
use rtt_nn::{ops, Exec, Mlp, ParamStore, Tensor};

use crate::{Aggregation, ModelConfig};

/// Readout scale for residual embeddings: they accumulate over up to
/// hundreds of topological levels, so readout heads should rescale them
/// into an O(1) regime.
pub const READOUT_SCALE: f32 = 0.05;

/// A static execution plan for one design: who sits at which topological
/// level, where each node's messages come from, and how to reassemble the
/// per-level matrices. Building it once per design and reusing it across
/// epochs is what makes CPU training viable.
#[derive(Clone, Debug)]
pub struct GnnSchedule {
    levels: Vec<LevelPlan>,
    endpoint_locs: Vec<(u32, u32)>,
    node_loc: Vec<(u32, u32)>,
    /// Flat, SIMD-friendly twin of `levels`, derived once at build time
    /// and consumed by [`NetlistGnn::forward_flat`].
    plan: GnnPlan,
    /// Pin behind each flat row — the stable key the incremental path
    /// uses to match rows across a netlist transform (pin ids survive
    /// tombstoning edits, flat row numbers do not).
    pin_of_row: Vec<PinId>,
}

/// The batched execution plan over one flat `[num_nodes, embed_dim]`
/// embedding matrix: every per-level `(level, row)` pair of the
/// [`LevelPlan`]s is pre-resolved to a single flat row index, segment ids
/// become CSR run offsets, and the `[cells, nets, sources] → level order`
/// permutation becomes per-group scatter destinations. All of it is
/// index arithmetic done once per design, so the per-pass inner loops are
/// straight-line gathers, contiguous reductions, and row memcpys.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct GnnPlan {
    pub(crate) levels: Vec<FlatLevel>,
    /// Flat row of each endpoint, aligned with `TimingGraph::endpoints()`.
    pub(crate) endpoint_rows: Vec<u32>,
    /// Total rows of the flat matrix (= number of graph nodes).
    pub(crate) total_rows: usize,
    /// Rows of the concatenated static cell-feature matrix that belong to
    /// cell groups; source-group rows follow (see
    /// [`LevelFeats::cell_src_flat`]).
    pub(crate) total_cell_rows: usize,
    /// First flat row of each level (`len = levels + 1`): level `l` owns
    /// rows `level_off[l]..level_off[l + 1]`.
    pub(crate) level_off: Vec<u32>,
}

#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct FlatLevel {
    pub(crate) n_cells: usize,
    pub(crate) n_nets: usize,
    pub(crate) n_srcs: usize,
    /// Flat source row of each gathered cell fanin message.
    pub(crate) cell_gather: Vec<u32>,
    /// CSR offsets into `cell_gather`: cell `i` reduces messages
    /// `cell_seg_off[i]..cell_seg_off[i + 1]` (`len = n_cells + 1`).
    pub(crate) cell_seg_off: Vec<u32>,
    /// `1 / max(fanin, 1)` per cell (mean aggregation), precomputed with
    /// the exact arithmetic of the per-pass Exec path.
    pub(crate) cell_inv_fanin: Vec<f32>,
    /// Flat source row of each net node's driver message.
    pub(crate) net_gather: Vec<u32>,
    /// Flat destination row of each cell / net / source group row.
    pub(crate) cell_dst: Vec<u32>,
    pub(crate) net_dst: Vec<u32>,
    pub(crate) src_dst: Vec<u32>,
    /// Row offsets of this level's groups inside the concatenated static
    /// feature matrices of [`LevelFeats`].
    pub(crate) cell_feat_off: usize,
    pub(crate) net_feat_off: usize,
    pub(crate) src_feat_off: usize,
}

impl GnnPlan {
    fn build(levels: &[LevelPlan], endpoint_locs: &[(u32, u32)]) -> Self {
        let mut level_off = Vec::with_capacity(levels.len() + 1);
        let mut off = 0u32;
        for p in levels {
            level_off.push(off);
            off += (p.cell_nodes.len() + p.net_nodes.len() + p.source_nodes.len()) as u32;
        }
        level_off.push(off);
        let flat = |&(l, r): &(u32, u32)| level_off[l as usize] + r;
        let total_cell_rows: usize = levels.iter().map(|p| p.cell_nodes.len()).sum();
        let (mut cell_off, mut net_off) = (0usize, 0usize);
        let mut src_off = total_cell_rows;
        let mut flat_levels = Vec::with_capacity(levels.len());
        for (l, p) in levels.iter().enumerate() {
            let (nc, nn, ns) = (p.cell_nodes.len(), p.net_nodes.len(), p.source_nodes.len());
            // `cell_seg` ascends by construction, so per-segment counts +
            // prefix sum reproduce its runs exactly.
            let mut cell_seg_off = vec![0u32; nc + 1];
            for &s in &p.cell_seg {
                cell_seg_off[s as usize + 1] += 1;
            }
            for i in 1..cell_seg_off.len() {
                cell_seg_off[i] += cell_seg_off[i - 1];
            }
            // Scatter destinations: invert the concat permutation, so
            // writing group rows straight to their level-order positions
            // replaces the per-level concat + gather of the Exec path.
            let base = level_off[l];
            let mut inv = vec![0u32; p.perm.len()];
            for (i, &c) in p.perm.iter().enumerate() {
                inv[c as usize] = i as u32;
            }
            flat_levels.push(FlatLevel {
                n_cells: nc,
                n_nets: nn,
                n_srcs: ns,
                cell_gather: p.cell_gather.iter().map(flat).collect(),
                cell_seg_off,
                cell_inv_fanin: p.cell_fanin.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                net_gather: p.net_gather.iter().map(flat).collect(),
                cell_dst: (0..nc).map(|c| base + inv[c]).collect(),
                net_dst: (nc..nc + nn).map(|c| base + inv[c]).collect(),
                src_dst: (nc + nn..nc + nn + ns).map(|c| base + inv[c]).collect(),
                cell_feat_off: cell_off,
                net_feat_off: net_off,
                src_feat_off: src_off,
            });
            cell_off += nc;
            net_off += nn;
            src_off += ns;
        }
        // Debug/env-gated plan validation (RTT_SANITIZE=1): every gather
        // and scatter index must address a real flat row, and segment
        // offsets must tile the gathered messages exactly.
        if rtt_nn::sanitize::enabled() {
            let rows = off as usize;
            for fl in &flat_levels {
                rtt_nn::sanitize::check_csr(
                    "gnn_plan.cell_seg",
                    &fl.cell_seg_off,
                    &fl.cell_gather,
                    rows,
                );
                rtt_nn::sanitize::check_rows("gnn_plan.net_gather", &fl.net_gather, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.cell_dst", &fl.cell_dst, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.net_dst", &fl.net_dst, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.src_dst", &fl.src_dst, rows);
            }
        }
        Self {
            endpoint_rows: endpoint_locs.iter().map(flat).collect(),
            total_rows: off as usize,
            total_cell_rows,
            levels: flat_levels,
            level_off,
        }
    }
}

#[derive(Clone, Debug, Default, PartialEq)]
struct LevelPlan {
    cell_nodes: Vec<u32>,
    net_nodes: Vec<u32>,
    source_nodes: Vec<u32>,
    /// `(level, row)` of each fanin message of the cell group, flattened.
    cell_gather: Vec<(u32, u32)>,
    /// Segment id (index into `cell_nodes`) of each gathered message.
    cell_seg: Vec<u32>,
    /// Fanin count per cell node (for mean aggregation).
    cell_fanin: Vec<f32>,
    /// `(level, row)` of the single driver message of each net node.
    net_gather: Vec<(u32, u32)>,
    /// Restores level order from the `[cells, nets, sources]` concat.
    perm: Vec<u32>,
}

impl GnnSchedule {
    /// Plans the levelized propagation for `graph`.
    pub fn build(graph: &TimingGraph) -> Self {
        let mut node_loc = vec![(0u32, 0u32); graph.num_nodes()];
        let mut levels = Vec::with_capacity(graph.max_level() as usize + 1);

        for l in 0..=graph.max_level() {
            let nodes = graph.nodes_at_level(l);
            let mut plan = LevelPlan::default();
            // Partition the level into groups.
            for &v in nodes {
                match graph.node_kind(v) {
                    NodeKind::CellOut => plan.cell_nodes.push(v),
                    NodeKind::NetSink => plan.net_nodes.push(v),
                    NodeKind::Source => plan.source_nodes.push(v),
                }
            }
            // Record each node's (level, row-in-level-order) location.
            for (row, &v) in nodes.iter().enumerate() {
                node_loc[v as usize] = (l, row as u32);
            }
            // Message gathers reference already-computed levels.
            for (seg, &v) in plan.cell_nodes.iter().enumerate() {
                let mut fanin = 0u32;
                for e in graph.fanin(v) {
                    debug_assert_eq!(e.kind, EdgeKind::Cell);
                    plan.cell_gather.push(node_loc[e.from as usize]);
                    plan.cell_seg.push(seg as u32);
                    fanin += 1;
                }
                // Fanin counts are tiny (gate arity ≤ 4 plus buffers);
                // `as f32` is exact far beyond any real value, so the
                // range check is a debug invariant, not a release panic.
                debug_assert!(fanin < (1 << 24), "fanin {fanin} exceeds f32 exact range");
                plan.cell_fanin.push(fanin as f32);
            }
            for &v in &plan.net_nodes {
                // `TimingGraph::try_build` rejects driverless net sinks, so
                // a missing driver is a debug invariant; release builds
                // gather from the origin slot instead of panicking.
                let loc = match graph.fanin(v).next() {
                    Some(e) => {
                        debug_assert_eq!(e.kind, EdgeKind::Net);
                        node_loc[e.from as usize]
                    }
                    None => {
                        debug_assert!(false, "net node {v} has a driver (try_build invariant)");
                        (0, 0)
                    }
                };
                plan.net_gather.push(loc);
            }
            // Permutation: concat order position of each level-order node.
            let mut concat_pos = vec![0u32; nodes.len()];
            let mut cursor = 0u32;
            for group in [&plan.cell_nodes, &plan.net_nodes, &plan.source_nodes] {
                for &v in group {
                    let (_, row) = node_loc[v as usize];
                    concat_pos[row as usize] = cursor;
                    cursor += 1;
                }
            }
            plan.perm = concat_pos;
            levels.push(plan);
        }

        let endpoint_locs: Vec<(u32, u32)> =
            graph.endpoints().iter().map(|&v| node_loc[v as usize]).collect();
        let plan = GnnPlan::build(&levels, &endpoint_locs);
        let mut pin_of_row = vec![PinId::from_index(0); plan.total_rows];
        for (v, &(l, r)) in node_loc.iter().enumerate() {
            pin_of_row[(plan.level_off[l as usize] + r) as usize] = graph.pin_of(v as u32);
        }
        Self { levels, endpoint_locs, node_loc, plan, pin_of_row }
    }

    /// Number of topological levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of endpoints the schedule will embed.
    pub fn num_endpoints(&self) -> usize {
        self.endpoint_locs.len()
    }

    /// `(level, row)` location of a graph node in the level matrices —
    /// usable as an [`Exec::gather_multi`] index over the output of
    /// [`NetlistGnn::forward_levels`].
    pub fn loc_of(&self, node: u32) -> (u32, u32) {
        self.node_loc[node as usize]
    }

    /// Locations of several nodes (convenience for batched gathers).
    pub fn locs_of(&self, nodes: &[u32]) -> Vec<(u32, u32)> {
        nodes.iter().map(|&v| self.loc_of(v)).collect()
    }

    /// Total graph nodes — the row count of the flat embedding matrix
    /// that [`NetlistGnn::forward_flat`] fills (one row per pin).
    pub fn num_nodes(&self) -> usize {
        self.node_loc.len()
    }

    /// Row of each endpoint in the flat embedding matrix, aligned with
    /// `TimingGraph::endpoints()` order.
    pub fn flat_endpoint_rows(&self) -> &[u32] {
        &self.plan.endpoint_rows
    }

    /// Pin behind each flat row (the inverse of the node → row mapping,
    /// keyed by the transform-stable [`PinId`]s). The incremental path
    /// matches rows across netlist edits through this.
    pub fn flat_row_pins(&self) -> &[PinId] {
        &self.pin_of_row
    }

    /// Structural equality down to the bit: every index vector and every
    /// derived float compared (fanin means are built from small integer
    /// counts, so `==` coincides with bit equality — no NaN or negative
    /// zero can occur). Verification support for the delta-prepare path,
    /// whose schedules must be indistinguishable from a cold
    /// [`GnnSchedule::build`].
    pub fn bit_eq(&self, other: &Self) -> bool {
        self.levels == other.levels
            && self.endpoint_locs == other.endpoint_locs
            && self.node_loc == other.node_loc
            && self.plan == other.plan
            && self.pin_of_row == other.pin_of_row
    }

    /// The flat execution plan (crate-internal: the incremental engine
    /// walks its CSR cones directly).
    pub(crate) fn plan(&self) -> &GnnPlan {
        &self.plan
    }

    /// Propagates a seeded dirty set through the level-ordered fan-out
    /// cones: a row becomes dirty as soon as any row it gathers from is
    /// dirty. Gathers only reference earlier levels, so one in-order
    /// sweep reaches the whole transitive cone. Returns the dirty count.
    pub(crate) fn propagate_dirty(&self, dirty: &mut [bool]) -> usize {
        assert_eq!(dirty.len(), self.plan.total_rows, "dirty set must cover every flat row");
        for fl in &self.plan.levels {
            for j in 0..fl.n_cells {
                let dst = fl.cell_dst[j] as usize;
                if !dirty[dst] {
                    let (lo, hi) = (fl.cell_seg_off[j] as usize, fl.cell_seg_off[j + 1] as usize);
                    dirty[dst] = fl.cell_gather[lo..hi].iter().any(|&g| dirty[g as usize]);
                }
            }
            for j in 0..fl.n_nets {
                let dst = fl.net_dst[j] as usize;
                if !dirty[dst] {
                    dirty[dst] = dirty[fl.net_gather[j] as usize];
                }
            }
            // Source rows have no fanin; they are dirty only if seeded.
        }
        dirty.iter().filter(|&&d| d).count()
    }
}

/// Per-level feature tensors consumed by the GNN forward pass, aligned
/// with a [`GnnSchedule`]'s groups.
#[derive(Clone, Debug, Default)]
pub struct LevelFeats {
    /// Cell-group features, one `[n_cells, CELL_FEATURE_DIM]` per level.
    pub cell: Vec<Option<Tensor>>,
    /// Net-group features, `[n_nets, NET_FEATURE_DIM]` per level.
    pub net: Vec<Option<Tensor>>,
    /// Source-group features, `[n_src, CELL_FEATURE_DIM]` per level.
    pub source: Vec<Option<Tensor>>,
    /// Every cell-group row (all levels, level order) followed by every
    /// source-group row — both groups feed `f_c2`, so the flat inference
    /// path runs them as a single matmul chain per pass instead of two
    /// tiny ones per level. Row values duplicate `cell` / `source`.
    pub cell_src_flat: Option<Tensor>,
    /// Every net-group row (all levels, level order), the single `f_n`
    /// input of the flat path.
    pub net_flat: Option<Tensor>,
}

impl LevelFeats {
    /// Assembles group feature matrices from extracted node features.
    pub fn assemble(schedule: &GnnSchedule, features: &NodeFeatures) -> Self {
        let mut out = Self::default();
        for plan in &schedule.levels {
            out.cell
                .push(group_matrix(&plan.cell_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
            out.net.push(group_matrix(&plan.net_nodes, NET_FEATURE_DIM, |v| features.net_row(v)));
            out.source
                .push(group_matrix(&plan.source_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
        }
        let mut cs = Vec::new();
        for t in out.cell.iter().flatten().chain(out.source.iter().flatten()) {
            cs.extend_from_slice(t.data());
        }
        if !cs.is_empty() {
            let rows = cs.len() / CELL_FEATURE_DIM;
            out.cell_src_flat = Some(Tensor::from_vec(&[rows, CELL_FEATURE_DIM], cs));
        }
        let mut nf = Vec::new();
        for t in out.net.iter().flatten() {
            nf.extend_from_slice(t.data());
        }
        if !nf.is_empty() {
            let rows = nf.len() / NET_FEATURE_DIM;
            out.net_flat = Some(Tensor::from_vec(&[rows, NET_FEATURE_DIM], nf));
        }
        out
    }
}

fn group_matrix<'f>(nodes: &[u32], dim: usize, row: impl Fn(u32) -> &'f [f32]) -> Option<Tensor> {
    if nodes.is_empty() {
        return None;
    }
    let mut data = Vec::with_capacity(nodes.len() * dim);
    for &v in nodes {
        data.extend_from_slice(row(v));
    }
    Some(Tensor::from_vec(&[nodes.len(), dim], data))
}

/// The three MLPs of Equation 3 and the levelized forward pass.
#[derive(Clone, Debug)]
pub struct NetlistGnn {
    f_c1: Mlp,
    f_c2: Mlp,
    f_n: Mlp,
    residual: bool,
}

impl NetlistGnn {
    /// Registers the GNN parameters (`f_c1`, `f_c2`, `f_n` — 3-layer MLPs
    /// as in the paper).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, config: &ModelConfig) -> Self {
        let d = config.embed_dim;
        let h = config.gnn_hidden;
        if config.residual {
            // Small-increment initialization: fanin cones reach hundreds of
            // levels, so per-level increments must start near zero.
            Self {
                f_c1: Mlp::new_scaled(store, rng, &[d, h, d], 0.1),
                f_c2: Mlp::new_scaled(store, rng, &[CELL_FEATURE_DIM, h, d], 0.1),
                f_n: Mlp::new_scaled(store, rng, &[NET_FEATURE_DIM, h, d], 0.1),
                residual: true,
            }
        } else {
            Self {
                f_c1: Mlp::new(store, rng, &[d, h, d]),
                f_c2: Mlp::new(store, rng, &[CELL_FEATURE_DIM, h, d]),
                f_n: Mlp::new(store, rng, &[NET_FEATURE_DIM, h, d]),
                residual: false,
            }
        }
    }

    /// Runs levelized propagation and returns the endpoint embedding
    /// matrix `[num_endpoints, embed_dim]` on any execution backend
    /// (`&Tape` for training, `&InferCtx` for tape-free serving).
    ///
    /// # Panics
    ///
    /// Panics if `feats` does not match `schedule` (group shape mismatch).
    pub fn forward<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> E::Value {
        rtt_obs::span!("core::gnn_forward");
        let level_vars = self.forward_levels(ex, store, schedule, feats, aggregation);
        ex.gather_multi(&level_vars, &schedule.endpoint_locs)
    }

    /// Like [`Self::forward`], but returns every per-level embedding matrix
    /// so callers can read out arbitrary node embeddings via
    /// [`GnnSchedule::loc_of`] (the end-to-end baseline predicts at all
    /// pins, not only endpoints).
    pub fn forward_levels<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> Vec<E::Value> {
        let mut level_vars: Vec<E::Value> = Vec::with_capacity(schedule.levels.len());
        for (l, plan) in schedule.levels.iter().enumerate() {
            let mut groups: Vec<E::Value> = Vec::new();

            if !plan.cell_nodes.is_empty() {
                let msgs = ex.gather_multi(&level_vars, &plan.cell_gather);
                let agg = match aggregation {
                    Aggregation::Max => ex.segment_max(msgs, &plan.cell_seg, plan.cell_nodes.len()),
                    Aggregation::Mean => {
                        let sum = ex.segment_sum(msgs, &plan.cell_seg, plan.cell_nodes.len());
                        let inv: Vec<f32> =
                            plan.cell_fanin.iter().map(|&c| 1.0 / c.max(1.0)).collect();
                        ex.scale_rows(sum, &inv)
                    }
                };
                let feat = ex.constant(feats.cell[l].clone().expect("cell feats present"));
                let h =
                    if self.residual {
                        // Residual: accumulate a *bounded* non-negative
                        // increment on top of the worst fanin message,
                        // mirroring arrival-time propagation. The context into
                        // f_c1 is tanh-bounded: an increment proportional to
                        // the accumulated magnitude would grow exponentially
                        // over hundred-level cones.
                        let ctx = ex.tanh(agg);
                        let inc = ex.relu(ex.add(
                            self.f_c1.forward(ex, store, ctx),
                            self.f_c2.forward(ex, store, feat),
                        ));
                        ex.add(agg, inc)
                    } else {
                        // Literal Equation 3.
                        ex.relu(ex.add(
                            self.f_c1.forward(ex, store, agg),
                            self.f_c2.forward(ex, store, feat),
                        ))
                    };
                groups.push(h);
            }
            if !plan.net_nodes.is_empty() {
                let msg = ex.gather_multi(&level_vars, &plan.net_gather);
                let feat = ex.constant(feats.net[l].clone().expect("net feats present"));
                let inc = if self.residual {
                    ex.relu(self.f_n.forward(ex, store, feat))
                } else {
                    ex.relu(ex.add(msg, self.f_n.forward(ex, store, feat)))
                };
                let h = if self.residual { ex.add(msg, inc) } else { inc };
                groups.push(h);
            }
            if !plan.source_nodes.is_empty() {
                let feat = ex.constant(feats.source[l].clone().expect("source feats present"));
                let h = ex.relu(self.f_c2.forward(ex, store, feat));
                groups.push(h);
            }

            let concat = groups
                .into_iter()
                .reduce(|a, b| ex.concat_rows(a, b))
                .expect("every level has nodes");
            level_vars.push(ex.gather_rows(concat, &plan.perm));
        }
        level_vars
    }

    /// Number of scratch tensors [`Self::forward_flat`] consumes.
    pub const FLAT_SCRATCH: usize = 8;

    /// Batched, tape-free levelized forward over the flat plan built by
    /// [`GnnSchedule::build`]. Fills `bufs[0]` with the
    /// `[num_nodes, embed_dim]` flat embedding matrix; read node
    /// embeddings out of it via [`GnnSchedule::flat_endpoint_rows`].
    ///
    /// Bit-identical to [`Self::forward_levels`] by construction:
    /// * the static `f_c2` / `f_n` products are hoisted out of the level
    ///   loop, which is row-wise exact (matmul rows are independent and
    ///   accumulate in ascending-`k` order; bias and ReLU are
    ///   elementwise);
    /// * CSR segment reductions scan the same rows in the same ascending
    ///   order as the legacy `seg[]` kernels;
    /// * in-place adds/activations produce the same values as the
    ///   copy-then-transform Exec ops, in the same operation order;
    /// * the per-level concat + permutation gather is replaced by direct
    ///   scatters to the same destination rows.
    ///
    /// # Panics
    ///
    /// Panics if `bufs.len() != FLAT_SCRATCH` or `feats` does not match
    /// `schedule`.
    // rtt-lint: hot
    pub fn forward_flat(
        &self,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
        bufs: &mut [Tensor],
    ) {
        rtt_obs::span!("core::gnn_forward");
        let [flat, sc, sn, msgs, agg, ctxv, t0, t1] = bufs else {
            unreachable!("forward_flat needs exactly {} scratch buffers", Self::FLAT_SCRATCH)
        };
        let plan = &schedule.plan;
        let d = self.f_c1.out_dim();
        if let Some(cs) = &feats.cell_src_flat {
            self.f_c2.forward_into(store, cs, t0, t1, sc);
            // Source rows always read out through ReLU; cell rows stay
            // raw (they join the pre-activation sum with f_c1).
            for v in &mut sc.data_mut()[plan.total_cell_rows * d..] {
                *v = v.max(0.0);
            }
        }
        if let Some(nf) = &feats.net_flat {
            self.f_n.forward_into(store, nf, t0, t1, sn);
            if self.residual {
                // Residual nets add `relu(f_n(feat))` as the increment.
                ops::relu_in_place(sn);
            }
        }
        flat.reset_for_overwrite(&[plan.total_rows, d]);
        for fl in &plan.levels {
            if fl.n_cells > 0 {
                ops::gather_rows_flat(flat, &fl.cell_gather, msgs);
                match aggregation {
                    Aggregation::Max => ops::segment_max_csr(msgs, &fl.cell_seg_off, agg),
                    Aggregation::Mean => {
                        ops::segment_sum_csr(msgs, &fl.cell_seg_off, agg);
                        ops::scale_rows_in_place(agg, &fl.cell_inv_fanin);
                    }
                }
                if self.residual {
                    ops::tanh_to(agg, ctxv);
                    self.f_c1.forward_into(store, ctxv, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc, fl.cell_feat_off);
                    ops::relu_in_place(msgs);
                    agg.add_assign(msgs);
                    ops::scatter_rows(agg, 0, &fl.cell_dst, flat);
                } else {
                    self.f_c1.forward_into(store, agg, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc, fl.cell_feat_off);
                    ops::relu_in_place(msgs);
                    ops::scatter_rows(msgs, 0, &fl.cell_dst, flat);
                }
            }
            if fl.n_nets > 0 {
                ops::gather_rows_flat(flat, &fl.net_gather, msgs);
                ops::add_rows_range(msgs, sn, fl.net_feat_off);
                if !self.residual {
                    ops::relu_in_place(msgs);
                }
                ops::scatter_rows(msgs, 0, &fl.net_dst, flat);
            }
            if fl.n_srcs > 0 {
                ops::scatter_rows(sc, fl.src_feat_off, &fl.src_dst, flat);
            }
        }
        rtt_nn::sanitize::check_finite("gnn_forward_flat", flat);
    }

    /// Number of scratch tensors [`Self::forward_flat_incremental`]
    /// consumes (same count as [`Self::FLAT_SCRATCH`], so one arena
    /// region serves both paths).
    pub(crate) const INC_SCRATCH: usize = 8;

    /// Dirty-cone twin of [`Self::forward_flat`]: recomputes only the
    /// rows selected by `compact` (an [`IncCompact`] built from the dirty
    /// set) and fills every clean row by copying its mapped row of
    /// `base_flat` (a cached flat matrix for a base design whose clean
    /// rows are, by the caller's invariants, bit-identical to what a full
    /// pass over this design would produce).
    ///
    /// Caller contract — the dirty set behind `compact` / `map_rows`
    /// (indexed by this schedule's flat rows) must satisfy:
    /// * the dirty set is closed under fan-out:
    ///   [`GnnSchedule::propagate_dirty`] has been run after seeding
    ///   every row whose static features, node kind, or gather sources
    ///   changed versus the base design;
    /// * `compact` was built by [`IncCompact::build`] from that closed
    ///   dirty set over this schedule's plan;
    /// * rows without a base mapping are dirty, and `map_rows[r]` is
    ///   `u32::MAX` exactly on dirty rows.
    ///
    /// Bit-identity argument (induction over levels): a clean row's
    /// inputs are all clean (closure), its static features are
    /// bit-identical to the base (seeding), so the byte copy of the base
    /// row equals a recompute. A dirty row is recomputed with the same
    /// kernels as the full pass over the same rows in the same order:
    /// the compacted `f_c2` / `f_n` products are row-wise exact, the
    /// compacted CSR segments scan the same message rows ascending, and
    /// empty segments produce the same zero rows. Nothing reads a dirty
    /// row before its level writes it, because gathers only reference
    /// earlier levels.
    ///
    /// # Panics
    ///
    /// Panics if `bufs.len() != INC_SCRATCH` or the inputs disagree with
    /// `schedule` (row-count mismatch).
    // rtt-lint: hot
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_flat_incremental(
        &self,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
        compact: &IncCompact,
        map_rows: &[u32],
        base_flat: &Tensor,
        flat: &mut Tensor,
        bufs: &mut [Tensor],
    ) {
        rtt_obs::span!("core::gnn_forward_incremental");
        let [feat_in, sc_d, sn_d, msgs, agg, ctxv, t0, t1] = bufs else {
            unreachable!("forward_flat_incremental needs exactly {} scratch buffers", {
                Self::INC_SCRATCH
            })
        };
        let plan = &schedule.plan;
        assert_eq!(map_rows.len(), plan.total_rows, "row map must cover every flat row");
        assert_eq!(compact.levels.len(), plan.levels.len(), "compacted plan must match schedule");
        let d = self.f_c1.out_dim();
        let dirty_cell_rows = compact.dirty_cell_rows;

        // Compacted static embeddings, dirty rows only, in the exact row
        // order of the full pass (cells level-major, then sources): each
        // level's dirty rows stay contiguous, so the level loop reads
        // them back with the same `add_rows_range` / `scatter_rows`
        // calls as `forward_flat`, just at compacted offsets.
        if !compact.cell_src_rows.is_empty() {
            let Some(cs) = feats.cell_src_flat.as_ref() else {
                unreachable!("cell/source feats present whenever cell or source rows exist")
            };
            ops::gather_rows_flat(cs, &compact.cell_src_rows, feat_in);
            self.f_c2.forward_into(store, feat_in, t0, t1, sc_d);
            for v in &mut sc_d.data_mut()[dirty_cell_rows * d..] {
                *v = v.max(0.0);
            }
        }
        if !compact.net_rows.is_empty() {
            let Some(nf) = feats.net_flat.as_ref() else {
                unreachable!("net feats present whenever net rows exist")
            };
            ops::gather_rows_flat(nf, &compact.net_rows, feat_in);
            self.f_n.forward_into(store, feat_in, t0, t1, sn_d);
            if self.residual {
                ops::relu_in_place(sn_d);
            }
        }

        // Clean rows: one bulk copy from the base. Dirty rows come back
        // zeroed and are overwritten below before anything gathers them.
        ops::gather_rows_or_zero(base_flat, map_rows, flat);

        // Compacted level sweep: identical kernels over the dirty subset.
        let (mut c_cur, mut s_cur, mut n_cur) = (0usize, dirty_cell_rows, 0usize);
        for cl in &compact.levels {
            if !cl.cdst.is_empty() {
                if cl.cgat.is_empty() {
                    // All-empty segments (fanin-less cells): the CSR
                    // kernels' empty-segment rule produces zero rows.
                    agg.reset(&[cl.cdst.len(), d], 0.0);
                } else {
                    ops::gather_rows_flat(flat, &cl.cgat, msgs);
                    match aggregation {
                        Aggregation::Max => ops::segment_max_csr(msgs, &cl.cseg, agg),
                        Aggregation::Mean => {
                            ops::segment_sum_csr(msgs, &cl.cseg, agg);
                            ops::scale_rows_in_place(agg, &cl.cinv);
                        }
                    }
                }
                if self.residual {
                    ops::tanh_to(agg, ctxv);
                    self.f_c1.forward_into(store, ctxv, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc_d, c_cur);
                    ops::relu_in_place(msgs);
                    agg.add_assign(msgs);
                    ops::scatter_rows(agg, 0, &cl.cdst, flat);
                } else {
                    self.f_c1.forward_into(store, agg, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc_d, c_cur);
                    ops::relu_in_place(msgs);
                    ops::scatter_rows(msgs, 0, &cl.cdst, flat);
                }
                c_cur += cl.cdst.len();
            }
            if !cl.ndst.is_empty() {
                ops::gather_rows_flat(flat, &cl.ngat, msgs);
                ops::add_rows_range(msgs, sn_d, n_cur);
                if !self.residual {
                    ops::relu_in_place(msgs);
                }
                ops::scatter_rows(msgs, 0, &cl.ndst, flat);
                n_cur += cl.ndst.len();
            }
            if !cl.sdst.is_empty() {
                ops::scatter_rows(sc_d, s_cur, &cl.sdst, flat);
                s_cur += cl.sdst.len();
            }
        }
        rtt_nn::sanitize::check_finite("gnn_forward_flat_incremental", flat);
    }
}

/// Compacted dirty-row schedule consumed by
/// [`NetlistGnn::forward_flat_incremental`]: the plan's per-level gather
/// lists, CSR offsets, and scatter destinations restricted to dirty rows,
/// in the exact row order of the full pass. All per-element plan walking
/// (and every allocation) lives in [`IncCompact::build`], outside the hot
/// kernel; the kernel only consumes whole slices. Owned by
/// `IncrementalCtx` and recycled across refreshes, so steady-state
/// rebuilds allocate nothing once the vectors have grown to cone size.
#[derive(Clone, Debug, Default)]
pub(crate) struct IncCompact {
    /// Compacted static-feature rows for the `f_c2` product: dirty cell
    /// rows (level-major) followed by dirty source rows.
    cell_src_rows: Vec<u32>,
    /// Number of cell rows at the head of `cell_src_rows` (source rows
    /// follow and read out through ReLU).
    dirty_cell_rows: usize,
    /// Compacted static-feature rows for the `f_n` product.
    net_rows: Vec<u32>,
    /// Per-level compacted arrays, aligned with `GnnPlan::levels`.
    levels: Vec<IncLevel>,
}

/// One level's dirty-row slice of the flat plan (names mirror the
/// `FlatLevel` arrays they compact).
#[derive(Clone, Debug, Default)]
struct IncLevel {
    /// Flat source rows of the dirty cells' fanin messages.
    cgat: Vec<u32>,
    /// CSR offsets into `cgat` (`len = dirty cells + 1`).
    cseg: Vec<u32>,
    /// `1 / max(fanin, 1)` per dirty cell (mean aggregation).
    cinv: Vec<f32>,
    /// Flat destination row per dirty cell.
    cdst: Vec<u32>,
    /// Driver row / destination row per dirty net.
    ngat: Vec<u32>,
    ndst: Vec<u32>,
    /// Destination row per dirty source.
    sdst: Vec<u32>,
}

impl IncCompact {
    /// Rebuilds the compacted schedule for `dirty` (indexed by flat row,
    /// closed under fan-out by the caller) over `plan`, reusing this
    /// instance's allocations.
    pub(crate) fn build(&mut self, plan: &GnnPlan, dirty: &[bool]) {
        assert_eq!(dirty.len(), plan.total_rows, "dirty set must cover every flat row");
        self.cell_src_rows.clear();
        for fl in &plan.levels {
            for j in 0..fl.n_cells {
                if dirty[fl.cell_dst[j] as usize] {
                    self.cell_src_rows.push((fl.cell_feat_off + j) as u32);
                }
            }
        }
        self.dirty_cell_rows = self.cell_src_rows.len();
        for fl in &plan.levels {
            for j in 0..fl.n_srcs {
                if dirty[fl.src_dst[j] as usize] {
                    self.cell_src_rows.push((fl.src_feat_off + j) as u32);
                }
            }
        }
        self.net_rows.clear();
        for fl in &plan.levels {
            for j in 0..fl.n_nets {
                if dirty[fl.net_dst[j] as usize] {
                    self.net_rows.push((fl.net_feat_off + j) as u32);
                }
            }
        }
        self.levels.resize_with(plan.levels.len(), IncLevel::default);
        for (fl, cl) in plan.levels.iter().zip(&mut self.levels) {
            cl.cgat.clear();
            cl.cseg.clear();
            cl.cseg.push(0);
            cl.cinv.clear();
            cl.cdst.clear();
            for j in 0..fl.n_cells {
                if dirty[fl.cell_dst[j] as usize] {
                    let (lo, hi) = (fl.cell_seg_off[j] as usize, fl.cell_seg_off[j + 1] as usize);
                    cl.cgat.extend_from_slice(&fl.cell_gather[lo..hi]);
                    cl.cseg.push(cl.cgat.len() as u32);
                    cl.cinv.push(fl.cell_inv_fanin[j]);
                    cl.cdst.push(fl.cell_dst[j]);
                }
            }
            cl.ngat.clear();
            cl.ndst.clear();
            for j in 0..fl.n_nets {
                if dirty[fl.net_dst[j] as usize] {
                    cl.ngat.push(fl.net_gather[j]);
                    cl.ndst.push(fl.net_dst[j]);
                }
            }
            cl.sdst.clear();
            for j in 0..fl.n_srcs {
                if dirty[fl.src_dst[j] as usize] {
                    cl.sdst.push(fl.src_dst[j]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_netlist::CellLibrary;
    use rtt_nn::Tape;
    use rtt_place::{place, PlaceConfig};

    fn world(cells: usize) -> (GnnSchedule, LevelFeats, usize) {
        let lib = CellLibrary::asap7_like();
        let nl = if cells == 0 {
            ripple_carry_adder(4, &lib)
        } else {
            GenParams::new("g", cells, 3).generate(&lib).netlist
        };
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let schedule = GnnSchedule::build(&graph);
        let features = NodeFeatures::extract(&nl, &lib, &graph, &pl);
        let feats = LevelFeats::assemble(&schedule, &features);
        (schedule, feats, graph.endpoints().len())
    }

    #[test]
    fn schedule_covers_all_endpoints() {
        let (schedule, _, n_ep) = world(0);
        assert_eq!(schedule.num_endpoints(), n_ep);
        assert!(schedule.num_levels() > 3);
    }

    #[test]
    fn sources_only_at_level_zero() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            if l > 0 {
                assert!(plan.source_nodes.is_empty(), "source above level 0");
                assert_eq!(plan.cell_gather.is_empty(), plan.cell_nodes.is_empty());
            }
        }
        assert!(!schedule.levels[0].source_nodes.is_empty());
        assert!(schedule.levels[0].cell_nodes.is_empty());
    }

    #[test]
    fn gathers_reference_earlier_levels_only() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            for &(src_level, _) in plan.cell_gather.iter().chain(&plan.net_gather) {
                assert!((src_level as usize) < l, "forward reference at level {l}");
            }
        }
    }

    #[test]
    fn forward_produces_endpoint_matrix() {
        let (schedule, feats, n_ep) = world(150);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let t = tape.value(emb);
        assert_eq!(t.shape(), &[n_ep, cfg.embed_dim]);
        assert!(t.data().iter().all(|v| v.is_finite()));
        // Embeddings must differ across endpoints (no collapse at init).
        let first = t.row(0).to_vec();
        assert!((1..n_ep).any(|r| t.row(r) != first.as_slice()));
    }

    #[test]
    fn mean_and_max_aggregation_differ() {
        let (schedule, feats, _) = world(120);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let a = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max));
        let b = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Mean));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn incremental_forward_matches_full_at_the_extremes() {
        let (schedule, feats, _) = world(150);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let n = schedule.num_nodes();
        for aggregation in [Aggregation::Max, Aggregation::Mean] {
            let mut bufs: Vec<Tensor> =
                (0..NetlistGnn::FLAT_SCRATCH).map(|_| Tensor::default()).collect();
            gnn.forward_flat(&store, &schedule, &feats, aggregation, &mut bufs);
            let full = bufs[0].clone();

            // Everything dirty: the base must not be consulted at all.
            let mut ibufs: Vec<Tensor> =
                (0..NetlistGnn::INC_SCRATCH).map(|_| Tensor::default()).collect();
            let mut flat = Tensor::default();
            let base = Tensor::full(&[n, cfg.embed_dim], f32::NAN);
            let mut compact = IncCompact::default();
            compact.build(schedule.plan(), &vec![true; n]);
            gnn.forward_flat_incremental(
                &store,
                &schedule,
                &feats,
                aggregation,
                &compact,
                &vec![u32::MAX; n],
                &base,
                &mut flat,
                &mut ibufs,
            );
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            assert_eq!(bits(&flat), bits(&full), "all-dirty pass must equal the full pass");

            // Nothing dirty: a pure row copy of the base.
            let identity: Vec<u32> = (0..n as u32).collect();
            compact.build(schedule.plan(), &vec![false; n]);
            gnn.forward_flat_incremental(
                &store,
                &schedule,
                &feats,
                aggregation,
                &compact,
                &identity,
                &full,
                &mut flat,
                &mut ibufs,
            );
            assert_eq!(bits(&flat), bits(&full), "zero-dirty pass must copy the base");
        }
    }

    #[test]
    fn propagate_dirty_reaches_exactly_the_fanout_cone() {
        let (schedule, _, _) = world(200);
        let n = schedule.num_nodes();
        // Closure check: propagating an already-propagated set is a no-op,
        // and every row gathering from a dirty row is dirty.
        let mut dirty = vec![false; n];
        dirty[schedule.plan().levels[0].src_dst[0] as usize] = true;
        let count = schedule.propagate_dirty(&mut dirty);
        assert!(count > 1, "a level-0 source must have downstream rows");
        let again = schedule.propagate_dirty(&mut dirty.clone());
        assert_eq!(count, again, "propagation must be idempotent");
        for fl in &schedule.plan().levels {
            for j in 0..fl.n_cells {
                let any_in = (fl.cell_seg_off[j]..fl.cell_seg_off[j + 1])
                    .any(|k| dirty[fl.cell_gather[k as usize] as usize]);
                assert!(!any_in || dirty[fl.cell_dst[j] as usize]);
            }
            for j in 0..fl.n_nets {
                assert!(
                    !dirty[fl.net_gather[j] as usize] || dirty[fl.net_dst[j] as usize],
                    "net row must follow its driver's dirtiness"
                );
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_three_mlps() {
        let (schedule, feats, _) = world(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let loss = emb.mul(emb).mean();
        let grads = tape.backward(loss);
        let mut with_grad = 0;
        for (id, _) in store.iter() {
            if grads.of(id).is_some_and(|g| g.norm() > 0.0) {
                with_grad += 1;
            }
        }
        // 3 MLPs × 2 layers × (w, b) = 12 parameter tensors.
        assert!(with_grad >= 10, "only {with_grad} params receive gradient");
    }
}
