//! Define-by-run computation graph with reverse-mode differentiation.

use std::cell::{Cell, RefCell};

use crate::exec::Exec;
use crate::ops;
use crate::ops::{col2im, im2col, rank3};
use crate::store::{Grads, ParamId, ParamStore};
use crate::Tensor;

/// A node handle on a [`Tape`].
///
/// `Var` is `Copy`; all arithmetic builds new nodes on the owning tape.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

enum Op {
    Leaf { param: Option<ParamId> },
    MatMul(usize, usize),
    Add(usize, usize),
    AddRow(usize, usize),
    AddChannel(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MulRow(usize, usize),
    Scale(usize, f32),
    Relu(usize),
    Tanh(usize),
    GatherRows(usize, Vec<u32>),
    GatherMulti { srcs: Vec<usize>, index: Vec<(u32, u32)> },
    SegmentMax { x: usize, argmax: Vec<i64> },
    SegmentSum { x: usize, seg: Vec<u32> },
    ScaleRows(usize, Vec<f32>),
    ConcatRows(usize, usize),
    ConcatCols(usize, usize),
    Conv2d { x: usize, w: usize, pad: usize },
    MaxPool2d { x: usize, argmax: Vec<u32> },
    Reshape(usize),
    Mean(usize),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A define-by-run tape: forward ops append nodes; [`Tape::backward`]
/// sweeps them in reverse to produce [`Grads`].
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// Bytes of tensor data appended to the tape arena since the last
    /// flush; tallied lock-free here and flushed to the global
    /// `nn::tape_bytes` counter in [`Tape::backward`] / `Drop`.
    pending_bytes: Cell<u64>,
    /// Recycled im2col scratch shared by every [`Tape::conv2d`] on this
    /// tape: the col matrix is transient (only the conv output is kept as
    /// a node), so one buffer sized for the largest conv serves all calls
    /// instead of regrowing a fresh allocation per invocation.
    conv_col: RefCell<Tensor>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, value: Tensor, op: Op) -> Var<'_> {
        self.pending_bytes.set(self.pending_bytes.get() + 4 * value.len() as u64);
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { tape: self, id: nodes.len() - 1 }
    }

    /// Moves the locally tallied arena bytes into the global counter.
    fn flush_bytes(&self) {
        static TAPE_BYTES: rtt_obs::Counter = rtt_obs::Counter::new("nn::tape_bytes");
        let bytes = self.pending_bytes.take();
        if bytes > 0 {
            TAPE_BYTES.add(bytes);
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` if no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Adds a non-trainable input leaf.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.push(value, Op::Leaf { param: None })
    }

    /// Injects a trainable parameter from `store` as a leaf; its gradient
    /// will be retrievable from [`Grads::of`] after `backward`.
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var<'_> {
        self.push(store.value(id).clone(), Op::Leaf { param: Some(id) })
    }

    /// The current value of `v` (cloned).
    pub fn value(&self, v: Var<'_>) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Selects rows `idx` from matrix `x`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `x` is not a matrix.
    pub fn gather_rows<'t>(&'t self, x: Var<'t>, idx: &[u32]) -> Var<'t> {
        let mut out = Tensor::default();
        ops::gather_rows(&self.nodes.borrow()[x.id].value, idx, &mut out);
        self.push(out, Op::GatherRows(x.id, idx.to_vec()))
    }

    /// Selects rows from several source matrices: entry `(s, r)` takes row
    /// `r` of `sources[s]`. All sources must share a column count. This is
    /// the workhorse of levelized message passing — predecessors of a
    /// topological level live in many earlier level matrices.
    ///
    /// # Panics
    ///
    /// Panics on empty `sources`, mismatched columns, or bad indices.
    pub fn gather_multi<'t>(&'t self, sources: &[Var<'t>], index: &[(u32, u32)]) -> Var<'t> {
        let mut out = Tensor::default();
        {
            let nodes = self.nodes.borrow();
            let srcs: Vec<&Tensor> = sources.iter().map(|s| &nodes[s.id].value).collect();
            ops::gather_multi(&srcs, index, &mut out);
        }
        self.push(
            out,
            Op::GatherMulti { srcs: sources.iter().map(|s| s.id).collect(), index: index.to_vec() },
        )
    }

    /// Per-segment column-wise maximum: rows of `x` with equal `seg` value
    /// reduce into one output row (the paper's `max` aggregation for cell
    /// nodes). Empty segments produce zero rows.
    ///
    /// # Panics
    ///
    /// Panics if `seg.len() != x.rows()` or a segment id `>= num_segments`.
    pub fn segment_max<'t>(&'t self, x: Var<'t>, seg: &[u32], num_segments: usize) -> Var<'t> {
        let mut out = Tensor::default();
        let mut argmax = Vec::new();
        ops::segment_max(
            &self.nodes.borrow()[x.id].value,
            seg,
            num_segments,
            &mut out,
            &mut argmax,
        );
        self.push(out, Op::SegmentMax { x: x.id, argmax })
    }

    /// Per-segment column-wise sum (used with [`Tape::scale_rows`] for the
    /// mean-aggregation ablation).
    ///
    /// # Panics
    ///
    /// Panics if `seg.len() != x.rows()` or a segment id `>= num_segments`.
    pub fn segment_sum<'t>(&'t self, x: Var<'t>, seg: &[u32], num_segments: usize) -> Var<'t> {
        let mut out = Tensor::default();
        ops::segment_sum(&self.nodes.borrow()[x.id].value, seg, num_segments, &mut out);
        self.push(out, Op::SegmentSum { x: x.id, seg: seg.to_vec() })
    }

    /// Multiplies each row of `x` by a constant factor (no gradient flows to
    /// the factors).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != x.rows()`.
    pub fn scale_rows<'t>(&'t self, x: Var<'t>, factors: &[f32]) -> Var<'t> {
        let mut out = Tensor::default();
        ops::scale_rows(&self.nodes.borrow()[x.id].value, factors, &mut out);
        self.push(out, Op::ScaleRows(x.id, factors.to_vec()))
    }

    /// Stacks `a` above `b` (matrices with equal column counts).
    ///
    /// # Panics
    ///
    /// Panics on column mismatch.
    pub fn concat_rows<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let mut out = Tensor::default();
        {
            let nodes = self.nodes.borrow();
            ops::concat_rows(&nodes[a.id].value, &nodes[b.id].value, &mut out);
        }
        self.push(out, Op::ConcatRows(a.id, b.id))
    }

    /// Concatenates `a` and `b` side by side (matrices with equal rows) —
    /// the paper's multimodal fusion `[v_n ; v_l]`.
    ///
    /// # Panics
    ///
    /// Panics on row mismatch.
    pub fn concat_cols<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let mut out = Tensor::default();
        {
            let nodes = self.nodes.borrow();
            ops::concat_cols(&nodes[a.id].value, &nodes[b.id].value, &mut out);
        }
        self.push(out, Op::ConcatCols(a.id, b.id))
    }

    /// 2-D convolution, stride 1: `x` is `[C_in, H, W]`, `w` is
    /// `[C_out, C_in, kh, kw]`, output `[C_out, H', W']` with
    /// `H' = H + 2·pad - kh + 1`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or if the kernel exceeds the padded
    /// input.
    pub fn conv2d<'t>(&'t self, x: Var<'t>, w: Var<'t>, pad: usize) -> Var<'t> {
        let mut out = Tensor::default();
        {
            let mut col = self.conv_col.borrow_mut();
            let nodes = self.nodes.borrow();
            ops::conv2d(&nodes[x.id].value, &nodes[w.id].value, pad, &mut col, &mut out);
        }
        self.push(out, Op::Conv2d { x: x.id, w: w.id, pad })
    }

    /// Max pooling with a square window and equal stride over `[C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not divide H and W.
    pub fn maxpool2d<'t>(&'t self, x: Var<'t>, size: usize) -> Var<'t> {
        let mut out = Tensor::default();
        let mut argmax = Vec::new();
        ops::maxpool2d(&self.nodes.borrow()[x.id].value, size, &mut out, &mut argmax);
        self.push(out, Op::MaxPool2d { x: x.id, argmax })
    }

    /// Runs the reverse sweep from scalar `loss` and collects gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var<'_>) -> Grads {
        rtt_obs::span!("nn::backward");
        self.flush_bytes();
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[loss.id].value.len(), 1, "loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::full(nodes[loss.id].value.shape(), 1.0));

        for id in (0..nodes.len()).rev() {
            let Some(g) = grads[id].take() else { continue };
            backward_node(&nodes, id, &g, &mut grads);
            grads[id] = Some(g);
        }

        let mut out = Grads::default();
        for (id, node) in nodes.iter().enumerate() {
            if let Op::Leaf { param: Some(pid) } = node.op {
                if let Some(g) = grads[id].take() {
                    out.insert_param(pid, g);
                }
            }
        }
        out.set_var_grads(grads);
        out
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        // Forward-only tapes (prediction) never reach `backward`; account
        // for their arena here.
        self.flush_bytes();
    }
}

fn accumulate(slot: &mut Option<Tensor>, shape: &[usize], add: impl FnOnce(&mut Tensor)) {
    let g = slot.get_or_insert_with(|| Tensor::zeros(shape));
    add(g);
}

#[allow(clippy::too_many_lines)]
fn backward_node(nodes: &[Node], id: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
    match &nodes[id].op {
        Op::Leaf { .. } => {}
        Op::MatMul(a, b) => {
            let (ta, tb) = (&nodes[*a].value, &nodes[*b].value);
            let ga = g.matmul(&tb.transposed());
            let gb = ta.transposed().matmul(g);
            accumulate(&mut grads[*a], ta.shape(), |t| t.add_assign(&ga));
            accumulate(&mut grads[*b], tb.shape(), |t| t.add_assign(&gb));
        }
        Op::Add(a, b) => {
            for src in [a, b] {
                accumulate(&mut grads[*src], nodes[*src].value.shape(), |t| t.add_assign(g));
            }
        }
        Op::Sub(a, b) => {
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| t.add_assign(g));
            accumulate(&mut grads[*b], nodes[*b].value.shape(), |t| {
                for (x, y) in t.data_mut().iter_mut().zip(g.data()) {
                    *x -= y;
                }
            });
        }
        Op::AddRow(a, row) => {
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| t.add_assign(g));
            let n = nodes[*row].value.len();
            accumulate(&mut grads[*row], nodes[*row].value.shape(), |t| {
                for (i, v) in g.data().iter().enumerate() {
                    t.data_mut()[i % n] += v;
                }
            });
        }
        Op::AddChannel(x, b) => {
            accumulate(&mut grads[*x], nodes[*x].value.shape(), |t| t.add_assign(g));
            let (c, h, w) = rank3(&nodes[*x].value);
            accumulate(&mut grads[*b], nodes[*b].value.shape(), |t| {
                for ch in 0..c {
                    let s: f32 = g.data()[ch * h * w..(ch + 1) * h * w].iter().sum();
                    t.data_mut()[ch] += s;
                }
            });
        }
        Op::Mul(a, b) => {
            let (ta, tb) = (nodes[*a].value.clone(), nodes[*b].value.clone());
            accumulate(&mut grads[*a], ta.shape(), |t| {
                for ((x, gv), bv) in t.data_mut().iter_mut().zip(g.data()).zip(tb.data()) {
                    *x += gv * bv;
                }
            });
            accumulate(&mut grads[*b], tb.shape(), |t| {
                for ((x, gv), av) in t.data_mut().iter_mut().zip(g.data()).zip(ta.data()) {
                    *x += gv * av;
                }
            });
        }
        Op::MulRow(a, row) => {
            let ta = nodes[*a].value.clone();
            let tr = nodes[*row].value.clone();
            let n = tr.len();
            accumulate(&mut grads[*a], ta.shape(), |t| {
                for (i, (x, gv)) in t.data_mut().iter_mut().zip(g.data()).enumerate() {
                    *x += gv * tr.data()[i % n];
                }
            });
            accumulate(&mut grads[*row], tr.shape(), |t| {
                for (i, gv) in g.data().iter().enumerate() {
                    t.data_mut()[i % n] += gv * ta.data()[i];
                }
            });
        }
        Op::Scale(a, s) => {
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for (x, gv) in t.data_mut().iter_mut().zip(g.data()) {
                    *x += gv * s;
                }
            });
        }
        Op::Relu(a) => {
            let ta = nodes[*a].value.clone();
            accumulate(&mut grads[*a], ta.shape(), |t| {
                for ((x, gv), av) in t.data_mut().iter_mut().zip(g.data()).zip(ta.data()) {
                    if *av > 0.0 {
                        *x += gv;
                    }
                }
            });
        }
        Op::Tanh(a) => {
            let ty = nodes[id].value.clone();
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for ((x, gv), yv) in t.data_mut().iter_mut().zip(g.data()).zip(ty.data()) {
                    *x += gv * (1.0 - yv * yv);
                }
            });
        }
        Op::GatherRows(a, idx) => {
            let d = nodes[*a].value.cols();
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for (i, &r) in idx.iter().enumerate() {
                    let dst = &mut t.data_mut()[r as usize * d..(r as usize + 1) * d];
                    for (x, gv) in dst.iter_mut().zip(&g.data()[i * d..(i + 1) * d]) {
                        *x += gv;
                    }
                }
            });
        }
        Op::GatherMulti { srcs, index } => {
            let d = nodes[srcs[0]].value.cols();
            for (i, &(s, r)) in index.iter().enumerate() {
                let src = srcs[s as usize];
                accumulate(&mut grads[src], nodes[src].value.shape(), |t| {
                    let dst = &mut t.data_mut()[r as usize * d..(r as usize + 1) * d];
                    for (x, gv) in dst.iter_mut().zip(&g.data()[i * d..(i + 1) * d]) {
                        *x += gv;
                    }
                });
            }
        }
        Op::SegmentMax { x, argmax } => {
            let d = nodes[*x].value.cols();
            accumulate(&mut grads[*x], nodes[*x].value.shape(), |t| {
                for (oi, &src_row) in argmax.iter().enumerate() {
                    if src_row >= 0 {
                        let col = oi % d;
                        t.data_mut()[src_row as usize * d + col] += g.data()[oi];
                    }
                }
            });
        }
        Op::SegmentSum { x, seg } => {
            let d = nodes[*x].value.cols();
            accumulate(&mut grads[*x], nodes[*x].value.shape(), |t| {
                for (r, &s) in seg.iter().enumerate() {
                    let dst = &mut t.data_mut()[r * d..(r + 1) * d];
                    let src = &g.data()[s as usize * d..(s as usize + 1) * d];
                    for (x, gv) in dst.iter_mut().zip(src) {
                        *x += gv;
                    }
                }
            });
        }
        Op::ScaleRows(x, factors) => {
            let d = nodes[*x].value.cols();
            accumulate(&mut grads[*x], nodes[*x].value.shape(), |t| {
                for (r, &f) in factors.iter().enumerate() {
                    for (x, gv) in t.data_mut()[r * d..(r + 1) * d]
                        .iter_mut()
                        .zip(&g.data()[r * d..(r + 1) * d])
                    {
                        *x += gv * f;
                    }
                }
            });
        }
        Op::ConcatRows(a, b) => {
            let na = nodes[*a].value.len();
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for (x, gv) in t.data_mut().iter_mut().zip(&g.data()[..na]) {
                    *x += gv;
                }
            });
            accumulate(&mut grads[*b], nodes[*b].value.shape(), |t| {
                for (x, gv) in t.data_mut().iter_mut().zip(&g.data()[na..]) {
                    *x += gv;
                }
            });
        }
        Op::ConcatCols(a, b) => {
            let (p, q) = (nodes[*a].value.cols(), nodes[*b].value.cols());
            let m = nodes[*a].value.rows();
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for r in 0..m {
                    for c in 0..p {
                        t.data_mut()[r * p + c] += g.data()[r * (p + q) + c];
                    }
                }
            });
            accumulate(&mut grads[*b], nodes[*b].value.shape(), |t| {
                for r in 0..m {
                    for c in 0..q {
                        t.data_mut()[r * q + c] += g.data()[r * (p + q) + p + c];
                    }
                }
            });
        }
        Op::Conv2d { x, w, pad } => {
            let tx = nodes[*x].value.clone();
            let tw = nodes[*w].value.clone();
            let (cin, h, wd) = rank3(&tx);
            let ws = tw.shape().to_vec();
            let (cout, kh, kw) = (ws[0], ws[2], ws[3]);
            let (oh, ow) = (h + 2 * pad + 1 - kh, wd + 2 * pad + 1 - kw);
            let pad = *pad;
            // Both gradients route through the forward's im2col matrix:
            //   gw = g₂d · colᵀ        [cout, cin·kh·kw]
            //   gx = col2im(w₂dᵀ · g₂d) [cin, h, w]
            // so the heavy lifting is two blocked/parallel matmuls; the
            // im2col matrix is recomputed rather than kept alive on the
            // tape (memory over speed — one col per graph node would
            // dominate the tape's footprint).
            let mut col = Tensor::default();
            im2col(&tx, kh, kw, pad, oh, ow, &mut col);
            let g2d = Tensor::from_vec(&[cout, oh * ow], g.data().to_vec());
            let w2d = Tensor::from_vec(&[cout, cin * kh * kw], tw.data().to_vec());
            let gw2d = g2d.matmul(&col.transposed());
            let gcol = w2d.transposed().matmul(&g2d);
            accumulate(&mut grads[*x], tx.shape(), |gx| {
                col2im(&gcol, cin, h, wd, kh, kw, pad, gx);
            });
            accumulate(&mut grads[*w], tw.shape(), |gw| {
                for (dst, src) in gw.data_mut().iter_mut().zip(gw2d.data()) {
                    *dst += src;
                }
            });
        }
        Op::MaxPool2d { x, argmax } => {
            accumulate(&mut grads[*x], nodes[*x].value.shape(), |t| {
                for (oi, &ii) in argmax.iter().enumerate() {
                    t.data_mut()[ii as usize] += g.data()[oi];
                }
            });
        }
        Op::Reshape(a) => {
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for (x, gv) in t.data_mut().iter_mut().zip(g.data()) {
                    *x += gv;
                }
            });
        }
        Op::Mean(a) => {
            let n = nodes[*a].value.len() as f32;
            let gv = g.data()[0] / n;
            accumulate(&mut grads[*a], nodes[*a].value.shape(), |t| {
                for x in t.data_mut() {
                    *x += gv;
                }
            });
        }
    }
}

impl<'t> Var<'t> {
    /// Node index on the tape (for debugging).
    pub fn id(self) -> usize {
        self.id
    }

    /// Records a node whose value is `f(self, out)` over this var's tensor.
    fn unary(self, op: Op, f: impl FnOnce(&Tensor, &mut Tensor)) -> Var<'t> {
        let mut out = Tensor::default();
        f(&self.tape.nodes.borrow()[self.id].value, &mut out);
        self.tape.push(out, op)
    }

    /// Records a node whose value is `f(self, other, out)`.
    fn binary(
        self,
        other: Var<'t>,
        op: Op,
        f: impl FnOnce(&Tensor, &Tensor, &mut Tensor),
    ) -> Var<'t> {
        let mut out = Tensor::default();
        {
            let nodes = self.tape.nodes.borrow();
            f(&nodes[self.id].value, &nodes[other.id].value, &mut out);
        }
        self.tape.push(out, op)
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(self, other: Var<'t>) -> Var<'t> {
        self.binary(other, Op::MatMul(self.id, other.id), ops::matmul)
    }

    /// Elementwise sum (same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Var<'t>) -> Var<'t> {
        self.binary(other, Op::Add(self.id, other.id), ops::add)
    }

    /// Adds a rank-1 row vector to every row of a matrix (bias add).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row(self, row: Var<'t>) -> Var<'t> {
        self.binary(row, Op::AddRow(self.id, row.id), ops::add_row)
    }

    /// Adds a per-channel bias `[C]` to a feature map `[C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != C`.
    pub fn add_channel(self, bias: Var<'t>) -> Var<'t> {
        self.binary(bias, Op::AddChannel(self.id, bias.id), ops::add_channel)
    }

    /// Elementwise difference (same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Var<'t>) -> Var<'t> {
        self.binary(other, Op::Sub(self.id, other.id), ops::sub)
    }

    /// Elementwise (Hadamard) product — the paper's Equation 6 masking.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Var<'t>) -> Var<'t> {
        self.binary(other, Op::Mul(self.id, other.id), ops::mul)
    }

    /// Multiplies every row of a matrix by a rank-1 vector (broadcast
    /// Hadamard — each endpoint mask row times the shared layout map).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn mul_row(self, row: Var<'t>) -> Var<'t> {
        self.binary(row, Op::MulRow(self.id, row.id), ops::mul_row)
    }

    /// Scalar multiple.
    pub fn scale(self, s: f32) -> Var<'t> {
        self.unary(Op::Scale(self.id, s), |x, out| ops::scale(x, s, out))
    }

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        self.unary(Op::Relu(self.id), ops::relu)
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        self.unary(Op::Tanh(self.id), ops::tanh)
    }

    /// Reshaped view (copy) with identical element count.
    ///
    /// # Panics
    ///
    /// Panics if volumes differ.
    pub fn reshape(self, shape: &[usize]) -> Var<'t> {
        self.unary(Op::Reshape(self.id), |x, out| ops::reshape(x, shape, out))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(self) -> Var<'t> {
        self.unary(Op::Mean(self.id), ops::mean)
    }
}

/// The tape is the training backend of the [`Exec`] abstraction: every op
/// records a node so [`Tape::backward`] can differentiate through it.
/// All methods delegate to the inherent `Tape`/[`Var`] API.
impl<'t> Exec for &'t Tape {
    type Value = Var<'t>;

    fn constant(self, t: Tensor) -> Var<'t> {
        Tape::constant(self, t)
    }

    fn param(self, store: &ParamStore, id: ParamId) -> Var<'t> {
        Tape::param(self, store, id)
    }

    fn value(self, v: Var<'t>) -> Tensor {
        Tape::value(self, v)
    }

    fn len(self, v: Var<'t>) -> usize {
        self.nodes.borrow()[v.id].value.len()
    }

    fn matmul(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        a.matmul(b)
    }

    fn add(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        a.add(b)
    }

    fn add_row(self, a: Var<'t>, row: Var<'t>) -> Var<'t> {
        a.add_row(row)
    }

    fn add_channel(self, x: Var<'t>, bias: Var<'t>) -> Var<'t> {
        x.add_channel(bias)
    }

    fn sub(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        a.sub(b)
    }

    fn mul(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        a.mul(b)
    }

    fn mul_row(self, a: Var<'t>, row: Var<'t>) -> Var<'t> {
        a.mul_row(row)
    }

    fn scale(self, x: Var<'t>, s: f32) -> Var<'t> {
        x.scale(s)
    }

    fn relu(self, x: Var<'t>) -> Var<'t> {
        x.relu()
    }

    fn tanh(self, x: Var<'t>) -> Var<'t> {
        x.tanh()
    }

    fn reshape(self, x: Var<'t>, shape: &[usize]) -> Var<'t> {
        x.reshape(shape)
    }

    fn mean(self, x: Var<'t>) -> Var<'t> {
        x.mean()
    }

    fn gather_rows(self, x: Var<'t>, idx: &[u32]) -> Var<'t> {
        Tape::gather_rows(self, x, idx)
    }

    fn gather_multi(self, sources: &[Var<'t>], index: &[(u32, u32)]) -> Var<'t> {
        Tape::gather_multi(self, sources, index)
    }

    fn segment_max(self, x: Var<'t>, seg: &[u32], num_segments: usize) -> Var<'t> {
        Tape::segment_max(self, x, seg, num_segments)
    }

    fn segment_sum(self, x: Var<'t>, seg: &[u32], num_segments: usize) -> Var<'t> {
        Tape::segment_sum(self, x, seg, num_segments)
    }

    fn scale_rows(self, x: Var<'t>, factors: &[f32]) -> Var<'t> {
        Tape::scale_rows(self, x, factors)
    }

    fn concat_rows(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        Tape::concat_rows(self, a, b)
    }

    fn concat_cols(self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        Tape::concat_cols(self, a, b)
    }

    fn conv2d(self, x: Var<'t>, w: Var<'t>, pad: usize) -> Var<'t> {
        Tape::conv2d(self, x, w, pad)
    }

    fn maxpool2d(self, x: Var<'t>, size: usize) -> Var<'t> {
        Tape::maxpool2d(self, x, size)
    }
}

/// Mean-squared-error loss between same-shape tensors — the paper's
/// Equation 2.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse<'t>(_tape: &'t Tape, pred: Var<'t>, target: Var<'t>) -> Var<'t> {
    let diff = pred.sub(target);
    diff.mul(diff).mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t2(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    #[test]
    fn forward_values() {
        let tape = Tape::new();
        let a = tape.constant(t2(&[&[1.0, -2.0], &[3.0, 4.0]]));
        let b = tape.constant(t2(&[&[1.0, 1.0], &[1.0, 1.0]]));
        assert_eq!(tape.value(a.add(b)).data(), &[2.0, -1.0, 4.0, 5.0]);
        assert_eq!(tape.value(a.relu()).data(), &[1.0, 0.0, 3.0, 4.0]);
        assert_eq!(tape.value(a.scale(2.0)).data(), &[2.0, -4.0, 6.0, 8.0]);
        assert_eq!(tape.value(a.mean()).data(), &[1.5]);
    }

    #[test]
    fn gather_and_segment_ops() {
        let tape = Tape::new();
        let x = tape.constant(t2(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 0.0]]));
        let g = tape.gather_rows(x, &[2, 0]);
        assert_eq!(tape.value(g).data(), &[5.0, 0.0, 1.0, 2.0]);
        // segments: rows 0 and 2 -> seg 0, row 1 -> seg 1
        let m = tape.segment_max(x, &[0, 1, 0], 2);
        assert_eq!(tape.value(m).data(), &[5.0, 2.0, 3.0, 4.0]);
        let s = tape.segment_sum(x, &[0, 1, 0], 2);
        assert_eq!(tape.value(s).data(), &[6.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_segment_yields_zero() {
        let tape = Tape::new();
        let x = tape.constant(t2(&[&[1.0, -1.0]]));
        let m = tape.segment_max(x, &[1], 3);
        assert_eq!(tape.value(m).data(), &[0.0, 0.0, 1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_ops() {
        let tape = Tape::new();
        let a = tape.constant(t2(&[&[1.0], &[2.0]]));
        let b = tape.constant(t2(&[&[3.0], &[4.0]]));
        assert_eq!(tape.value(tape.concat_rows(a, b)).shape(), &[4, 1]);
        let c = tape.concat_cols(a, b);
        assert_eq!(tape.value(c).data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn conv_identity_kernel() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32).collect()));
        // 1x1 kernel with weight 2: doubles the map.
        let w = tape.constant(Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]));
        let y = tape.conv2d(x, w, 0);
        assert_eq!(tape.value(y).shape(), &[1, 3, 3]);
        assert_eq!(tape.value(y).data()[4], 10.0);
    }

    #[test]
    fn conv_same_padding_shape() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[3, 8, 8]));
        let w = tape.constant(Tensor::zeros(&[5, 3, 3, 3]));
        let y = tape.conv2d(x, w, 1);
        assert_eq!(tape.value(y).shape(), &[5, 8, 8]);
    }

    #[test]
    fn maxpool_picks_maxima() {
        let tape = Tape::new();
        let x = tape
            .constant(Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 9.0, 2.0]));
        let y = tape.maxpool2d(x, 2);
        assert_eq!(tape.value(y).shape(), &[1, 1, 2]);
        assert_eq!(tape.value(y).data(), &[5.0, 9.0]);
    }

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let tape = Tape::new();
        let a = tape.constant(t2(&[&[1.0, 2.0]]));
        let b = tape.constant(t2(&[&[1.0, 2.0]]));
        assert_eq!(tape.value(mse(&tape, a, b)).data(), &[0.0]);
    }

    #[test]
    fn backward_through_simple_chain() {
        // loss = mean((2x)^2), dloss/dx = 8x / n
        let tape = Tape::new();
        let x = tape.constant(t2(&[&[1.0, -3.0]]));
        let y = x.scale(2.0);
        let loss = y.mul(y).mean();
        let grads = tape.backward(loss);
        let gx = grads.wrt(x.id()).unwrap();
        assert!((gx.data()[0] - 4.0).abs() < 1e-5);
        assert!((gx.data()[1] + 12.0).abs() < 1e-5);
    }

    /// Central finite-difference gradient check of a scalar-valued function
    /// of one tensor input.
    fn grad_check<F>(shape: &[usize], f: F)
    where
        F: for<'a> Fn(&'a Tape, Var<'a>) -> Var<'a>,
    {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x0 = Tensor::uniform(&mut rng, shape, 1.0);

        let eval = |t: &Tensor| -> f32 {
            let tape = Tape::new();
            let x = tape.constant(t.clone());
            tape.value(f(&tape, x)).data()[0]
        };

        let tape = Tape::new();
        let x = tape.constant(x0.clone());
        let loss = f(&tape, x);
        let grads = tape.backward(loss);
        let analytic = grads.wrt(x.id()).expect("input grad").clone();

        let eps = 3e-3;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (numeric - a).abs() <= 2e-2 * (1.0 + numeric.abs().max(a.abs())),
                "element {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn grad_check_matmul() {
        grad_check(&[3, 4], |tape, x| {
            let w = tape.constant(Tensor::full(&[4, 2], 0.5));
            x.matmul(w).mul(x.matmul(w)).mean()
        });
    }

    #[test]
    fn grad_check_relu_tanh() {
        grad_check(&[2, 5], |_tape, x| x.relu().tanh().mean());
    }

    #[test]
    fn grad_check_add_row_mul_row() {
        grad_check(&[3, 4], |tape, x| {
            let r = tape.constant(Tensor::from_vec(&[4], vec![0.5, -1.0, 2.0, 0.1]));
            x.add_row(r).mul_row(r).mean()
        });
    }

    #[test]
    fn grad_check_gather_segment_max() {
        grad_check(&[4, 3], |tape, x| {
            let g = tape.gather_rows(x, &[0, 2, 3, 1, 2]);
            let m = tape.segment_max(g, &[0, 0, 1, 1, 1], 2);
            m.mul(m).mean()
        });
    }

    #[test]
    fn grad_check_segment_sum_scale_rows() {
        grad_check(&[4, 3], |tape, x| {
            let s = tape.segment_sum(x, &[0, 1, 0, 1], 2);
            let m = tape.scale_rows(s, &[0.5, 2.0]);
            m.mul(m).mean()
        });
    }

    #[test]
    fn grad_check_concat() {
        grad_check(&[2, 3], |tape, x| {
            let rows = tape.concat_rows(x, x);
            let cols = tape.concat_cols(x, x);
            rows.mean().add(cols.mul(cols).mean())
        });
    }

    #[test]
    fn grad_check_conv_pool() {
        grad_check(&[2, 4, 4], |tape, x| {
            let w = tape.constant(Tensor::full(&[3, 2, 3, 3], 0.2));
            let b = tape.constant(Tensor::from_vec(&[3], vec![0.1, -0.1, 0.2]));
            let y = tape.conv2d(x, w, 1).add_channel(b).relu();
            let p = tape.maxpool2d(y, 2);
            p.mul(p).mean()
        });
    }

    #[test]
    fn grad_check_gather_multi() {
        grad_check(&[3, 2], |tape, x| {
            let y = x.scale(2.0);
            let g = tape.gather_multi(&[x, y], &[(0, 0), (1, 2), (0, 1), (1, 1)]);
            g.mul(g).mean()
        });
    }

    #[test]
    fn grad_check_reshape_sub() {
        grad_check(&[2, 6], |tape, x| {
            let y = x.reshape(&[3, 4]);
            let z = tape.constant(Tensor::full(&[3, 4], 0.3));
            let d = y.sub(z);
            d.mul(d).mean()
        });
    }

    #[test]
    fn grads_accumulate_on_reuse() {
        // loss = mean(x + x) -> dloss/dx = 2/n each.
        let tape = Tape::new();
        let x = tape.constant(t2(&[&[1.0, 1.0]]));
        let loss = x.add(x).mean();
        let grads = tape.backward(loss);
        let gx = grads.wrt(x.id()).unwrap();
        assert!((gx.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.constant(t2(&[&[1.0, 2.0]]));
        let _ = tape.backward(x);
    }
}
