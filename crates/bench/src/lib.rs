//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts `--scale {tiny|small|paper}` (default `small`),
//! optional `--epochs N`, and `--out DIR` (default `results/`). See
//! `EXPERIMENTS.md` for the mapping from paper artifact to binary.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use rtt_circgen::Scale;

/// Parsed command-line options common to all experiment binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Design/model scale.
    pub scale: Scale,
    /// Override for training epochs (meaning depends on the binary).
    pub epochs: Option<usize>,
    /// Output directory for reports and images.
    pub out: PathBuf,
    /// Where to write the JSON trace document, if requested.
    pub trace_out: Option<PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Self { scale: Scale::Small, epochs: None, out: PathBuf::from("results"), trace_out: None }
    }
}

impl Cli {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut cli = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    match v.parse::<Scale>() {
                        Ok(s) => cli.scale = s,
                        Err(e) => usage(&e),
                    }
                }
                "--epochs" => {
                    let v = args.next().unwrap_or_default();
                    match v.parse::<usize>() {
                        Ok(n) => cli.epochs = Some(n),
                        Err(e) => usage(&format!("bad epochs: {e}")),
                    }
                }
                "--out" => {
                    cli.out = PathBuf::from(args.next().unwrap_or_default());
                }
                "--trace-out" => match args.next() {
                    Some(v) if !v.is_empty() => cli.trace_out = Some(PathBuf::from(v)),
                    _ => usage("missing value for --trace-out"),
                },
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        cli
    }

    /// Writes a markdown report to `<out>/<name>.md` and echoes it to
    /// stdout.
    ///
    /// # Panics
    ///
    /// Panics if the output directory cannot be created or written.
    pub fn write_report(&self, name: &str, content: &str) {
        std::fs::create_dir_all(&self.out).expect("create output dir");
        let path = self.out.join(format!("{name}.md"));
        std::fs::write(&path, content).expect("write report");
        println!("{content}");
        eprintln!("[written to {}]", path.display());
    }

    /// Writes raw bytes (e.g. a PGM image) under the output directory.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_bytes(&self, rel: &str, bytes: &[u8]) {
        let path = self.out.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
        std::fs::write(&path, bytes).expect("write file");
        eprintln!("[written to {}]", path.display());
    }

    /// Writes the accumulated trace to `--trace-out` (no-op when unset).
    /// Call once, at the end of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the trace file cannot be written.
    pub fn finish_trace(&self) {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, rtt_obs::snapshot().to_json()).expect("write trace file");
            eprintln!("[trace written to {}]", path.display());
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|small|paper] [--epochs N] [--out DIR] [--trace-out FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_small_scale() {
        let c = Cli::default();
        assert_eq!(c.scale, Scale::Small);
        assert!(c.epochs.is_none());
        assert_eq!(c.out, PathBuf::from("results"));
    }
}
