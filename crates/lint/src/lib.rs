//! `rtt-lint` — workspace-specific determinism and robustness lints.
//!
//! A from-scratch static-analysis pass over this workspace's Rust sources:
//! a hand-rolled lexer (no `syn`; the build environment is offline) feeds
//! per-file token matchers plus a workspace-level call graph:
//!
//! | id   | checks |
//! |------|--------|
//! | D001 | HashMap/HashSet iteration in determinism-critical crates |
//! | D002 | ambient entropy (`thread_rng`, `SystemTime::now`, `Instant::now`) |
//! | D003 | exact float `==` / `!=` comparison |
//! | D004 | `par_iter()` reduced with `.sum()`/`.reduce()` (scheduling-order) |
//! | P001 | allocation reachable from a `// rtt-lint: hot` function |
//! | P002 | unhoisted bounds check in a hot function's inner loop |
//! | R001 | `unwrap()`/`expect()` in library code |
//! | R002 | `panic!`/`todo!`/`unimplemented!` in library code |
//! | R003 | panic site reachable from a `// rtt-lint: entry` function |
//! | U001 | `unsafe` without a `// SAFETY:` comment |
//!
//! D–U rules are per-file token matchers (v1); P/R003 run on a
//! conservative cross-crate call graph built by `parse` + `callgraph`
//! (v2). Findings are suppressed either inline
//! (`// rtt-lint: allow(D001, reason = "...")`) or through the checked-in
//! `lint-allow.toml` baseline; both channels require a reason, and
//! baseline entries that no longer match any finding are a hard error so
//! stale suppressions cannot rot silently.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use diag::{Finding, Rule};
pub use rules::{FileContext, FileKind};
pub use suppress::Baseline;

use std::path::Path;

/// Output of one lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Non-fatal problems: malformed suppressions, unreadable files.
    pub warnings: Vec<String>,
    /// Number of findings silenced by inline suppressions.
    pub suppressed_inline: usize,
    /// Number of findings silenced by the baseline.
    pub suppressed_baseline: usize,
    /// Number of files checked.
    pub files_checked: usize,
    /// `// rtt-lint: entry` functions found (R003 roots).
    pub entry_points: usize,
    /// `// rtt-lint: hot` functions found (P001/P002 roots).
    pub hot_fns: usize,
    /// Resolved call-graph edges.
    pub call_edges: usize,
}

/// Lints a set of `(context, source)` pairs as one unit: per-file rules
/// plus the cross-file call-graph rules over all of them together. This is
/// the core both `lint_source` and `lint_workspace` funnel through; the
/// baseline is **not** consulted here — only inline suppressions.
pub fn lint_files(files: &[(FileContext, &str)]) -> LintReport {
    let mut report = LintReport { files_checked: files.len(), ..LintReport::default() };
    let mut raw: Vec<Finding> = Vec::new();
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    // (path, allows) per file; graph findings are matched back by path.
    let mut allow_map: Vec<(String, Vec<suppress::InlineAllow>)> = Vec::new();
    for (ctx, source) in files {
        let lexed = lexer::lex(source);
        raw.extend(rules::check_file(&lexed, ctx, source));
        parsed.push(parse::parse_file(&lexed, ctx));
        let (allows, warnings) = suppress::parse_inline(&lexed.comments, &ctx.path);
        report.warnings.extend(warnings);
        allow_map.push((ctx.path.clone(), allows));
    }

    let graph = callgraph::CallGraph::build(&parsed);
    report.entry_points = graph.entry_count();
    report.hot_fns = graph.hot_count();
    report.call_edges = graph.edge_count();
    raw.extend(graph.check());

    for f in raw {
        let allows = allow_map
            .iter()
            .find(|(path, _)| *path == f.file)
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&[]);
        if allows.iter().any(|a| a.covers(f.rule, f.line)) {
            report.suppressed_inline += 1;
        } else {
            report.findings.push(f);
        }
    }
    sort_findings(&mut report.findings);
    report
}

/// Lints a single source string under an explicit context. This is the
/// entry point used by fixture tests. Call-graph rules see only this one
/// file (entries, hot fns, and callees must be in it).
pub fn lint_source(source: &str, ctx: &FileContext) -> LintReport {
    lint_files(&[(ctx.clone(), source)])
}

/// Lints every workspace source file under `root`, applying inline
/// suppressions and the `lint-allow.toml` baseline (when present). Errors
/// when a baseline entry matches no finding: stale suppressions must be
/// deleted, not carried.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let baseline = match std::fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("lint-allow.toml: {e}")),
    };
    let paths = walk::workspace_rs_files(root)?;
    let mut sources: Vec<(FileContext, String)> = Vec::new();
    let mut warnings = Vec::new();
    for path in paths {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().replace('\\', "/"),
        };
        match std::fs::read_to_string(&path) {
            Ok(s) => sources.push((walk::classify(&rel), s)),
            Err(e) => warnings.push(format!("{rel}: unreadable: {e}")),
        }
    }
    let refs: Vec<(FileContext, &str)> =
        sources.iter().map(|(ctx, s)| (ctx.clone(), s.as_str())).collect();
    let mut report = lint_files(&refs);
    report.warnings.extend(warnings);

    let mut used = vec![false; baseline.entries.len()];
    let mut findings = Vec::new();
    for f in std::mem::take(&mut report.findings) {
        let mut covered = false;
        for (i, e) in baseline.entries.iter().enumerate() {
            if e.rule == f.rule && e.path == f.file {
                used[i] = true;
                covered = true;
            }
        }
        if covered {
            report.suppressed_baseline += 1;
        } else {
            findings.push(f);
        }
    }
    report.findings = findings;

    let stale: Vec<String> = baseline
        .entries
        .iter()
        .zip(&used)
        .filter(|&(_, u)| !u)
        .map(|(e, _)| format!("{} in {}", e.rule, e.path))
        .collect();
    if !stale.is_empty() {
        return Err(format!(
            "lint-allow.toml has {} stale entr{} matching no finding (delete {}): {}",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
            if stale.len() == 1 { "it" } else { "them" },
            stale.join(", ")
        ));
    }
    sort_findings(&mut report.findings);
    Ok(report)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(crate_name: &str) -> FileContext {
        FileContext {
            path: format!("crates/{crate_name}/src/lib.rs"),
            crate_name: crate_name.to_owned(),
            determinism_critical: walk::DETERMINISM_CRITICAL.contains(&crate_name),
            kind: FileKind::Lib,
        }
    }

    #[test]
    fn inline_suppression_silences_and_counts() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
                   // rtt-lint: allow(D001, reason = \"sum is order-independent over ints\")\n\
                   m.values().sum()\n}\n";
        let report = lint_source(src, &lib_ctx("sta"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed_inline, 1);
    }

    #[test]
    fn findings_sorted_by_position() {
        let src =
            "fn f() {\n    let x = 1.0f32;\n    let b = x == 0.0;\n    let c = x != 1.0;\n}\n";
        let report = lint_source(src, &lib_ctx("sta"));
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].line < report.findings[1].line);
    }

    #[test]
    fn graph_rules_cross_files_and_report_stats() {
        let a_ctx = lib_ctx("core");
        let b_ctx = FileContext {
            path: "crates/nn/src/ops.rs".to_owned(),
            crate_name: "nn".to_owned(),
            determinism_critical: true,
            kind: FileKind::Lib,
        };
        let a = "// rtt-lint: entry\npub fn predict() { kernel(); }\n";
        // rtt-lint in `b`: unwrap is both R001 (per-file) and R003 (graph).
        let b = "pub fn kernel() { inner().unwrap(); }\n\
                 fn inner() -> Option<u32> { None }\n";
        let report = lint_files(&[(a_ctx, a), (b_ctx, b)]);
        assert_eq!(report.entry_points, 1);
        assert!(report.call_edges >= 2, "{}", report.call_edges);
        assert!(report.findings.iter().any(|f| f.rule == Rule::R003), "{:?}", report.findings);
        assert!(report.findings.iter().any(|f| f.rule == Rule::R001), "{:?}", report.findings);
    }

    #[test]
    fn inline_allow_covers_graph_findings_too() {
        let src = "// rtt-lint: entry\npub fn serve() {\n\
                   // rtt-lint: allow(R003, R001, reason = \"demo: both channels covered\")\n\
                   opt().unwrap();\n}\nfn opt() -> Option<u32> { None }\n";
        let report = lint_source(src, &lib_ctx("core"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed_inline, 2);
    }
}
