//! End-to-end tests of the three baselines on a small restructured design.

use std::collections::HashMap;

use rtt_baselines::{BaselineInputs, GuoConfig, GuoModel, TwoStageKind, TwoStageModel};
use rtt_circgen::GenParams;
use rtt_netlist::{CellLibrary, Netlist, PinId, TimingGraph};
use rtt_opt::{diff_netlists, optimize, OptConfig};
use rtt_place::{place, PlaceConfig, Placement};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, WireModel};

/// One design with its sign-off labels after a real optimize+route flow.
struct World {
    lib: CellLibrary,
    netlist: Netlist,
    placement: Placement,
    graph: TimingGraph,
    net_delays: HashMap<(PinId, PinId), f32>,
    cell_delays: HashMap<(PinId, PinId), f32>,
    arrivals: HashMap<PinId, f32>,
    endpoint_targets: Vec<f32>,
}

impl World {
    fn inputs(&self) -> BaselineInputs<'_> {
        BaselineInputs {
            name: "test",
            netlist: &self.netlist,
            library: &self.lib,
            placement: &self.placement,
            graph: &self.graph,
            signoff_net_delays: &self.net_delays,
            signoff_cell_delays: &self.cell_delays,
            signoff_arrivals: &self.arrivals,
            endpoint_targets: &self.endpoint_targets,
        }
    }
}

fn build_world(cells: usize, seed: u64) -> World {
    let lib = CellLibrary::asap7_like();
    let d = GenParams::new(format!("w{seed}"), cells, seed).generate(&lib);
    let input_netlist = d.netlist.clone();
    let input_placement = place(&input_netlist, &lib, 0, &PlaceConfig::default());

    // Sign-off flow: optimize a clone, then route + STA.
    let mut opt_netlist = d.netlist;
    let mut opt_placement = input_placement.clone();
    let pre_graph = TimingGraph::build(&input_netlist, &lib);
    let pre_rt = route(&input_netlist, &lib, &input_placement, &RouteConfig::default());
    let pre_sta = run_sta(&input_netlist, &lib, &pre_graph, WireModel::Routed(&pre_rt), 1.0);
    let period = pre_sta.max_arrival() * 0.6;
    optimize(
        &mut opt_netlist,
        &mut opt_placement,
        &lib,
        &OptConfig { clock_period_ps: period, ..OptConfig::default() },
    );
    let opt_graph = TimingGraph::build(&opt_netlist, &lib);
    let opt_rt = route(&opt_netlist, &lib, &opt_placement, &RouteConfig::default());
    let signoff = run_sta(&opt_netlist, &lib, &opt_graph, WireModel::Routed(&opt_rt), period);

    // Labels on survivors only.
    let diff = diff_netlists(&input_netlist, &opt_netlist, &lib);
    let mut net_delays = HashMap::new();
    for &(drv, snk) in diff.surviving_net_edges() {
        if let Some(d) = signoff.net_edge_delay(drv, snk) {
            net_delays.insert((drv, snk), d);
        }
    }
    let mut cell_delays = HashMap::new();
    for &(inp, out) in diff.surviving_cell_edges() {
        if let Some(d) = signoff.cell_edge_delay(inp, out) {
            cell_delays.insert((inp, out), d);
        }
    }
    let mut arrivals = HashMap::new();
    for (pid, _) in input_netlist.pins() {
        if opt_netlist.pin(pid).is_alive() {
            if let Some(a) = signoff.arrival(pid) {
                arrivals.insert(pid, a);
            }
        }
    }
    let endpoint_targets: Vec<f32> = pre_graph
        .endpoints()
        .iter()
        .map(|&v| {
            let pin = pre_graph.pin_of(v);
            signoff.arrival(pin).expect("endpoints always survive")
        })
        .collect();

    World {
        lib,
        netlist: input_netlist,
        placement: input_placement,
        graph: pre_graph,
        net_delays,
        cell_delays,
        arrivals,
        endpoint_targets,
    }
}

fn r2(pairs: &[(f32, f32)]) -> f32 {
    let n = pairs.len() as f32;
    let mean = pairs.iter().map(|p| p.1).sum::<f32>() / n;
    let ss_tot: f32 = pairs.iter().map(|p| (p.1 - mean).powi(2)).sum();
    let ss_res: f32 = pairs.iter().map(|p| (p.0 - p.1).powi(2)).sum();
    1.0 - ss_res / ss_tot.max(1e-9)
}

#[test]
fn labels_exist_only_on_survivors() {
    let w = build_world(250, 7);
    assert!(!w.net_delays.is_empty());
    assert!(!w.cell_delays.is_empty());
    // Some edges should be missing labels (they were replaced).
    let total_net_edges = w.graph.num_net_edges();
    assert!(
        w.net_delays.len() < total_net_edges,
        "no restructuring happened: {} == {total_net_edges}",
        w.net_delays.len()
    );
    assert_eq!(w.endpoint_targets.len(), w.graph.endpoints().len());
}

#[test]
fn two_stage_models_train_and_predict() {
    let w = build_world(250, 8);
    let inputs = w.inputs();
    for kind in [TwoStageKind::Dac19, TwoStageKind::Dac22He] {
        let mut model = TwoStageModel::new(kind, 1);
        model.train(&[&inputs], 60, 3e-3);
        let ep = model.predict_endpoints(&inputs);
        assert_eq!(ep.len(), w.endpoint_targets.len());
        assert!(ep.iter().all(|v| v.is_finite()));
        // After training on the same design, local fit should beat the
        // untrained model decisively.
        let local = model.local_eval(&inputs);
        assert!(!local.is_empty());
        let fit = r2(&local);
        assert!(fit > 0.0, "{} local R² = {fit}", kind.label());
        // Endpoint prediction correlates with truth at least grossly.
        let pairs: Vec<(f32, f32)> =
            ep.into_iter().zip(w.endpoint_targets.iter().copied()).collect();
        let er2 = r2(&pairs);
        assert!(er2 > -1.0, "{} endpoint R² = {er2}", kind.label());
    }
}

#[test]
fn guo_model_trains_and_predicts() {
    let w = build_world(220, 9);
    let inputs = w.inputs();
    let mut model = GuoModel::new(GuoConfig::default());
    model.train(&[&inputs], 40, 3e-3);
    let ep = model.predict_endpoints(&inputs);
    assert_eq!(ep.len(), w.endpoint_targets.len());
    assert!(ep.iter().all(|v| v.is_finite()));
    let pairs: Vec<(f32, f32)> = ep.into_iter().zip(w.endpoint_targets.iter().copied()).collect();
    let er2 = r2(&pairs);
    assert!(er2 > 0.0, "guo train-set endpoint R² = {er2}");
    let (net_pairs, cell_pairs) = model.local_eval(&inputs);
    assert!(!net_pairs.is_empty());
    assert!(!cell_pairs.is_empty());
}

#[test]
fn stage_labels_compose_cell_and_net() {
    let w = build_world(150, 10);
    let inputs = w.inputs();
    let mut found_composite = false;
    for (&(drv, snk), &net_d) in &w.net_delays {
        if let Some(stage) = inputs.stage_label(drv, snk) {
            assert!(stage >= net_d - 1e-4, "stage must include the net part");
            if stage > net_d + 1e-4 {
                found_composite = true;
            }
        }
    }
    assert!(found_composite, "no stage included a cell delay");
}
