//! The chaos suite: every fault mode at once, and the daemon must not
//! care.
//!
//! Invariants asserted here (the PR's acceptance bar):
//! * no worker panics (`worker_panics == 0` on the final snapshot);
//! * no stuck worker — the daemon keeps answering after the storm and
//!   shuts down (drains and joins) within a watchdog budget;
//! * every byte a client receives is a well-formed HTTP/1.1 response
//!   prefix — truncation by injected disconnect is legal, garbage is
//!   not;
//! * a corrupt hot-reload is refused and the old model keeps serving;
//! * predictions over HTTP are **bit-identical** to the library path
//!   before, during, and after the storm.
//!
//! Set `RTT_CHAOS_SECS=30` to soak: the storm loops until the clock
//! runs out (nightly CI does this).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtt_circgen::ripple_carry_adder;
use rtt_core::model_io::save_model;
use rtt_core::{ModelConfig, PreparedDesign, TimingModel};
use rtt_netlist::{CellLibrary, TimingGraph};
use rtt_nn::InferCtx;
use rtt_place::{place, PlaceConfig};
use rtt_serve::{FaultMode, FaultSpec, ServeConfig, Server};

/// A small but non-trivial design plus a deterministic model.
fn fixture() -> (TimingModel, PreparedDesign) {
    let lib = CellLibrary::asap7_like();
    let nl = ripple_carry_adder(8, &lib);
    let pl = place(&nl, &lib, 0, &PlaceConfig::default());
    let graph = TimingGraph::build(&nl, &lib);
    let cfg = ModelConfig::tiny();
    let targets = vec![0.0f32; graph.endpoints().len()];
    let prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, targets);
    (TimingModel::new(cfg), prep)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtt-serve-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// What one HTTP exchange produced from the client's point of view.
enum Exchange {
    /// Full response: status plus body (exactly `Content-Length` bytes).
    Complete(u16, Vec<u8>),
    /// The connection died early; whatever prefix arrived was verified
    /// to look like an HTTP response (or nothing arrived at all).
    Died,
}

/// Sends raw bytes, reads the response, and enforces the "well-formed
/// or clean close" contract on whatever comes back.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Exchange {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return Exchange::Died;
    };
    let timeout = Some(Duration::from_millis(2_000));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return Exchange::Died;
    }
    if stream.write_all(raw).is_err() {
        // The server may have closed mid-upload (injected disconnect);
        // fall through and still try to read what it said.
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let complete = loop {
        if let Some((status, head_len, body_len)) = response_head(&buf) {
            if buf.len() >= head_len + body_len {
                break Some((status, buf[head_len..head_len + body_len].to_vec()));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break None,
        }
    };
    // The contract: anything the daemon sent must be an HTTP response
    // prefix. Arbitrary garbage or a non-HTTP byte stream is a failure
    // even when the connection died before the response finished.
    if !buf.is_empty() {
        let head = b"HTTP/1.1 ";
        let check = buf.len().min(head.len());
        assert_eq!(
            &buf[..check],
            &head[..check],
            "daemon sent a non-HTTP prefix: {:?}",
            String::from_utf8_lossy(&buf[..buf.len().min(64)])
        );
    }
    match complete {
        Some((status, body)) => Exchange::Complete(status, body),
        None => Exchange::Died,
    }
}

/// Parses a response head: (status, head bytes, declared body bytes).
fn response_head(buf: &[u8]) -> Option<(u16, usize, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let body_len = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())?;
    Some((status, head_end, body_len))
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").into_bytes()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Parses a 200 `/predict` body into prediction bits.
fn parse_predict(body: &[u8]) -> Vec<u32> {
    let text = std::str::from_utf8(body).expect("predict body is utf-8");
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
        .expect("n= line");
    lines.next().and_then(|l| l.strip_prefix("generation=")).expect("generation= line");
    let preds: Vec<u32> = lines.map(|l| l.parse::<f32>().expect("float line").to_bits()).collect();
    assert_eq!(preds.len(), n, "body line count matches n=");
    preds
}

/// Retries an exchange until a complete response with `status` arrives
/// (fault injection can kill any individual attempt).
fn until_complete(addr: SocketAddr, raw: &[u8], status: u16, tries: usize) -> Vec<u8> {
    for _ in 0..tries {
        if let Exchange::Complete(got, body) = exchange(addr, raw) {
            if got == status {
                return body;
            }
        }
    }
    panic!("no complete {status} response after {tries} attempts");
}

#[test]
fn chaos_storm_never_panics_never_wedges_and_stays_bit_identical() {
    let (model, prep) = fixture();
    let expected: Vec<u32> = {
        let ctx = InferCtx::new();
        let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
        model.predict_batch(&ctx, &prep, &all).iter().map(|p| p.to_bits()).collect()
    };

    let dir = tmpdir("storm");
    let weights = dir.join("model.rttm");
    std::fs::write(&weights, save_model(&model)).expect("write weights");

    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 8,
        deadline_ms: 1_500,
        io_timeout_ms: 100,
        weights_path: Some(weights),
        faults: FaultSpec::new(0xC4A05)
            .mode(FaultMode::ShortRead, 0.10)
            .mode(FaultMode::ShortWrite, 0.10)
            .mode(FaultMode::Disconnect, 0.05)
            .mode(FaultMode::Stall, 0.05)
            .mode(FaultMode::QueueFull, 0.10)
            .mode(FaultMode::CorruptReload, 0.50)
            .stall_ms(5)
            .build(),
        ..ServeConfig::default()
    };
    let mut server =
        Server::start(cfg, model, vec![("rca8".to_owned(), prep)]).expect("daemon starts");
    let addr = server.addr();

    // Before the storm: HTTP answers must match the library bit-for-bit.
    let body = until_complete(addr, &post("/predict", "design=rca8\n"), 200, 200);
    assert_eq!(parse_predict(&body), expected, "pre-chaos bit-identity");

    let soak_secs: u64 =
        std::env::var("RTT_CHAOS_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let storm_until = Instant::now() + Duration::from_secs(soak_secs.max(1));
    let matched = Arc::new(AtomicU64::new(0));
    loop {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let expected = expected.clone();
                let matched = Arc::clone(&matched);
                std::thread::spawn(move || {
                    for round in 0..12 {
                        let pick = (client * 31 + round * 7) % 10;
                        match pick {
                            0 | 1 | 2 => {
                                // /predict under fire: any COMPLETE 200
                                // must carry bit-exact predictions.
                                let raw = post("/predict", "design=rca8\n");
                                if let Exchange::Complete(200, body) = exchange(addr, &raw) {
                                    assert_eq!(
                                        parse_predict(&body),
                                        expected,
                                        "mid-chaos bit-identity"
                                    );
                                    matched.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            3 => {
                                let raw = post("/predict", "design=rca8\nindices=0,3,1\n");
                                if let Exchange::Complete(200, body) = exchange(addr, &raw) {
                                    let got = parse_predict(&body);
                                    let want = [expected[0], expected[3], expected[1]];
                                    assert_eq!(got, want, "subset bit-identity");
                                }
                            }
                            4 => drop(exchange(addr, &get("/stats"))),
                            5 => drop(exchange(addr, &get("/healthz"))),
                            6 => {
                                // Hot-reload under fire; half the reads
                                // come back corrupted and must be refused
                                // without disturbing serving.
                                drop(exchange(addr, &post("/reload", "")));
                            }
                            7 => {
                                // Malformed request: typed 4xx, no panic.
                                drop(exchange(addr, b"NOT HTTP AT ALL\r\n\r\n"));
                            }
                            8 => {
                                // Client gives up mid-request.
                                if let Ok(mut s) = TcpStream::connect(addr) {
                                    drop(s.write_all(b"POST /predict HTTP/1.1\r\nContent-Le"));
                                }
                            }
                            _ => {
                                // Connection burst against the bounded
                                // queue; rejects must be clean 503s.
                                let conns: Vec<_> =
                                    (0..6).filter_map(|_| TcpStream::connect(addr).ok()).collect();
                                drop(conns);
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        if Instant::now() >= storm_until {
            break;
        }
    }
    assert!(
        matched.load(Ordering::Relaxed) > 0,
        "at least one full /predict must survive the storm"
    );

    // After the storm: the daemon still answers (no stuck worker), the
    // model is still generation-consistent, and predictions still match.
    let body = until_complete(addr, &get("/healthz"), 200, 200);
    assert_eq!(body, b"ok\n");
    let body = until_complete(addr, &post("/predict", "design=rca8\n"), 200, 200);
    assert_eq!(parse_predict(&body), expected, "post-chaos bit-identity");
    let stats = until_complete(addr, &get("/stats"), 200, 200);
    let doc = rtt_obs::json::Value::parse(std::str::from_utf8(&stats).expect("utf-8"))
        .expect("stats is valid json");
    assert_eq!(
        doc.get("worker_panics"),
        Some(&rtt_obs::json::Value::Num("0".into())),
        "no worker may panic under chaos: {doc}"
    );

    // Graceful shutdown must drain and join within the watchdog budget.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let report = server.shutdown();
        drop(tx.send(report));
    });
    let report = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("shutdown drained and joined (no wedged worker)");
    assert_eq!(report.stats.worker_panics, 0);
    drop(std::fs::remove_dir_all(dir));
}

#[test]
fn corrupt_hot_reload_keeps_the_old_model_serving() {
    let (model, prep) = fixture();
    let expected: Vec<u32> = {
        let ctx = InferCtx::new();
        let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
        model.predict_batch(&ctx, &prep, &all).iter().map(|p| p.to_bits()).collect()
    };
    let dir = tmpdir("reload");
    let weights = dir.join("model.rttm");
    std::fs::write(&weights, save_model(&model)).expect("write weights");

    // Every reload read comes back corrupted.
    let cfg = ServeConfig {
        weights_path: Some(weights),
        faults: FaultSpec::new(11).mode(FaultMode::CorruptReload, 1.0).build(),
        ..ServeConfig::default()
    };
    let mut server =
        Server::start(cfg, model, vec![("d".to_owned(), prep)]).expect("daemon starts");
    let addr = server.addr();

    for _ in 0..3 {
        let body = until_complete(addr, &post("/reload", ""), 422, 50);
        let text = String::from_utf8_lossy(&body);
        assert!(text.contains("rejected"), "typed rejection, got: {text}");
    }

    // The old model never stopped serving, bit-for-bit.
    let body = until_complete(addr, &post("/predict", ""), 200, 50);
    assert_eq!(parse_predict(&body), expected, "old model keeps serving after corrupt reloads");

    // And /stats reports the failure for operators.
    let stats = until_complete(addr, &get("/stats"), 200, 50);
    let doc = rtt_obs::json::Value::parse(std::str::from_utf8(&stats).expect("utf-8"))
        .expect("stats json");
    assert_eq!(doc.get("reloads_ok"), Some(&rtt_obs::json::Value::Num("0".into())));
    assert_eq!(doc.get("generation"), Some(&rtt_obs::json::Value::Num("1".into())));
    match doc.get("reloads_failed") {
        Some(rtt_obs::json::Value::Num(n)) => {
            assert!(n.parse::<u64>().expect("number") >= 3, "reloads_failed={n}")
        }
        other => panic!("reloads_failed missing: {other:?}"),
    }
    assert!(
        matches!(doc.get("last_reload_error"), Some(rtt_obs::json::Value::Str(_))),
        "last_reload_error must carry the typed error"
    );

    server.shutdown();
    drop(std::fs::remove_dir_all(dir));
}
