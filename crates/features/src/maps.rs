//! The three layout feature maps of Fig. 5.

use rtt_netlist::{CellId, CellLibrary, Net, NetId, Netlist};
use rtt_place::{density_map, Grid, Placement, Rect};
use rtt_route::rudy_map;

/// The stacked layout input of the CNN: cell density, RUDY, macro region.
#[derive(Clone, Debug)]
pub struct LayoutMaps {
    /// Standard-cell density (placed area / bin area).
    pub density: Grid,
    /// Rectangular uniform wire density.
    pub rudy: Grid,
    /// Macro coverage fraction per bin.
    pub macros: Grid,
}

impl LayoutMaps {
    /// Extracts all three maps at `grid × grid` resolution (the paper uses
    /// 512; the default experiment scale uses 64).
    pub fn extract(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        grid: usize,
    ) -> Self {
        rtt_obs::span!("features::layout_maps");
        let density = density_map(netlist, library, placement, grid, grid);
        let rudy = rudy_map(netlist, placement, grid, grid);
        let mut macros = Grid::new(grid, grid, placement.floorplan().die);
        for m in &placement.floorplan().macros {
            macros.splat(*m, m.area());
        }
        macros.normalize_by_bin_area();
        Self { density, rudy, macros }
    }

    /// Grid edge length in bins.
    pub fn grid(&self) -> usize {
        self.density.width()
    }

    /// Updates the maps in place from `before` to `after`, recomputing
    /// only the bins a cell or net change can have touched.
    ///
    /// Both map rasterizers are per-bin accumulations over a documented
    /// deterministic scan order (cells, then nets, each in id order), so
    /// a dirty bin can be re-summed from scratch over `after`'s
    /// contributors and land bit-identical to a cold
    /// [`LayoutMaps::extract`]; clean bins receive the exact same
    /// contribution sequence in both worlds and are left untouched. A
    /// changed contributor dirties every bin its old *or* new footprint
    /// covers, which is what keeps clean bins clean. A floorplan change
    /// falls back to a full re-extract.
    ///
    /// Both netlists must share an id space (`after` produced by mutating
    /// a clone of `before`).
    ///
    /// Returns `(bins_recomputed, bins_total)` across the three channels.
    pub fn update_delta(
        &mut self,
        before: (&Netlist, &Placement),
        after: (&Netlist, &Placement),
        library: &CellLibrary,
    ) -> (u64, u64) {
        rtt_obs::span!("features::layout_maps_delta");
        let (bnl, bpl) = before;
        let (anl, apl) = after;
        let grid = self.grid();
        let gg = grid * grid;
        let total = (3 * gg) as u64;
        if bpl.floorplan().die != apl.floorplan().die
            || bpl.floorplan().macros != apl.floorplan().macros
        {
            *self = LayoutMaps::extract(anl, library, apl, grid);
            return (total, total);
        }

        let geom = Grid::new(grid, grid, apl.floorplan().die);
        let (bw, bh) = geom.bin_size();
        let bin_area = bw * bh;

        // Density: a cell's contribution is (bin, area); any change in
        // either dirties both the old and the new bin.
        let cell_sig = |nl: &Netlist, pl: &Placement, ci: usize| -> Option<(usize, u32)> {
            if ci >= nl.cell_capacity() {
                return None;
            }
            let cell = nl.cell(CellId::from_index(ci));
            if !cell.is_alive() {
                return None;
            }
            let p = pl.cell_pos(CellId::from_index(ci));
            let (bx, by) = geom.bin_of(p.x, p.y);
            Some((by * grid + bx, library.cell_type(cell.type_id).area_um2.to_bits()))
        };
        let mut dens_dirty = vec![false; gg];
        let mut any_dens = false;
        for ci in 0..bnl.cell_capacity().max(anl.cell_capacity()) {
            let (b, a) = (cell_sig(bnl, bpl, ci), cell_sig(anl, apl, ci));
            if b != a {
                any_dens = true;
                if let Some((bin, _)) = b {
                    dens_dirty[bin] = true;
                }
                if let Some((bin, _)) = a {
                    dens_dirty[bin] = true;
                }
            }
        }
        if any_dens {
            for (bin, dirty) in dens_dirty.iter().enumerate() {
                if *dirty {
                    self.density.values_mut()[bin] = 0.0;
                }
            }
            for (cid, cell) in anl.cells() {
                let p = apl.cell_pos(cid);
                let (bx, by) = geom.bin_of(p.x, p.y);
                let bin = by * grid + bx;
                if dens_dirty[bin] {
                    self.density.values_mut()[bin] += library.cell_type(cell.type_id).area_um2;
                }
            }
            for (bin, dirty) in dens_dirty.iter().enumerate() {
                if *dirty {
                    self.density.values_mut()[bin] /= bin_area;
                }
            }
        }

        // RUDY: a net's contribution is fully determined by its splat
        // arguments (bbox, hpwl); any change dirties every bin the old
        // and new splats touch.
        let net_sig = |nl: &Netlist, pl: &Placement, ni: usize| -> Option<(Rect, f32)> {
            if ni >= nl.net_capacity() {
                return None;
            }
            let net = nl.net(NetId::from_index(ni));
            if !net.is_alive() {
                return None;
            }
            Some(net_splat_args(nl, pl, net))
        };
        let sig_bits = |s: &Option<(Rect, f32)>| {
            s.as_ref().map(|(r, h)| {
                (r.x0.to_bits(), r.y0.to_bits(), r.x1.to_bits(), r.y1.to_bits(), h.to_bits())
            })
        };
        let mut rudy_dirty = vec![false; gg];
        let mut any_rudy = false;
        for ni in 0..bnl.net_capacity().max(anl.net_capacity()) {
            let (b, a) = (net_sig(bnl, bpl, ni), net_sig(anl, apl, ni));
            if sig_bits(&b) != sig_bits(&a) {
                any_rudy = true;
                for (r, hpwl) in [&b, &a].into_iter().flatten() {
                    if *hpwl > 0.0 {
                        mark_splat_bins(&geom, *r, grid, &mut rudy_dirty);
                    }
                }
            }
        }
        if any_rudy {
            for (bin, dirty) in rudy_dirty.iter().enumerate() {
                if *dirty {
                    self.rudy.values_mut()[bin] = 0.0;
                }
            }
            for (_, net) in anl.nets() {
                let (r, hpwl) = net_splat_args(anl, apl, net);
                if hpwl > 0.0 {
                    self.rudy.splat_masked(r, hpwl, &rudy_dirty);
                }
            }
            for (bin, dirty) in rudy_dirty.iter().enumerate() {
                if *dirty {
                    self.rudy.values_mut()[bin] /= bin_area;
                }
            }
        }

        // Macro map: a pure function of the (unchanged) floorplan.
        let recomputed =
            dens_dirty.iter().filter(|&&d| d).count() + rudy_dirty.iter().filter(|&&d| d).count();
        (recomputed as u64, total)
    }

    /// Stacks the three maps into a max-normalized `[3, G, G]` row-major
    /// buffer, ready to become the CNN input tensor.
    ///
    /// Called after every [`Self::update_delta`] too: max-normalization
    /// is global, so it is always recomputed from the (delta-maintained)
    /// raw maps rather than patched.
    pub fn stacked(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 * self.density.values().len());
        for map in [&self.density, &self.rudy, &self.macros] {
            let mut normalized = map.clone();
            normalized.normalize_max();
            out.extend_from_slice(normalized.values());
        }
        out
    }
}

/// The exact splat arguments `rtt_route::rudy_map` derives for one net:
/// the pin bounding box (accumulated in driver-then-sinks order, so the
/// min/max rounding matches) and its half-perimeter wirelength.
fn net_splat_args(netlist: &Netlist, placement: &Placement, net: &Net) -> (Rect, f32) {
    let mut r = {
        let d = placement.pin_position(netlist, net.driver);
        Rect::new(d.x, d.y, d.x, d.y)
    };
    for &s in &net.sinks {
        let p = placement.pin_position(netlist, s);
        r = Rect::new(r.x0.min(p.x), r.y0.min(p.y), r.x1.max(p.x), r.y1.max(p.y));
    }
    (r, r.width() + r.height())
}

/// Marks every bin a `Grid::splat(r, _)` call would touch, including the
/// degenerate single-bin branch for zero-area rectangles.
fn mark_splat_bins(geom: &Grid, r: Rect, grid: usize, dirty: &mut [bool]) {
    if r.area() <= 0.0 {
        let (x, y) = geom.bin_of(r.x0, r.y0);
        dirty[y * grid + x] = true;
        return;
    }
    let (x0, y0) = geom.bin_of(r.x0, r.y0);
    let (x1, y1) = geom.bin_of(r.x1, r.y1);
    for y in y0..=y1 {
        for x in x0..=x1 {
            dirty[y * grid + x] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::GenParams;
    use rtt_place::{place, PlaceConfig};

    fn world(macros: usize) -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("m", 300, 9).generate(&lib);
        let pl = place(&d.netlist, &lib, macros, &PlaceConfig::default());
        (lib, d.netlist, pl)
    }

    #[test]
    fn maps_share_resolution_and_die() {
        let (lib, nl, pl) = world(1);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 16);
        assert_eq!(maps.grid(), 16);
        assert_eq!(maps.density.die(), maps.rudy.die());
        assert_eq!(maps.stacked().len(), 3 * 16 * 16);
    }

    #[test]
    fn macro_map_reflects_macro_bins() {
        let (lib, nl, pl) = world(2);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 32);
        let m = &pl.floorplan().macros[0];
        let c = m.center();
        let (bx, by) = maps.macros.bin_of(c.x, c.y);
        assert!(maps.macros.at(bx, by) > 0.5, "macro interior bin not covered");
        // A macro-free design yields an all-zero macro map.
        let (lib2, nl2, pl2) = world(0);
        let maps2 = LayoutMaps::extract(&nl2, &lib2, &pl2, 16);
        assert_eq!(maps2.macros.total(), 0.0);
    }

    #[test]
    fn stacked_channels_are_normalized() {
        let (lib, nl, pl) = world(1);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 16);
        let s = maps.stacked();
        for ch in 0..3 {
            let chan = &s[ch * 256..(ch + 1) * 256];
            let max = chan.iter().copied().fold(0.0f32, f32::max);
            assert!(max <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn delta_update_matches_cold_extract_bitwise() {
        let (lib, nl, pl) = world(1);
        let mut nl2 = nl.clone();
        let mut pl2 = pl.clone();
        // Retype one combinational cell (area change) and move another.
        let combs: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(cid, _)| cid)
            .collect();
        let gate = lib.cell_type(nl.cell(combs[0]).type_id).gate;
        nl2.resize_cell(combs[0], lib.pick(gate, 8).unwrap(), &lib).unwrap();
        let die = pl.floorplan().die;
        pl2.place_cell(combs[1], die.center());

        let mut maps = LayoutMaps::extract(&nl, &lib, &pl, 16);
        let (recomputed, total) = maps.update_delta((&nl, &pl), (&nl2, &pl2), &lib);
        assert!(recomputed > 0, "a retype + move must dirty some bins");
        assert!(recomputed < total, "a local edit must not dirty every bin");
        let cold = LayoutMaps::extract(&nl2, &lib, &pl2, 16);
        for (d, c) in
            [(&maps.density, &cold.density), (&maps.rudy, &cold.rudy), (&maps.macros, &cold.macros)]
        {
            for (a, b) in d.values().iter().zip(c.values()) {
                assert_eq!(a.to_bits(), b.to_bits(), "delta map diverged from cold extract");
            }
        }
        // A no-op delta recomputes nothing.
        let (zero, _) = maps.update_delta((&nl2, &pl2), (&nl2, &pl2), &lib);
        assert_eq!(zero, 0);
    }

    #[test]
    fn density_is_higher_where_cells_cluster() {
        let (lib, nl, pl) = world(0);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 8);
        assert!(maps.density.max() > maps.density.total() / 64.0, "no density contrast");
    }
}
