//! CLI for `rtt-lint`.
//!
//! ```text
//! cargo run -p rtt-lint --release [-- --root <dir>] [--format text|json]
//! ```
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 operational error.

#![allow(clippy::print_stdout)]

use rtt_lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format must be `text` or `json`"),
            },
            "--help" | "-h" => {
                println!(
                    "rtt-lint: workspace determinism & robustness lints\n\n\
                     USAGE: rtt-lint [--root <dir>] [--format text|json]\n\n\
                     Exit codes: 0 clean, 1 findings, 2 error"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // When invoked via `cargo run` the cwd is the workspace root already;
    // fall back to the manifest's grandparent so the binary also works when
    // launched from inside a crate directory.
    if !root.join("Cargo.toml").is_file() {
        eprintln!("rtt-lint: no Cargo.toml under `{}`", root.display());
        return ExitCode::from(2);
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rtt-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for w in &report.warnings {
        eprintln!("warning: {w}");
    }

    match format {
        Format::Json => {
            println!("{{");
            println!("  \"files_checked\": {},", report.files_checked);
            println!("  \"suppressed_inline\": {},", report.suppressed_inline);
            println!("  \"suppressed_baseline\": {},", report.suppressed_baseline);
            println!("  \"entry_points\": {},", report.entry_points);
            println!("  \"hot_fns\": {},", report.hot_fns);
            println!("  \"call_edges\": {},", report.call_edges);
            println!("  \"findings\": [");
            for (i, f) in report.findings.iter().enumerate() {
                let comma = if i + 1 < report.findings.len() { "," } else { "" };
                println!("    {}{comma}", f.render_json());
            }
            println!("  ]");
            println!("}}");
        }
        Format::Text => {
            for f in &report.findings {
                println!("{}", f.render_text());
            }
            println!(
                "rtt-lint: {} file(s) checked, {} finding(s), {} suppressed inline, {} baselined; \
                 call graph: {} entry point(s), {} hot fn(s), {} edge(s)",
                report.files_checked,
                report.findings.len(),
                report.suppressed_inline,
                report.suppressed_baseline,
                report.entry_points,
                report.hot_fns,
                report.call_edges,
            );
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rtt-lint: {msg}\nUSAGE: rtt-lint [--root <dir>] [--format text|json]");
    ExitCode::from(2)
}
