//! Error type for netlist construction and mutation.

use std::error::Error;
use std::fmt;

use crate::{CellId, NetId, PinId};

/// Errors raised by netlist construction, mutation, or validation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A pin was connected as a sink of two different nets.
    SinkAlreadyConnected(PinId),
    /// A pin was used as the driver of two different nets.
    DriverAlreadyConnected(PinId),
    /// The referenced entity has been removed (tombstoned).
    Dead(&'static str, u32),
    /// Net has no sinks, which is not allowed for connected nets.
    EmptyNet(NetId),
    /// A combinational cycle was found while levelizing the timing graph.
    CombinationalCycle {
        /// Number of pins left unlevelized when propagation stalled.
        unresolved: usize,
    },
    /// Resize attempted across different gate functions.
    ResizeChangesFunction(CellId),
    /// A pin direction did not match its use (e.g. input pin used as driver).
    DirectionMismatch(PinId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SinkAlreadyConnected(p) => {
                write!(f, "pin {p} is already a sink of another net")
            }
            Self::DriverAlreadyConnected(p) => {
                write!(f, "pin {p} already drives another net")
            }
            Self::Dead(kind, id) => write!(f, "{kind} {id} has been removed"),
            Self::EmptyNet(n) => write!(f, "net {n} has no sinks"),
            Self::CombinationalCycle { unresolved } => {
                write!(f, "combinational cycle: {unresolved} pins could not be levelized")
            }
            Self::ResizeChangesFunction(c) => {
                write!(f, "resize of cell {c} would change its logic function")
            }
            Self::DirectionMismatch(p) => {
                write!(f, "pin {p} used against its direction")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            NetlistError::SinkAlreadyConnected(PinId(1)).to_string(),
            NetlistError::DriverAlreadyConnected(PinId(2)).to_string(),
            NetlistError::Dead("cell", 3).to_string(),
            NetlistError::EmptyNet(NetId(4)).to_string(),
            NetlistError::CombinationalCycle { unresolved: 5 }.to_string(),
            NetlistError::ResizeChangesFunction(CellId(6)).to_string(),
            NetlistError::DirectionMismatch(PinId(7)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
