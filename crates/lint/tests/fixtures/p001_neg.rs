//! P001 negative: the hot kernel writes in place; the allocating
//! function exists but is neither hot nor reachable from a hot fn.

// rtt-lint: hot
pub fn kernel_fixture(v: &mut [f32]) {
    for x in v.iter_mut() {
        *x += 1.0;
    }
}

pub fn cold_fixture(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}
