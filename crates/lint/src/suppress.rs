//! Inline suppressions and the checked-in `lint-allow.toml` baseline.
//!
//! Two suppression channels exist so that *new* debt stays visible while
//! *pre-existing* debt is enumerated rather than hidden:
//!
//! * **Inline**: `// rtt-lint: allow(D001, reason = "keys sorted above")`
//!   on the finding's line or the line directly above it. A reason is
//!   mandatory; reasonless suppressions are ignored and reported.
//! * **Baseline**: `[[allow]]` entries in `lint-allow.toml` at the
//!   workspace root, keyed by rule id and file path, each with a reason.

use crate::diag::Rule;
use crate::lexer::Comment;

/// One parsed inline suppression.
#[derive(Clone, Debug)]
pub struct InlineAllow {
    /// Rules this suppression covers.
    pub rules: Vec<Rule>,
    /// Mandatory justification.
    pub reason: String,
    /// Line the suppression comment starts on.
    pub line: u32,
    /// `true` when the comment trails code (applies to its own line only).
    pub trailing: bool,
}

impl InlineAllow {
    /// `true` if this suppression covers `rule` at `line`.
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        if !self.rules.contains(&rule) {
            return false;
        }
        if self.trailing {
            line == self.line
        } else {
            line == self.line || line == self.line + 1
        }
    }
}

/// Extracts inline suppressions from a file's comments. Malformed
/// suppressions (unknown rule, missing reason) are returned as warnings so
/// they fail loudly instead of silently not applying.
pub fn parse_inline(comments: &[Comment], file: &str) -> (Vec<InlineAllow>, Vec<String>) {
    let mut allows = Vec::new();
    let mut warnings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("rtt-lint:") else { continue };
        // `hot` / `entry` are function markers consumed by the parser
        // (`crate::parse`), not suppressions.
        if matches!(rest.trim(), "hot" | "entry") {
            continue;
        }
        match parse_allow_clause(rest.trim()) {
            Ok((rules, reason)) => {
                allows.push(InlineAllow { rules, reason, line: c.line, trailing: c.trailing })
            }
            Err(why) => warnings.push(format!("{file}:{}: ignored suppression: {why}", c.line)),
        }
    }
    (allows, warnings)
}

/// Parses `allow(D001, D003, reason = "...")`.
fn parse_allow_clause(s: &str) -> Result<(Vec<Rule>, String), String> {
    let Some(body) = s.strip_prefix("allow").map(str::trim_start) else {
        return Err("expected `allow(...)`".to_owned());
    };
    let Some(body) = body.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_owned());
    };
    let Some(body) = body.trim_end().strip_suffix(')') else {
        return Err("missing closing `)`".to_owned());
    };
    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_top_level(body) {
        let part = part.trim();
        if let Some(val) = part.strip_prefix("reason") {
            let val = val.trim_start();
            let Some(val) = val.strip_prefix('=') else {
                return Err("expected `reason = \"...\"`".to_owned());
            };
            let val = val.trim();
            let unquoted = val.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
            match unquoted {
                Some(r) if !r.trim().is_empty() => reason = Some(r.trim().to_owned()),
                _ => return Err("reason must be a non-empty quoted string".to_owned()),
            }
        } else if let Some(rule) = Rule::parse(part) {
            rules.push(rule);
        } else if !part.is_empty() {
            return Err(format!("unknown rule id `{part}`"));
        }
    }
    if rules.is_empty() {
        return Err("no rule ids listed".to_owned());
    }
    match reason {
        Some(r) => Ok((rules, r)),
        None => Err("missing mandatory `reason = \"...\"`".to_owned()),
    }
}

/// Splits on commas that are not inside a quoted string, so reasons may
/// contain commas.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                cur.push(c);
                in_str = !in_str;
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// One baseline entry: every finding of `rule` in `path` is tolerated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id this entry tolerates.
    pub rule: Rule,
    /// Repo-relative file path, forward slashes.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed `lint-allow.toml` baseline.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// All entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// `true` if the baseline tolerates `rule` in `file`.
    pub fn covers(&self, rule: Rule, file: &str) -> bool {
        self.entries.iter().any(|e| e.rule == rule && e.path == file)
    }

    /// Parses the TOML subset used by `lint-allow.toml`: `[[allow]]`
    /// headers followed by `key = "value"` string pairs. Anything else is
    /// an error — the baseline is security-relevant configuration and must
    /// not half-parse.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut cur: Option<(Option<Rule>, Option<String>, Option<String>)> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = cur.take() {
                    entries.push(finish_entry(done, lineno)?);
                }
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!("lint-allow.toml:{lineno}: expected `key = \"value\"`"));
            };
            let Some(slot) = cur.as_mut() else {
                return Err(format!("lint-allow.toml:{lineno}: key outside an [[allow]] entry"));
            };
            let val = val.trim();
            let Some(val) = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(format!("lint-allow.toml:{lineno}: value must be a quoted string"));
            };
            match key.trim() {
                "rule" => match Rule::parse(val) {
                    Some(r) => slot.0 = Some(r),
                    None => {
                        return Err(format!("lint-allow.toml:{lineno}: unknown rule id `{val}`"))
                    }
                },
                "path" => slot.1 = Some(val.to_owned()),
                "reason" => slot.2 = Some(val.to_owned()),
                other => {
                    return Err(format!("lint-allow.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(done) = cur.take() {
            entries.push(finish_entry(done, text.lines().count())?);
        }
        Ok(Baseline { entries })
    }
}

fn finish_entry(
    (rule, path, reason): (Option<Rule>, Option<String>, Option<String>),
    lineno: usize,
) -> Result<BaselineEntry, String> {
    let (Some(rule), Some(path), Some(reason)) = (rule, path, reason) else {
        return Err(format!(
            "lint-allow.toml: entry ending near line {lineno} needs `rule`, `path`, and `reason`"
        ));
    };
    if reason.trim().is_empty() {
        return Err(format!("lint-allow.toml: entry near line {lineno} has an empty reason"));
    }
    Ok(BaselineEntry { rule, path, reason })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn inline_suppression_parses_and_covers() {
        let src = "// rtt-lint: allow(D001, reason = \"keys sorted above\")\nfor k in m.keys() {}";
        let l = lex(src);
        let (allows, warns) = parse_inline(&l.comments, "x.rs");
        assert!(warns.is_empty());
        assert_eq!(allows.len(), 1);
        assert!(allows[0].covers(Rule::D001, 2));
        assert!(!allows[0].covers(Rule::D001, 3));
        assert!(!allows[0].covers(Rule::D003, 2));
    }

    #[test]
    fn trailing_suppression_covers_own_line_only() {
        let src = "let x = m.keys(); // rtt-lint: allow(D001, reason = \"sorted, see above\")";
        let l = lex(src);
        let (allows, _) = parse_inline(&l.comments, "x.rs");
        assert!(allows[0].covers(Rule::D001, 1));
        assert!(!allows[0].covers(Rule::D001, 2));
    }

    #[test]
    fn reasonless_or_unknown_suppressions_warn() {
        for bad in [
            "// rtt-lint: allow(D001)",
            "// rtt-lint: allow(D001, reason = \"\")",
            "// rtt-lint: allow(Z123, reason = \"x\")",
            "// rtt-lint: allow(reason = \"x\")",
        ] {
            let l = lex(bad);
            let (allows, warns) = parse_inline(&l.comments, "x.rs");
            assert!(allows.is_empty(), "{bad}");
            assert_eq!(warns.len(), 1, "{bad}");
        }
    }

    #[test]
    fn hot_and_entry_markers_are_not_warnings() {
        let src = "// rtt-lint: hot\nfn k() {}\n// rtt-lint: entry\nfn e() {}\n";
        let (allows, warns) = parse_inline(&lex(src).comments, "x.rs");
        assert!(allows.is_empty());
        assert!(warns.is_empty(), "{warns:?}");
    }

    #[test]
    fn multi_rule_suppression_with_comma_in_reason() {
        let src = "// rtt-lint: allow(D001, D003, reason = \"a, b, and c\")\nx";
        let (allows, warns) = parse_inline(&lex(src).comments, "x.rs");
        assert!(warns.is_empty());
        assert_eq!(allows[0].rules, vec![Rule::D001, Rule::D003]);
        assert_eq!(allows[0].reason, "a, b, and c");
    }

    #[test]
    fn baseline_parses_and_covers() {
        let text = "# debt ledger\n[[allow]]\nrule = \"R001\"\npath = \"crates/a/src/lib.rs\"\n\
                    reason = \"documented panic\"\n\n[[allow]]\nrule = \"D003\"\n\
                    path = \"crates/b/src/x.rs\"\nreason = \"exact sentinel\"\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.entries.len(), 2);
        assert!(b.covers(Rule::R001, "crates/a/src/lib.rs"));
        assert!(!b.covers(Rule::R001, "crates/b/src/x.rs"));
        assert!(b.covers(Rule::D003, "crates/b/src/x.rs"));
    }

    #[test]
    fn baseline_rejects_malformed_entries() {
        assert!(Baseline::parse("[[allow]]\nrule = \"R001\"\n").is_err());
        assert!(Baseline::parse("rule = \"R001\"\n").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = \"WAT\"\npath = \"x\"\nreason = \"r\"").is_err());
        assert!(Baseline::parse("[[allow]]\nrule = R001\npath = \"x\"\nreason = \"r\"").is_err());
        assert!(Baseline::parse("").map(|b| b.entries.is_empty()).unwrap_or(false));
    }
}
