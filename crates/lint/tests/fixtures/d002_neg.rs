// D002 negative: seeded rng, timestamps passed in from the boundary.
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn report(elapsed_secs: f64) -> String {
    format!("took {elapsed_secs:.3}s")
}
