//! R003 positive: the entry point reaches a panic site in another file
//! (and another crate — `helper_lookup` lives in `r003_helper.rs`).

// rtt-lint: entry
pub fn serve_fixture() {
    helper_lookup();
}
