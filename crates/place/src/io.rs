//! Plain-text placement interchange (a DEF-like subset).
//!
//! Format, one record per line:
//!
//! ```text
//! DIE <x0> <y0> <x1> <y1>
//! MACRO <x0> <y0> <x1> <y1>
//! CELL <instance-name> <x> <y>
//! PORT <port-name> <x> <y>
//! ```
//!
//! Together with the structural-Verilog writer in `rtt-netlist`, this lets
//! a placed design leave and re-enter the flow as text.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rtt_netlist::Netlist;

use crate::{Floorplan, Placement, Point, Rect};

/// Errors raised while parsing a placement file.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlacementIoError {
    /// A line did not match `KEYWORD fields...`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The file had no `DIE` record.
    MissingDie,
    /// A `CELL` record named an instance not present in the netlist.
    UnknownCell(String),
    /// A `PORT` record named a port not present in the netlist.
    UnknownPort(String),
    /// A live cell of the netlist had no `CELL` record.
    UnplacedCell(String),
}

impl fmt::Display for PlacementIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed { line, message } => {
                write!(f, "malformed placement on line {line}: {message}")
            }
            Self::MissingDie => write!(f, "placement file has no DIE record"),
            Self::UnknownCell(n) => write!(f, "placement names unknown cell `{n}`"),
            Self::UnknownPort(n) => write!(f, "placement names unknown port `{n}`"),
            Self::UnplacedCell(n) => write!(f, "netlist cell `{n}` has no placement"),
        }
    }
}

impl Error for PlacementIoError {}

/// Serializes a placement against its netlist.
pub fn write_placement(netlist: &Netlist, placement: &Placement) -> String {
    let mut out = String::new();
    let die = placement.floorplan().die;
    out.push_str(&format!("DIE {} {} {} {}\n", die.x0, die.y0, die.x1, die.y1));
    for m in &placement.floorplan().macros {
        out.push_str(&format!("MACRO {} {} {} {}\n", m.x0, m.y0, m.x1, m.y1));
    }
    for (cid, cell) in netlist.cells() {
        let p = placement.cell_pos(cid);
        out.push_str(&format!("CELL {} {} {}\n", cell.name, p.x, p.y));
    }
    for &pid in netlist.input_ports().iter().chain(netlist.output_ports()) {
        if netlist.pin(pid).is_alive() {
            let p = placement.pin_position(netlist, pid);
            out.push_str(&format!("PORT {} {} {}\n", netlist.pin(pid).name, p.x, p.y));
        }
    }
    out
}

/// Parses a placement file against `netlist`.
///
/// # Errors
///
/// Returns a [`PlacementIoError`] if records are malformed, reference
/// unknown entities, or any live cell is left unplaced.
pub fn parse_placement(netlist: &Netlist, text: &str) -> Result<Placement, PlacementIoError> {
    let mut die: Option<Rect> = None;
    let mut macros = Vec::new();
    let mut cell_pos: HashMap<&str, Point> = HashMap::new();
    let mut port_pos: HashMap<&str, Point> = HashMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        // The line was trimmed and checked non-empty, so a first field
        // always exists; stay fallible anyway — this runs on the serving
        // path (R003).
        let Some(kind) = fields.next() else { continue };
        let rest: Vec<&str> = fields.collect();
        let num = |s: &str| -> Result<f32, PlacementIoError> {
            s.parse().map_err(|_| PlacementIoError::Malformed {
                line: line_no,
                message: format!("expected a number, got `{s}`"),
            })
        };
        match kind {
            "DIE" | "MACRO" => {
                if rest.len() != 4 {
                    return Err(PlacementIoError::Malformed {
                        line: line_no,
                        message: format!("{kind} needs 4 coordinates"),
                    });
                }
                let r = Rect::new(num(rest[0])?, num(rest[1])?, num(rest[2])?, num(rest[3])?);
                if kind == "DIE" {
                    die = Some(r);
                } else {
                    macros.push(r);
                }
            }
            "CELL" | "PORT" => {
                if rest.len() != 3 {
                    return Err(PlacementIoError::Malformed {
                        line: line_no,
                        message: format!("{kind} needs a name and 2 coordinates"),
                    });
                }
                let p = Point::new(num(rest[1])?, num(rest[2])?);
                if kind == "CELL" {
                    cell_pos.insert(rest[0], p);
                } else {
                    port_pos.insert(rest[0], p);
                }
            }
            other => {
                return Err(PlacementIoError::Malformed {
                    line: line_no,
                    message: format!("unknown record `{other}`"),
                })
            }
        }
    }

    let die = die.ok_or(PlacementIoError::MissingDie)?;
    let mut placement = Placement::empty(Floorplan { die, macros }, netlist);
    // Reject names that match nothing in the netlist.
    let known_cells: HashMap<&str, rtt_netlist::CellId> =
        netlist.cells().map(|(id, c)| (c.name.as_str(), id)).collect();
    for (&name, &p) in &cell_pos {
        let id = known_cells
            .get(name)
            .copied()
            .ok_or_else(|| PlacementIoError::UnknownCell(name.to_owned()))?;
        placement.place_cell(id, p);
    }
    for (&name, &p) in &port_pos {
        let pid = netlist
            .input_ports()
            .iter()
            .chain(netlist.output_ports())
            .copied()
            .find(|&pid| netlist.pin(pid).name == name)
            .ok_or_else(|| PlacementIoError::UnknownPort(name.to_owned()))?;
        placement.place_port(pid, p);
    }
    // Completeness: every live cell must be placed.
    for (_, cell) in netlist.cells() {
        if !cell_pos.contains_key(cell.name.as_str()) {
            return Err(PlacementIoError::UnplacedCell(cell.name.clone()));
        }
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, PlaceConfig};
    use rtt_circgen::ripple_carry_adder;
    use rtt_netlist::CellLibrary;

    fn world() -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        (lib, nl, pl)
    }

    #[test]
    fn roundtrip_preserves_positions() {
        let (_, nl, pl) = world();
        let text = write_placement(&nl, &pl);
        let back = parse_placement(&nl, &text).unwrap();
        for (cid, _) in nl.cells() {
            let a = pl.cell_pos(cid);
            let b = back.cell_pos(cid);
            assert!((a.x - b.x).abs() < 1e-4 && (a.y - b.y).abs() < 1e-4);
        }
        for &pid in nl.input_ports() {
            let a = pl.pin_position(&nl, pid);
            let b = back.pin_position(&nl, pid);
            assert!((a.x - b.x).abs() < 1e-4 && (a.y - b.y).abs() < 1e-4);
        }
        assert_eq!(back.floorplan().die, pl.floorplan().die);
    }

    #[test]
    fn rejects_unknown_names() {
        let (_, nl, pl) = world();
        let mut text = write_placement(&nl, &pl);
        text.push_str("CELL ghost 1 1\n");
        assert!(matches!(parse_placement(&nl, &text), Err(PlacementIoError::UnknownCell(_))));
    }

    #[test]
    fn rejects_missing_die_and_incomplete_placement() {
        let (_, nl, pl) = world();
        let text = write_placement(&nl, &pl);
        let without_die: String =
            text.lines().filter(|l| !l.starts_with("DIE")).collect::<Vec<_>>().join("\n");
        assert!(matches!(parse_placement(&nl, &without_die), Err(PlacementIoError::MissingDie)));

        let first_cell_dropped: String = {
            let mut dropped = false;
            text.lines()
                .filter(|l| {
                    if !dropped && l.starts_with("CELL") {
                        dropped = true;
                        false
                    } else {
                        true
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert!(matches!(
            parse_placement(&nl, &first_cell_dropped),
            Err(PlacementIoError::UnplacedCell(_))
        ));
    }

    #[test]
    fn malformed_lines_report_position() {
        let (_, nl, _) = world();
        match parse_placement(&nl, "DIE 0 0 10\n") {
            Err(PlacementIoError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected malformed, got {other:?}"),
        }
        match parse_placement(&nl, "DIE 0 0 10 10\nBOGUS 1\n") {
            Err(PlacementIoError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let (_, nl, pl) = world();
        let mut text = String::from("# placement file\n\n");
        text.push_str(&write_placement(&nl, &pl));
        assert!(parse_placement(&nl, &text).is_ok());
    }
}
