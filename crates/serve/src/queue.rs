//! A bounded, closeable MPMC queue — the daemon's only buffer between
//! the acceptor and the worker pool.
//!
//! The capacity bound is the backpressure mechanism: when the queue is
//! full, [`Queue::try_push`] hands the item straight back and the
//! acceptor answers `503` + `Retry-After` inline, so a flood of clients
//! costs one rejected connection each instead of unbounded memory.
//! [`Queue::close`] is the shutdown half: pushes start failing, but
//! waiting poppers drain everything already queued before observing
//! `None` — exactly the "stop accepting, finish in-flight" drain order
//! graceful shutdown needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// A bounded multi-producer / multi-consumer queue with explicit close.
#[derive(Debug)]
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Queue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking. Returns the item when the queue is
    /// full or closed so the caller can reject it explicitly.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available. Returns `None` only once the
    /// queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, poppers drain what remains
    /// and then receive `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_rejects_when_full() {
        let q = Queue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue must hand the item back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "popping frees a slot");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Queue::new(4);
        q.try_push("a").expect("push");
        q.try_push("b").expect("push");
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some("a"), "close must not drop queued work");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained + closed ends the stream");
        assert_eq!(q.pop(), None, "and stays ended");
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(Queue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).expect("push");
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
