//! Regenerates **Table II**: R² comparison of the three prior baselines
//! (DAC19, DAC22-he, DAC22-guo) and our CNN-only / GNN-only / full models
//! on the held-out test designs.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use rtt_bench::Cli;
use rtt_circgen::Scale;
use rtt_core::{ModelConfig, TrainConfig};
use rtt_flow::tables::{render_table2, table2, table2_average, Table2Config};
use rtt_flow::{Dataset, FlowConfig};

fn main() {
    let cli = Cli::parse();
    eprintln!("[table2] generating dataset at scale {} ...", cli.scale);
    let dataset = Dataset::generate(&FlowConfig { scale: cli.scale, ..FlowConfig::default() });

    let (model, epochs, two_stage, guo) = match cli.scale {
        Scale::Tiny => (ModelConfig::tiny(), 40, 80, 10),
        // Huge scales the circuits for prepare benchmarks, not the model.
        Scale::Small | Scale::Huge => (ModelConfig::small(), 300, 800, 120),
        Scale::Paper => (ModelConfig::paper(), 200, 2000, 200),
    };
    let epochs = cli.epochs.unwrap_or(epochs);
    let cfg = Table2Config {
        model,
        train: TrainConfig { epochs, lr: 2e-3, log_every: 25, ..TrainConfig::default() },
        two_stage_epochs: two_stage,
        guo_epochs: guo,
        ..Table2Config::default()
    };
    eprintln!("[table2] training all methods ({epochs} epochs for ours) ...");
    let mut rows = table2(&dataset, &cfg);
    rows.push(table2_average(&rows));

    let mut report = format!(
        "# Table II (scale: {}, {} epochs)\n\nLeft columns: local delay R² on unreplaced \
         elements. Right columns: endpoint arrival R².\n\n",
        cli.scale, epochs
    );
    report.push_str(&render_table2(&rows));
    cli.write_report("table2", &report);
    cli.finish_trace();
}
