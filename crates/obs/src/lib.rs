//! `rtt-obs` — a zero-dependency, deterministic tracing + metrics layer.
//!
//! The pipeline crates (circgen → place → route → sta → features → nn →
//! core → flow) record *where time goes* and *how much work was done*
//! through a process-global registry:
//!
//! - **Spans** ([`span`], [`root_span`], [`span!`]) form a tree of
//!   `"/"`-joined paths (`"flow::design_flow/sta::run/sta::propagate"`).
//!   Each path accumulates a call count, total wall time, and optional
//!   per-span counters attached via [`SpanGuard::add`].
//! - **Flat counters** ([`add`], [`add_many`], static [`Counter`]s) are
//!   order-independent `u64` sums for hot paths (matmul flops, zero-skip
//!   tallies, arena bytes) where span bookkeeping would be too costly or
//!   the call site runs inside a parallel region. Per-kernel-call sites
//!   use a static [`Counter`] (lock-free relaxed atomic); the string-keyed
//!   [`add`]/[`add_many`] are for cold orchestration code.
//! - **Gauges** ([`gauge`]) and **series** ([`series_push`]) hold `f64`
//!   point values and ordered time series (per-epoch loss/R²/MAE). They
//!   may only be written from serial orchestration code.
//!
//! # Determinism contract
//!
//! The span *tree* (set of paths, call counts, counter values) and all
//! flat counters are bit-identical across `RTT_THREADS` settings; only
//! recorded durations may differ. Three rules make this hold under the
//! workspace's order-preserving parallel layer (see DESIGN.md):
//!
//! 1. Any closure executed by a parallel fan-out (`par_iter` and
//!    friends) must open a [`root_span`] before opening child spans.
//!    Worker threads inherit an empty span stack while the calling
//!    thread keeps its ambient stack, so a plain nested [`span`] would
//!    parent differently depending on which thread ran the closure.
//! 2. Hot-path metrics inside parallel regions use flat counters only:
//!    `u64` addition commutes, so the final sums are independent of
//!    execution order and thread count.
//! 3. Gauges and series are written from serial code only (they are
//!    last-write / ordered-append and would otherwise race).
//!
//! `rtt-lint` cannot check these rules mechanically; they are enforced
//! by the tier-1 test `tests/observability.rs`, which runs the pipeline
//! at 1 and 4 threads and compares [`Snapshot::structure_json`] output.
//!
//! # Exporters
//!
//! [`Snapshot::render_tree`] produces a human-readable tree (the CLI
//! prints it to stderr under `--trace`); [`Snapshot::to_json`] produces
//! a JSON document whose `"structure"` member holds the deterministic
//! part and whose `"timing_ms"` member holds per-path durations, so
//! structural comparison is "parse, take `structure`, compare". The
//! [`json`] module has the matching zero-dependency parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Accumulated statistics for one span path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of times a span with this exact path was closed.
    pub count: u64,
    /// Total wall time spent inside the span, in nanoseconds. The only
    /// field excluded from the determinism contract.
    pub total_ns: u128,
    /// Per-span counters attached with [`SpanGuard::add`].
    pub counters: BTreeMap<String, u64>,
}

/// A point-in-time copy of the global registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Span statistics keyed by the `"/"`-joined span path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Flat order-independent counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges (serial writers only).
    pub gauges: BTreeMap<String, f64>,
    /// Ordered time series (serial writers only).
    pub series: BTreeMap<String, Vec<f64>>,
}

#[derive(Default)]
struct Registry {
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// A poisoned registry only means another thread panicked mid-update of
/// plain counters; the data stays structurally valid, so keep going.
fn lock() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The current span path of this thread, `"/"`-joined.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Returns whether recording is enabled (it is by default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording. Disabling mid-run leaves the
/// registry partially filled; pair with [`reset`] when re-enabling.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every span, counter, gauge, and series, including the values
/// of registered static [`Counter`]s.
pub fn reset() {
    *lock() = Registry::default();
    let statics = static_counters().lock().unwrap_or_else(PoisonError::into_inner);
    for c in statics.iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

fn static_counters() -> &'static Mutex<Vec<&'static Counter>> {
    static STATICS: OnceLock<Mutex<Vec<&'static Counter>>> = OnceLock::new();
    // rtt-lint: allow(P001, reason = "registry vec is created once per process, not per call")
    STATICS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A flat global counter cheap enough for per-kernel-call hot paths: one
/// relaxed atomic add per bump, no lock and no map lookup. Declare as a
/// `static` and bump with [`Counter::add`]:
///
/// ```
/// static FLOPS: rtt_obs::Counter = rtt_obs::Counter::new("nn::matmul_flops");
/// FLOPS.add(128);
/// ```
///
/// Values merge into the flat-counter section of [`snapshot`] (omitted
/// while zero, matching the behavior of a never-touched [`add`] key).
/// Like every flat counter, `u64` sums commute, so hot counters keep the
/// cross-thread-count determinism contract.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates an unregistered counter; registration happens on first
    /// [`Counter::add`].
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `delta`. Safe from any thread and any parallel region.
    pub fn add(&'static self, delta: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Ordering::Acquire) {
            let mut statics = static_counters().lock().unwrap_or_else(PoisonError::into_inner);
            // Double-checked under the lock so a racing first add cannot
            // register the counter twice.
            if !self.registered.load(Ordering::Relaxed) {
                // rtt-lint: allow(P001, reason = "lazy registration runs once per counter name")
                statics.push(self);
                self.registered.store(true, Ordering::Release);
            }
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }
}

/// Opens a span nested under the current thread's innermost open span.
/// The returned guard records the elapsed wall time and increments the
/// path's call count when dropped. Guards must be dropped in LIFO order
/// (which plain scoping guarantees).
///
/// Inside a closure run by a parallel fan-out, open a [`root_span`]
/// first — see the crate-level determinism contract.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { prev_len: 0, path_end: 0, start: None, _not_send: PhantomData };
    }
    let (prev_len, path_end) = PATH.with(|p| {
        let mut buf = p.borrow_mut();
        let prev = buf.len();
        if !buf.is_empty() {
            buf.push('/');
        }
        buf.push_str(name);
        (prev, buf.len())
    });
    // rtt-lint: allow(D002, reason = "span wall time is the measured quantity; excluded from the determinism contract")
    SpanGuard { prev_len, path_end, start: Some(Instant::now()), _not_send: PhantomData }
}

/// Opens a span as a new tree root, hiding the calling thread's ambient
/// span stack for the guard's lifetime. Required at the entry of any
/// unit of work executed by a parallel fan-out, so the recorded path is
/// the same whether the closure runs inline, on the caller (chunk 0),
/// or on a worker thread.
pub fn root_span(name: &str) -> RootGuard {
    if !enabled() {
        return RootGuard { inner: None, saved: None, _not_send: PhantomData };
    }
    let saved = PATH.with(|p| std::mem::take(&mut *p.borrow_mut()));
    RootGuard { inner: Some(span(name)), saved: Some(saved), _not_send: PhantomData }
}

/// Opens a [`span`] bound to a hidden local that lives until the end of
/// the enclosing block: `rtt_obs::span!("sta::propagate");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _rtt_obs_span = $crate::span($name);
    };
}

/// RAII guard for one open span; see [`span`].
pub struct SpanGuard {
    prev_len: usize,
    path_end: usize,
    start: Option<Instant>,
    /// Span guards manipulate a thread-local path stack and must stay
    /// on the thread that opened them.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Adds `delta` to a counter attached to this span's path.
    ///
    /// Counters added here are part of the determinism contract: the
    /// per-path sums must not depend on thread count, which holds
    /// whenever the spans themselves follow the [`root_span`] rule.
    pub fn add(&self, counter: &str, delta: u64) {
        if self.start.is_none() {
            return;
        }
        let path = PATH.with(|p| p.borrow()[..self.path_end].to_owned());
        let mut reg = lock();
        let slot =
            reg.spans.entry(path).or_default().counters.entry(counter.to_owned()).or_default();
        *slot += delta;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos();
        let path = PATH.with(|p| {
            let mut buf = p.borrow_mut();
            let path = buf[..self.path_end].to_owned();
            buf.truncate(self.prev_len);
            path
        });
        let mut reg = lock();
        let stats = reg.spans.entry(path).or_default();
        stats.count += 1;
        stats.total_ns += elapsed_ns;
    }
}

/// RAII guard for a detached root span; see [`root_span`].
pub struct RootGuard {
    inner: Option<SpanGuard>,
    saved: Option<String>,
    _not_send: PhantomData<*const ()>,
}

impl RootGuard {
    /// Adds `delta` to a counter attached to this root span's path.
    pub fn add(&self, counter: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.add(counter, delta);
        }
    }
}

impl Drop for RootGuard {
    fn drop(&mut self) {
        // Close the root span first, then restore the ambient stack.
        self.inner = None;
        if let Some(saved) = self.saved.take() {
            PATH.with(|p| *p.borrow_mut() = saved);
        }
    }
}

/// Adds `delta` to a flat global counter. Safe from any thread and any
/// parallel region: `u64` sums commute, so the result is independent of
/// execution order.
pub fn add(counter: &str, delta: u64) {
    if !enabled() {
        return;
    }
    *lock().counters.entry(counter.to_owned()).or_default() += delta;
}

/// Adds several flat counters under a single registry lock. Prefer this
/// in hot paths: tally locally, then flush once per call.
pub fn add_many(deltas: &[(&str, u64)]) {
    if !enabled() || deltas.is_empty() {
        return;
    }
    let mut reg = lock();
    for &(counter, delta) in deltas {
        *reg.counters.entry(counter.to_owned()).or_default() += delta;
    }
}

/// Sets a last-write gauge. Serial orchestration code only — gauge
/// writes from parallel regions would race and break the determinism
/// contract.
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    lock().gauges.insert(name.to_owned(), value);
}

/// Appends one value to an ordered series (e.g. per-epoch loss). Serial
/// orchestration code only, for the same reason as [`gauge`].
pub fn series_push(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    lock().series.entry(name.to_owned()).or_default().push(value);
}

/// A bounded, thread-safe sample ring for live quantile queries — the
/// serving layer's latency series.
///
/// Unlike [`series_push`], whose series grow without bound (fine for
/// per-epoch loss curves, fatal for per-request latencies under heavy
/// traffic), a `Ring` keeps only the most recent `capacity` samples and
/// overwrites the oldest. `push` is one short mutex hold and no
/// allocation after construction, so it can sit on a request hot path;
/// `quantile` copies the window out and sorts, so it belongs on query
/// paths (`/stats`), not hot ones.
#[derive(Debug)]
pub struct Ring {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    buf: Vec<f64>,
    /// Next write position (wraps at `buf.capacity()`).
    next: usize,
    /// Total samples ever pushed (≥ `buf.len()`).
    count: u64,
}

impl Ring {
    /// Creates a ring holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity.max(1)),
                next: 0,
                count: 0,
            }),
        }
    }

    /// Records one sample, evicting the oldest once full.
    pub fn push(&self, value: f64) {
        let mut r = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if r.buf.len() < r.buf.capacity() {
            r.buf.push(value);
        } else {
            let i = r.next;
            r.buf[i] = value;
        }
        r.next = (r.next + 1) % r.buf.capacity().max(1);
        r.count += 1;
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).buf.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn count(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).count
    }

    /// The `q`-quantile (`0.0..=1.0`, nearest-rank) of the current
    /// window, or `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut window = {
            let r = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            r.buf.clone()
        };
        if window.is_empty() {
            return None;
        }
        window.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * (window.len() - 1) as f64).round() as usize;
        window.get(rank).copied()
    }

    /// Largest sample in the current window, or `None` while empty.
    pub fn max(&self) -> Option<f64> {
        let r = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        r.buf.iter().copied().max_by(f64::total_cmp)
    }
}

/// Copies the current registry contents, merging in every registered
/// static [`Counter`] with a nonzero value.
pub fn snapshot() -> Snapshot {
    let mut snap = {
        let reg = lock();
        Snapshot {
            spans: reg.spans.clone(),
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            series: reg.series.clone(),
        }
    };
    let statics = static_counters().lock().unwrap_or_else(PoisonError::into_inner);
    for c in statics.iter() {
        let v = c.value.load(Ordering::Relaxed);
        if v > 0 {
            *snap.counters.entry(c.name.to_owned()).or_default() += v;
        }
    }
    snap
}

impl Snapshot {
    /// Renders a human-readable span tree plus counter/gauge/series
    /// sections; the CLI prints this to stderr under `--trace`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans (count, total ms):\n");
        }
        for (path, stats) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let ms = stats.total_ns as f64 / 1e6;
            out.push_str(&format!(
                "{:indent$}{name:<width$} x{:<7} {ms:>12.3} ms",
                "",
                stats.count,
                indent = depth * 2,
                width = 44usize.saturating_sub(depth * 2),
            ));
            for (k, v) in &stats.counters {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<46} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<46} {v}\n"));
            }
        }
        if !self.series.is_empty() {
            out.push_str("series:\n");
            for (k, vs) in &self.series {
                out.push_str(&format!("  {k:<46} {} points", vs.len()));
                if let (Some(first), Some(last)) = (vs.first(), vs.last()) {
                    out.push_str(&format!(" (first {first}, last {last})"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the deterministic part of the snapshot (spans without
    /// durations, counters, gauges, series) as canonical JSON. Two runs
    /// that obey the determinism contract produce byte-identical output
    /// regardless of `RTT_THREADS`.
    pub fn structure_json(&self) -> String {
        let mut out = String::new();
        self.write_structure(&mut out);
        out
    }

    /// Serializes the full snapshot as JSON: `{"version": 1,
    /// "structure": ..., "timing_ms": {path: ms}}`. Only `timing_ms`
    /// may differ between runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"structure\":");
        self.write_structure(&mut out);
        out.push_str(",\"timing_ms\":{");
        for (i, (path, stats)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, path);
            out.push(':');
            out.push_str(&format!("{:.6}", stats.total_ns as f64 / 1e6));
        }
        out.push_str("}}");
        out
    }

    fn write_structure(&self, out: &mut String) {
        out.push_str("{\"spans\":{");
        for (i, (path, stats)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, path);
            out.push_str(&format!(":{{\"count\":{},\"counters\":{{", stats.count));
            for (j, (k, v)) in stats.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_string(out, k);
                out.push_str(&format!(":{v}"));
            }
            out.push_str("}}");
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, k);
            out.push(':');
            json::write_f64(out, *v);
        }
        out.push_str("},\"series\":{");
        for (i, (k, vs)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, k);
            out.push_str(":[");
            for (j, v) in vs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_f64(out, *v);
            }
            out.push(']');
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and `cargo test` runs tests in
    /// parallel, so every test that resets or snapshots the registry
    /// serializes on this lock.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let _g = test_lock();
        reset();
        {
            let outer = span("outer");
            outer.add("widgets", 3);
            {
                span!("inner");
            }
            {
                span!("inner");
            }
        }
        let snap = snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer"].counters["widgets"], 3);
        assert_eq!(snap.spans["outer/inner"].count, 2);
    }

    #[test]
    fn root_span_detaches_from_ambient_stack() {
        let _g = test_lock();
        reset();
        {
            span!("ambient");
            {
                let r = root_span("detached");
                r.add("n", 1);
                span!("child");
            }
            span!("after");
        }
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.keys().map(String::as_str).collect();
        assert_eq!(paths, ["ambient", "ambient/after", "detached", "detached/child"]);
        assert_eq!(snap.spans["detached"].counters["n"], 1);
    }

    #[test]
    fn flat_counters_gauges_series_round_trip() {
        let _g = test_lock();
        reset();
        add("a", 2);
        add_many(&[("a", 3), ("b", 1)]);
        gauge("g", 0.5);
        series_push("s", 1.0);
        series_push("s", 2.0);
        let snap = snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.counters["b"], 1);
        assert!((snap.gauges["g"] - 0.5).abs() < 1e-12);
        assert_eq!(snap.series["s"].len(), 2);
    }

    #[test]
    fn static_counters_register_merge_and_reset() {
        let _g = test_lock();
        reset();
        static WIDGETS: Counter = Counter::new("static::widgets");
        static UNTOUCHED: Counter = Counter::new("static::untouched");
        WIDGETS.add(2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| WIDGETS.add(25));
            }
        });
        // Map counters with the same name merge additively.
        add("static::widgets", 1);
        let snap = snapshot();
        assert_eq!(snap.counters["static::widgets"], 103);
        assert!(!snap.counters.contains_key("static::untouched"), "zero counters are omitted");
        let _ = &UNTOUCHED;
        reset();
        assert!(!snapshot().counters.contains_key("static::widgets"));
    }

    #[test]
    fn counters_sum_identically_across_threads() {
        let _g = test_lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(snapshot().counters["hits"], 400);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_lock();
        reset();
        set_enabled(false);
        {
            span!("ghost");
            add("ghost", 1);
        }
        set_enabled(true);
        let snap = snapshot();
        assert!(snap.spans.is_empty() && snap.counters.is_empty());
    }

    #[test]
    fn structure_json_parses_and_omits_durations() {
        let _g = test_lock();
        reset();
        {
            let g = span("stage \"q\"");
            g.add("pins", 7);
        }
        gauge("nan_gauge", f64::NAN);
        let snap = snapshot();
        let structure = json::Value::parse(&snap.structure_json()).expect("valid JSON");
        assert!(snap.structure_json().contains("\\\""), "span name must be escaped");
        assert!(structure.get("spans").is_some());
        let full = json::Value::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(full.get("structure"), Some(&structure));
        assert!(full.get("timing_ms").is_some());
    }

    #[test]
    fn snapshot_render_tree_lists_all_sections() {
        let _g = test_lock();
        reset();
        {
            span!("top");
        }
        add("c", 1);
        gauge("g", 1.5);
        series_push("s", 3.0);
        let text = snapshot().render_tree();
        for needle in ["spans", "top", "counters:", "gauges:", "series:", "1 points"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn ring_quantiles_over_a_bounded_window() {
        let ring = Ring::new(4);
        assert!(ring.is_empty());
        assert_eq!(ring.quantile(0.5), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            ring.push(v);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.quantile(0.0), Some(1.0));
        assert_eq!(ring.quantile(1.0), Some(4.0));
        assert_eq!(ring.max(), Some(4.0));
        // Overflow evicts the oldest: window becomes [5, 2, 3, 4].
        ring.push(5.0);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.count(), 5);
        assert_eq!(ring.quantile(0.0), Some(2.0));
        assert_eq!(ring.max(), Some(5.0));
        // p50 of [2,3,4,5] at nearest rank: index round(0.5*3) = 2 -> 4.
        assert_eq!(ring.quantile(0.5), Some(4.0));
    }
}
