//! The paper's model inputs: netlist features, layout maps, endpoint masks.
//!
//! Three feature families feed the model (Sections IV-A and V):
//!
//! * **Node features** for the GNN — net distance on net nodes; driving
//!   strength, gate-type one-hot, and pin capacitance on cell nodes.
//! * **Layout maps** for the CNN — cell density, RUDY, and macro-region
//!   maps over an `M × N` binning of the die (Fig. 5).
//! * **Endpoint-wise critical-region masks** — the longest topological path
//!   of each endpoint, dilated into the union of its net-edge bounding
//!   boxes (Equations 4–6, Fig. 6).
//!
//! Everything here is plain data extraction: no learning, no randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod maps;
mod mask;
mod node_features;

pub use maps::LayoutMaps;
pub use mask::{endpoint_mask, endpoint_masks, endpoint_masks_sparse_for, longest_path};
pub use node_features::{NodeFeatures, CELL_FEATURE_DIM, DIST_NORM_UM, NET_FEATURE_DIM};
