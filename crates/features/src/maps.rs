//! The three layout feature maps of Fig. 5.

use rtt_netlist::{CellLibrary, Netlist};
use rtt_place::{density_map, Grid, Placement};
use rtt_route::rudy_map;

/// The stacked layout input of the CNN: cell density, RUDY, macro region.
#[derive(Clone, Debug)]
pub struct LayoutMaps {
    /// Standard-cell density (placed area / bin area).
    pub density: Grid,
    /// Rectangular uniform wire density.
    pub rudy: Grid,
    /// Macro coverage fraction per bin.
    pub macros: Grid,
}

impl LayoutMaps {
    /// Extracts all three maps at `grid × grid` resolution (the paper uses
    /// 512; the default experiment scale uses 64).
    pub fn extract(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        grid: usize,
    ) -> Self {
        rtt_obs::span!("features::layout_maps");
        let density = density_map(netlist, library, placement, grid, grid);
        let rudy = rudy_map(netlist, placement, grid, grid);
        let mut macros = Grid::new(grid, grid, placement.floorplan().die);
        for m in &placement.floorplan().macros {
            macros.splat(*m, m.area());
        }
        macros.normalize_by_bin_area();
        Self { density, rudy, macros }
    }

    /// Grid edge length in bins.
    pub fn grid(&self) -> usize {
        self.density.width()
    }

    /// Stacks the three maps into a max-normalized `[3, G, G]` row-major
    /// buffer, ready to become the CNN input tensor.
    pub fn stacked(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 * self.density.values().len());
        for map in [&self.density, &self.rudy, &self.macros] {
            let mut normalized = map.clone();
            normalized.normalize_max();
            out.extend_from_slice(normalized.values());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::GenParams;
    use rtt_place::{place, PlaceConfig};

    fn world(macros: usize) -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("m", 300, 9).generate(&lib);
        let pl = place(&d.netlist, &lib, macros, &PlaceConfig::default());
        (lib, d.netlist, pl)
    }

    #[test]
    fn maps_share_resolution_and_die() {
        let (lib, nl, pl) = world(1);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 16);
        assert_eq!(maps.grid(), 16);
        assert_eq!(maps.density.die(), maps.rudy.die());
        assert_eq!(maps.stacked().len(), 3 * 16 * 16);
    }

    #[test]
    fn macro_map_reflects_macro_bins() {
        let (lib, nl, pl) = world(2);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 32);
        let m = &pl.floorplan().macros[0];
        let c = m.center();
        let (bx, by) = maps.macros.bin_of(c.x, c.y);
        assert!(maps.macros.at(bx, by) > 0.5, "macro interior bin not covered");
        // A macro-free design yields an all-zero macro map.
        let (lib2, nl2, pl2) = world(0);
        let maps2 = LayoutMaps::extract(&nl2, &lib2, &pl2, 16);
        assert_eq!(maps2.macros.total(), 0.0);
    }

    #[test]
    fn stacked_channels_are_normalized() {
        let (lib, nl, pl) = world(1);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 16);
        let s = maps.stacked();
        for ch in 0..3 {
            let chan = &s[ch * 256..(ch + 1) * 256];
            let max = chan.iter().copied().fold(0.0f32, f32::max);
            assert!(max <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn density_is_higher_where_cells_cluster() {
        let (lib, nl, pl) = world(0);
        let maps = LayoutMaps::extract(&nl, &lib, &pl, 8);
        assert!(maps.density.max() > maps.density.total() / 64.0, "no density contrast");
    }
}
