//! P002 negative: the length relation is asserted once above the loop,
//! so the compiler can elide the per-iteration bounds checks.

// rtt-lint: hot
pub fn scale_fixture(a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = a[i] * 2.0;
    }
}
