//! Pin-level heterogeneous timing graph.
//!
//! Following the paper's data representation (Section IV-A), every pin is a
//! node and there are two directed edge types:
//!
//! * **net edges** — from a net's drive pin to each of its sink pins;
//! * **cell edges** — from each input pin of a *combinational* cell to its
//!   output pin. Cell edges of sequential elements are removed, which makes
//!   the graph a DAG.
//!
//! The graph also computes **topological levels** (the dotted boxes of the
//! paper's Fig. 3), which are shared by the STA engine, the customized GNN's
//! levelized message passing, and the longest-path search behind the
//! endpoint-wise critical-region mask.

use crate::{CellId, CellLibrary, NetId, Netlist, NetlistError, PinDir, PinId, PortKind};

/// Kind of a timing edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Drive pin → sink pin of one net.
    Net,
    /// Input pin → output pin of one combinational cell.
    Cell,
}

/// Classification of a graph node, after the sequential cut.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// No fanin: primary inputs, flip-flop outputs, unconnected pins.
    Source,
    /// Output pin of a combinational cell (target of cell edges).
    CellOut,
    /// Sink pin of a net (target of a net edge).
    NetSink,
}

/// A directed timing edge between two graph nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingEdge {
    /// Source node index.
    pub from: u32,
    /// Target node index.
    pub to: u32,
    /// Net or cell edge.
    pub kind: EdgeKind,
    /// Owning cell for cell edges.
    pub cell: Option<CellId>,
    /// Owning net for net edges.
    pub net: Option<NetId>,
}

/// Immutable pin-level timing DAG derived from a [`Netlist`].
#[derive(Clone, Debug)]
pub struct TimingGraph {
    nodes: Vec<PinId>,
    node_of_pin: Vec<Option<u32>>,
    kinds: Vec<NodeKind>,
    edges: Vec<TimingEdge>,
    fanin_off: Vec<u32>,
    fanin: Vec<u32>, // edge indices
    fanout_off: Vec<u32>,
    fanout: Vec<u32>, // edge indices
    level: Vec<u32>,
    max_level: u32,
    /// CSR level index: level `l` owns `level_nodes[level_off[l]..level_off[l + 1]]`
    /// (`len = max_level + 2`), nodes ascending within a level.
    level_off: Vec<u32>,
    level_nodes: Vec<u32>,
    endpoints: Vec<u32>,
    startpoints: Vec<u32>,
}

impl TimingGraph {
    /// Builds the timing graph for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle; use
    /// [`Self::try_build`] to handle that case.
    pub fn build(netlist: &Netlist, library: &CellLibrary) -> Self {
        // rtt-lint: allow(R001, reason = "documented panicking convenience wrapper; try_build is the fallible API")
        Self::try_build(netlist, library).expect("combinational cycle in netlist")
    }

    /// Builds the timing graph, reporting combinational cycles as an error.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if levelization stalls.
    pub fn try_build(netlist: &Netlist, library: &CellLibrary) -> Result<Self, NetlistError> {
        rtt_obs::span!("netlist::timing_graph");
        // Node table over live pins.
        let mut node_of_pin = vec![None; netlist.pin_capacity()];
        let mut nodes = Vec::with_capacity(netlist.num_pins());
        for (pid, _) in netlist.pins() {
            node_of_pin[pid.index()] = Some(nodes.len() as u32);
            nodes.push(pid);
        }
        let n = nodes.len();

        // Edges.
        let mut edges = Vec::new();
        for (nid, net) in netlist.nets() {
            let from = node_of_pin[net.driver.index()]
                .ok_or(NetlistError::Dead("pin", net.driver.index() as u32))?;
            for &s in &net.sinks {
                let to =
                    node_of_pin[s.index()].ok_or(NetlistError::Dead("pin", s.index() as u32))?;
                edges.push(TimingEdge {
                    from,
                    to,
                    kind: EdgeKind::Net,
                    cell: None,
                    net: Some(nid),
                });
            }
        }
        for (cid, cell) in netlist.cells() {
            if library.cell_type(cell.type_id).is_sequential() {
                continue; // sequential cut: no D -> Q arc
            }
            let to = node_of_pin[cell.output.index()]
                .ok_or(NetlistError::Dead("pin", cell.output.index() as u32))?;
            for &i in &cell.inputs {
                let from =
                    node_of_pin[i.index()].ok_or(NetlistError::Dead("pin", i.index() as u32))?;
                edges.push(TimingEdge {
                    from,
                    to,
                    kind: EdgeKind::Cell,
                    cell: Some(cid),
                    net: None,
                });
            }
        }

        // CSR adjacency.
        let (fanin_off, fanin) = csr(n, edges.iter().map(|e| (e.to, e.from)), &edges);
        let (fanout_off, fanout) = csr(n, edges.iter().map(|e| (e.from, e.to)), &edges);

        // Kahn levelization: level = longest distance from any source.
        let mut indeg: Vec<u32> = vec![0; n];
        for e in &edges {
            indeg[e.to as usize] += 1;
        }
        let mut level = vec![0u32; n];
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut resolved = queue.len();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let (s, e) = (fanout_off[v as usize] as usize, fanout_off[v as usize + 1] as usize);
            for &ei in &fanout[s..e] {
                let edge = edges[ei as usize];
                let u = edge.to as usize;
                level[u] = level[u].max(level[v as usize] + 1);
                indeg[u] -= 1;
                if indeg[u] == 0 {
                    queue.push(u as u32);
                    resolved += 1;
                }
            }
        }
        if resolved != n {
            return Err(NetlistError::CombinationalCycle { unresolved: n - resolved });
        }

        let max_level = level.iter().copied().max().unwrap_or(0);
        // Counting sort of nodes by level: same order as pushing each
        // `v` in ascending order onto a per-level Vec, without the
        // Vec-of-Vec indirection.
        let mut level_off = vec![0u32; max_level as usize + 2];
        for &l in &level {
            level_off[l as usize + 1] += 1;
        }
        for i in 1..level_off.len() {
            level_off[i] += level_off[i - 1];
        }
        let mut cursor = level_off.clone();
        let mut level_nodes = vec![0u32; n];
        for v in 0..n as u32 {
            let l = level[v as usize] as usize;
            level_nodes[cursor[l] as usize] = v;
            cursor[l] += 1;
        }

        // Node kinds from fanin edge types.
        let mut kinds = vec![NodeKind::Source; n];
        for e in &edges {
            kinds[e.to as usize] = match e.kind {
                EdgeKind::Cell => NodeKind::CellOut,
                EdgeKind::Net => NodeKind::NetSink,
            };
        }

        // Endpoints: primary outputs + D pins of sequential cells.
        // Startpoints: primary inputs + outputs of sequential cells.
        let mut endpoints = Vec::new();
        let mut startpoints = Vec::new();
        for (i, &pid) in nodes.iter().enumerate() {
            let pin = netlist.pin(pid);
            match pin.port {
                Some(PortKind::Output) => endpoints.push(i as u32),
                Some(PortKind::Input) => startpoints.push(i as u32),
                None => {
                    if let Some(cid) = pin.cell {
                        let cell = netlist.cell(cid);
                        if library.cell_type(cell.type_id).is_sequential() {
                            match pin.dir {
                                PinDir::Sink => endpoints.push(i as u32),
                                PinDir::Drive => startpoints.push(i as u32),
                            }
                        }
                    }
                }
            }
        }

        Ok(Self {
            nodes,
            node_of_pin,
            kinds,
            edges,
            fanin_off,
            fanin,
            fanout_off,
            fanout,
            level,
            max_level,
            level_off,
            level_nodes,
            endpoints,
            startpoints,
        })
    }

    /// Number of nodes (live pins).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of net edges.
    pub fn num_net_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Net).count()
    }

    /// Number of cell edges.
    pub fn num_cell_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Cell).count()
    }

    /// The pin behind node `v`.
    pub fn pin_of(&self, v: u32) -> PinId {
        self.nodes[v as usize]
    }

    /// The node for `pin`, if the pin is live.
    pub fn node_of(&self, pin: PinId) -> Option<u32> {
        self.node_of_pin.get(pin.index()).copied().flatten()
    }

    /// Node classification after the sequential cut.
    pub fn node_kind(&self, v: u32) -> NodeKind {
        self.kinds[v as usize]
    }

    /// All edges.
    pub fn edges(&self) -> &[TimingEdge] {
        &self.edges
    }

    /// Fanin edges of node `v`.
    pub fn fanin(&self, v: u32) -> impl Iterator<Item = &TimingEdge> {
        let (s, e) = (self.fanin_off[v as usize] as usize, self.fanin_off[v as usize + 1] as usize);
        self.fanin[s..e].iter().map(move |&ei| &self.edges[ei as usize])
    }

    /// Fanout edges of node `v`.
    pub fn fanout(&self, v: u32) -> impl Iterator<Item = &TimingEdge> {
        let (s, e) =
            (self.fanout_off[v as usize] as usize, self.fanout_off[v as usize + 1] as usize);
        self.fanout[s..e].iter().map(move |&ei| &self.edges[ei as usize])
    }

    /// Topological level of node `v` (longest edge count from any source).
    pub fn level(&self, v: u32) -> u32 {
        self.level[v as usize]
    }

    /// Maximum topological level.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Nodes at topological level `l`.
    pub fn nodes_at_level(&self, l: u32) -> &[u32] {
        let (s, e) = (self.level_off[l as usize] as usize, self.level_off[l as usize + 1] as usize);
        &self.level_nodes[s..e]
    }

    /// Timing endpoints: primary-output ports and flip-flop data pins.
    pub fn endpoints(&self) -> &[u32] {
        &self.endpoints
    }

    /// Timing startpoints: primary-input ports and flip-flop output pins.
    pub fn startpoints(&self) -> &[u32] {
        &self.startpoints
    }

    /// Nodes in topological order (level-major, stable within level).
    pub fn topo_order(&self) -> impl Iterator<Item = u32> + '_ {
        self.level_nodes.iter().copied()
    }
}

/// Builds a CSR index from `(key_node, _)` pairs aligned with `edges`.
fn csr<I>(n: usize, keyed: I, edges: &[TimingEdge]) -> (Vec<u32>, Vec<u32>)
where
    I: Iterator<Item = (u32, u32)>,
{
    let keys: Vec<u32> = keyed.map(|(k, _)| k).collect();
    let mut off = vec![0u32; n + 1];
    for &k in &keys {
        off[k as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut cursor = off.clone();
    let mut out = vec![0u32; edges.len()];
    for (ei, &k) in keys.iter().enumerate() {
        out[cursor[k as usize] as usize] = ei as u32;
        cursor[k as usize] += 1;
    }
    (off, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellLibrary, GateFn, Netlist};

    /// a ──AND2── x ──INV── y(out port);  b is second AND input.
    fn chain() -> (CellLibrary, Netlist) {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("chain");
        let a = nl.add_input_port("a");
        let b = nl.add_input_port("b");
        let and_t = lib.pick(GateFn::And2, 1).unwrap();
        let inv_t = lib.pick(GateFn::Inv, 1).unwrap();
        let (and_c, and_o) = nl.add_cell("u_and", and_t, &lib);
        let (inv_c, inv_o) = nl.add_cell("u_inv", inv_t, &lib);
        let ai = nl.cell(and_c).inputs[0];
        let bi = nl.cell(and_c).inputs[1];
        let ii = nl.cell(inv_c).inputs[0];
        nl.connect_net("na", a, &[ai]).unwrap();
        nl.connect_net("nb", b, &[bi]).unwrap();
        nl.connect_net("nx", and_o, &[ii]).unwrap();
        let y = nl.add_output_port("y");
        nl.connect_net("ny", inv_o, &[y]).unwrap();
        (lib, nl)
    }

    #[test]
    fn counts_and_kinds() {
        let (lib, nl) = chain();
        let g = TimingGraph::build(&nl, &lib);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_net_edges(), 4);
        assert_eq!(g.num_cell_edges(), 3); // 2 (AND) + 1 (INV)
        let and_o = nl.cell(nl.cells().find(|(_, c)| c.name == "u_and").unwrap().0).output;
        let v = g.node_of(and_o).unwrap();
        assert_eq!(g.node_kind(v), NodeKind::CellOut);
    }

    #[test]
    fn levels_follow_propagation_depth() {
        let (lib, nl) = chain();
        let g = TimingGraph::build(&nl, &lib);
        // port a: 0; and inputs: 1; and out: 2; inv in: 3; inv out: 4; y: 5
        let y = g.node_of(nl.output_ports()[0]).unwrap();
        assert_eq!(g.level(y), 5);
        assert_eq!(g.max_level(), 5);
        // level monotonicity along every edge
        for e in g.edges() {
            assert!(g.level(e.to) > g.level(e.from));
        }
        // the CSR level index partitions the node set
        let total: usize = (0..=g.max_level()).map(|l| g.nodes_at_level(l).len()).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn endpoints_and_startpoints() {
        let (lib, mut nl) = chain();
        // Add a flop fed by y-net driver.
        let dff_t = lib.pick(GateFn::Dff, 1).unwrap();
        let (dff_c, dff_o) = nl.add_cell("r0", dff_t, &lib);
        let d = nl.cell(dff_c).inputs[0];
        let ny = nl.nets().find(|(_, n)| n.name == "ny").unwrap().0;
        nl.add_sink(ny, d).unwrap();
        let z = nl.add_output_port("z");
        nl.connect_net("nq", dff_o, &[z]).unwrap();
        let g = TimingGraph::build(&nl, &lib);
        // endpoints: y, z, dff D pin
        assert_eq!(g.endpoints().len(), 3);
        // startpoints: a, b, dff Q pin
        assert_eq!(g.startpoints().len(), 3);
        // The D pin must not feed the Q pin (sequential cut).
        let dv = g.node_of(d).unwrap();
        assert_eq!(g.fanout(dv).count(), 0);
        let qv = g.node_of(dff_o).unwrap();
        assert_eq!(g.fanin(qv).count(), 0);
        assert_eq!(g.node_kind(qv), NodeKind::Source);
    }

    #[test]
    fn fanin_fanout_are_consistent() {
        let (lib, nl) = chain();
        let g = TimingGraph::build(&nl, &lib);
        let mut fanin_total = 0;
        let mut fanout_total = 0;
        for v in 0..g.num_nodes() as u32 {
            fanin_total += g.fanin(v).count();
            fanout_total += g.fanout(v).count();
            for e in g.fanin(v) {
                assert_eq!(e.to, v);
            }
            for e in g.fanout(v) {
                assert_eq!(e.from, v);
            }
        }
        assert_eq!(fanin_total, g.num_edges());
        assert_eq!(fanout_total, g.num_edges());
    }

    #[test]
    fn topo_order_respects_edges() {
        let (lib, nl) = chain();
        let g = TimingGraph::build(&nl, &lib);
        let order: Vec<u32> = g.topo_order().collect();
        assert_eq!(order.len(), g.num_nodes());
        let pos: std::collections::BTreeMap<u32, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn cycle_detection() {
        // Build an artificial combinational loop: two inverters in a ring.
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("ring");
        let inv_t = lib.pick(GateFn::Inv, 1).unwrap();
        let (c0, o0) = nl.add_cell("i0", inv_t, &lib);
        let (c1, o1) = nl.add_cell("i1", inv_t, &lib);
        let i0 = nl.cell(c0).inputs[0];
        let i1 = nl.cell(c1).inputs[0];
        nl.connect_net("f", o0, &[i1]).unwrap();
        nl.connect_net("b", o1, &[i0]).unwrap();
        assert!(matches!(
            TimingGraph::try_build(&nl, &lib),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn node_of_dead_pin_is_none() {
        let (lib, mut nl) = chain();
        let ny = nl.nets().find(|(_, n)| n.name == "ny").unwrap().0;
        let inv = nl.cells().find(|(_, c)| c.name == "u_inv").unwrap().0;
        let nx = nl.pin(nl.cell(inv).inputs[0]).net.unwrap();
        let out = nl.cell(inv).output;
        nl.remove_net(ny).unwrap();
        nl.remove_net(nx).unwrap();
        nl.remove_cell(inv).unwrap();
        let g = TimingGraph::build(&nl, &lib);
        assert_eq!(g.node_of(out), None);
    }
}
