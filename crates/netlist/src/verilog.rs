//! Structural-Verilog import/export.
//!
//! Writes a netlist as a flat gate-level Verilog module (one instance per
//! cell, named nets) and parses the same subset back. This is the
//! interchange format a real adopter would use to bring their own designs
//! into the flow; the emitted text round-trips losslessly through
//! [`parse_verilog`].
//!
//! Supported subset: one `module` with `input`/`output` port declarations,
//! `wire` declarations, and named-port instantiations of library cells
//! (`AND2_X1 u0 (.i0(a), .i1(b), .o(w1));`). No buses, behavioural code,
//! parameters, or escaped identifiers.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::{CellLibrary, Netlist, NetlistError, PinId};

/// Errors raised while parsing structural Verilog.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerilogError {
    /// Input ended before the module was complete.
    UnexpectedEof,
    /// A token violated the supported grammar.
    Syntax {
        /// Line number (1-based).
        line: usize,
        /// Explanation.
        message: String,
    },
    /// An instance referenced a cell type missing from the library.
    UnknownCellType(String),
    /// An instance referenced a pin the cell type does not have.
    UnknownPin(String, String),
    /// A net connected illegally (two drivers, etc.).
    Netlist(NetlistError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of file"),
            Self::Syntax { line, message } => write!(f, "syntax error on line {line}: {message}"),
            Self::UnknownCellType(t) => write!(f, "unknown cell type `{t}`"),
            Self::UnknownPin(cell, pin) => write!(f, "cell `{cell}` has no pin `{pin}`"),
            Self::Netlist(e) => write!(f, "illegal connectivity: {e}"),
        }
    }
}

impl Error for VerilogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for VerilogError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

/// Emits `netlist` as a flat structural-Verilog module.
///
/// Nets keep their names; cell input pins are named `i0..iN-1` and the
/// output pin `o`, matching the data model.
pub fn write_verilog(netlist: &Netlist, library: &CellLibrary) -> String {
    let mut out = String::new();
    let sanitized = |s: &str| s.replace(['/', ' '], "_");

    out.push_str(&format!("module {} (", sanitized(&netlist.name)));
    let ports: Vec<String> = netlist
        .input_ports()
        .iter()
        .chain(netlist.output_ports())
        .filter(|&&p| netlist.pin(p).is_alive())
        .map(|&p| sanitized(&netlist.pin(p).name))
        .collect();
    out.push_str(&ports.join(", "));
    out.push_str(");\n");

    for &p in netlist.input_ports() {
        if netlist.pin(p).is_alive() {
            out.push_str(&format!("  input {};\n", sanitized(&netlist.pin(p).name)));
        }
    }
    for &p in netlist.output_ports() {
        if netlist.pin(p).is_alive() {
            out.push_str(&format!("  output {};\n", sanitized(&netlist.pin(p).name)));
        }
    }

    // Wires: every net not directly a port connection still gets declared;
    // redundant declarations of port names are avoided.
    let port_names: std::collections::HashSet<String> = ports.iter().cloned().collect();
    for (_, net) in netlist.nets() {
        let n = sanitized(&net.name);
        if !port_names.contains(&n) {
            out.push_str(&format!("  wire {n};\n"));
        }
    }

    // The connection text of a pin: the net name, or nothing when dangling.
    let conn = |pin: PinId| -> String {
        match netlist.pin(pin).net {
            Some(nid) => net_text(netlist, nid, &port_names, &sanitized),
            None => String::new(),
        }
    };

    // A net can feed several output ports, but only one name can appear in
    // instance connections; the remaining port aliases become assigns.
    for (nid, net) in netlist.nets() {
        let canonical = net_text(netlist, nid, &port_names, &sanitized);
        for &s in &net.sinks {
            let pin = netlist.pin(s);
            if pin.cell.is_none() {
                let name = sanitized(&pin.name);
                if name != canonical {
                    out.push_str(&format!("  assign {name} = {canonical};\n"));
                }
            }
        }
    }

    for (_, cell) in netlist.cells() {
        let ty = library.cell_type(cell.type_id);
        let mut pins: Vec<String> = Vec::with_capacity(cell.inputs.len() + 1);
        for (k, &i) in cell.inputs.iter().enumerate() {
            pins.push(format!(".i{k}({})", conn(i)));
        }
        pins.push(format!(".o({})", conn(cell.output)));
        out.push_str(&format!("  {} {} ({});\n", ty.name, sanitized(&cell.name), pins.join(", ")));
    }
    out.push_str("endmodule\n");
    out
}

/// For nets driven by or sinking into a port, Verilog uses the port name
/// directly; internal nets use their own name.
fn net_text(
    netlist: &Netlist,
    nid: crate::NetId,
    port_names: &std::collections::HashSet<String>,
    sanitized: &impl Fn(&str) -> String,
) -> String {
    let net = netlist.net(nid);
    let n = sanitized(&net.name);
    if port_names.contains(&n) {
        return n;
    }
    // A net whose driver is an input port, or with an output-port sink,
    // is aliased to that port name in the netlist text.
    let driver = netlist.pin(net.driver);
    if driver.cell.is_none() {
        return sanitized(&driver.name);
    }
    for &s in &net.sinks {
        let p = netlist.pin(s);
        if p.cell.is_none() {
            return sanitized(&p.name);
        }
    }
    n
}

/// Parses the structural subset produced by [`write_verilog`].
///
/// # Errors
///
/// Returns a [`VerilogError`] describing the first problem found.
pub fn parse_verilog(text: &str, library: &CellLibrary) -> Result<Netlist, VerilogError> {
    // Strip comments, join into a token-friendly form.
    let mut cleaned = String::with_capacity(text.len());
    for line in text.lines() {
        let line = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        cleaned.push_str(line);
        cleaned.push('\n');
    }

    let mut parser = Parser { text: &cleaned, pos: 0 };
    parser.expect_word("module")?;
    let module_name = parser.identifier()?;
    parser.expect_char('(')?;
    // Port list (names repeated in the body; just skip).
    while parser.peek_char()? != ')' {
        let _ = parser.identifier()?;
        if parser.peek_char()? == ',' {
            parser.expect_char(',')?;
        }
    }
    parser.expect_char(')')?;
    parser.expect_char(';')?;

    let mut nl = Netlist::new(module_name);
    // Map from net name -> (driver pin, sink pins).
    #[derive(Default)]
    struct NetAcc {
        driver: Option<PinId>,
        sinks: Vec<PinId>,
    }
    // BTreeMap: nets materialize in name order, so NetIds are stable across
    // runs regardless of declaration interleaving.
    let mut nets: BTreeMap<String, NetAcc> = BTreeMap::new();
    // `assign lhs = rhs;` — lhs (an output port) becomes a sink of rhs.
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut cell_count = 0usize;

    loop {
        let word = parser.identifier()?;
        match word.as_str() {
            "endmodule" => break,
            "input" => {
                let name = parser.identifier()?;
                parser.expect_char(';')?;
                let p = nl.add_input_port(&name);
                nets.entry(name).or_default().driver = Some(p);
            }
            "output" => {
                let name = parser.identifier()?;
                parser.expect_char(';')?;
                let p = nl.add_output_port(&name);
                nets.entry(name).or_default().sinks.push(p);
            }
            "wire" => {
                let name = parser.identifier()?;
                parser.expect_char(';')?;
                nets.entry(name).or_default();
            }
            "assign" => {
                let lhs = parser.identifier()?;
                parser.expect_char('=')?;
                let rhs = parser.identifier()?;
                parser.expect_char(';')?;
                aliases.push((lhs, rhs));
            }
            type_name => {
                // Instance: TYPE name ( .pin(net), ... );
                let type_id = library
                    .iter()
                    .find(|(_, t)| t.name == type_name)
                    .map(|(id, _)| id)
                    .ok_or_else(|| VerilogError::UnknownCellType(type_name.to_owned()))?;
                let inst_name = parser.identifier()?;
                parser.expect_char('(')?;
                let (cell, out_pin) = nl.add_cell(&inst_name, type_id, library);
                let _ = cell_count;
                cell_count += 1;
                loop {
                    parser.expect_char('.')?;
                    let pin_name = parser.identifier()?;
                    parser.expect_char('(')?;
                    let net_name =
                        if parser.peek_char()? == ')' { None } else { Some(parser.identifier()?) };
                    parser.expect_char(')')?;
                    let pin = resolve_pin(&nl, cell, out_pin, &inst_name, &pin_name)?;
                    if let Some(net_name) = net_name {
                        let acc = nets.entry(net_name).or_default();
                        if pin_name == "o" {
                            acc.driver = Some(pin);
                        } else {
                            acc.sinks.push(pin);
                        }
                    }
                    match parser.peek_char()? {
                        ',' => parser.expect_char(',')?,
                        ')' => {
                            parser.expect_char(')')?;
                            break;
                        }
                        c => return Err(parser.syntax(format!("expected `,` or `)`, got `{c}`"))),
                    }
                }
                parser.expect_char(';')?;
            }
        }
    }

    // Resolve assigns: move the lhs port's sink onto the rhs net.
    for (lhs, rhs) in aliases {
        let Some(lhs_acc) = nets.get_mut(&lhs) else {
            return Err(VerilogError::Syntax {
                line: 0,
                message: format!("assign target `{lhs}` is not a declared port"),
            });
        };
        let sinks = std::mem::take(&mut lhs_acc.sinks);
        nets.entry(rhs).or_default().sinks.extend(sinks);
    }

    // Materialize nets (ports may be drivers or sinks).
    for (name, acc) in nets {
        let (Some(driver), sinks) = (acc.driver, acc.sinks) else {
            continue; // undriven wire: ignore, like synthesis tools do
        };
        if sinks.is_empty() {
            continue;
        }
        nl.connect_net(name, driver, &sinks)?;
    }
    Ok(nl)
}

fn resolve_pin(
    nl: &Netlist,
    cell: crate::CellId,
    out_pin: PinId,
    inst: &str,
    pin_name: &str,
) -> Result<PinId, VerilogError> {
    if pin_name == "o" {
        return Ok(out_pin);
    }
    let idx: usize = pin_name
        .strip_prefix('i')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| VerilogError::UnknownPin(inst.to_owned(), pin_name.to_owned()))?;
    nl.cell(cell)
        .inputs
        .get(idx)
        .copied()
        .ok_or_else(|| VerilogError::UnknownPin(inst.to_owned(), pin_name.to_owned()))
}

/// Minimal recursive-descent tokenizer over the cleaned text.
struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(c) = self.text[self.pos..].chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn line(&self) -> usize {
        self.text[..self.pos].lines().count().max(1)
    }

    fn syntax(&self, message: String) -> VerilogError {
        VerilogError::Syntax { line: self.line(), message }
    }

    fn peek_char(&mut self) -> Result<char, VerilogError> {
        self.skip_ws();
        self.text[self.pos..].chars().next().ok_or(VerilogError::UnexpectedEof)
    }

    fn expect_char(&mut self, want: char) -> Result<(), VerilogError> {
        let got = self.peek_char()?;
        if got != want {
            return Err(self.syntax(format!("expected `{want}`, got `{got}`")));
        }
        self.pos += got.len_utf8();
        Ok(())
    }

    fn identifier(&mut self) -> Result<String, VerilogError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.text[self.pos..].chars() {
            if c.is_alphanumeric() || c == '_' || c == '$' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            let got = self.peek_char()?;
            return Err(self.syntax(format!("expected identifier, got `{got}`")));
        }
        Ok(self.text[start..self.pos].to_owned())
    }

    fn expect_word(&mut self, want: &str) -> Result<(), VerilogError> {
        let got = self.identifier()?;
        if got != want {
            return Err(self.syntax(format!("expected `{want}`, got `{got}`")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateFn, TimingGraph};

    fn tiny() -> (CellLibrary, Netlist) {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("top");
        let a = nl.add_input_port("a");
        let b = nl.add_input_port("b");
        let and_t = lib.pick(GateFn::And2, 1).unwrap();
        let inv_t = lib.pick(GateFn::Inv, 2).unwrap();
        let (c0, o0) = nl.add_cell("u0", and_t, &lib);
        let (c1, o1) = nl.add_cell("u1", inv_t, &lib);
        let (i0, i1) = (nl.cell(c0).inputs[0], nl.cell(c0).inputs[1]);
        let i2 = nl.cell(c1).inputs[0];
        nl.connect_net("a", a, &[i0]).unwrap();
        nl.connect_net("b", b, &[i1]).unwrap();
        nl.connect_net("w0", o0, &[i2]).unwrap();
        let y = nl.add_output_port("y");
        nl.connect_net("y", o1, &[y]).unwrap();
        (lib, nl)
    }

    #[test]
    fn writes_readable_verilog() {
        let (lib, nl) = tiny();
        let v = write_verilog(&nl, &lib);
        assert!(v.starts_with("module top (a, b, y);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output y;"));
        assert!(v.contains("AND2_X1 u0 (.i0(a), .i1(b), .o(w0));"));
        assert!(v.contains("INV_X2 u1 (.i0(w0), .o(y));"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (lib, nl) = tiny();
        let v = write_verilog(&nl, &lib);
        let back = parse_verilog(&v, &lib).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_cells(), nl.num_cells());
        assert_eq!(back.num_nets(), nl.num_nets());
        assert_eq!(back.input_ports().len(), 2);
        assert_eq!(back.output_ports().len(), 1);
        // Timing structure identical.
        let g1 = TimingGraph::build(&nl, &lib);
        let g2 = TimingGraph::build(&back, &lib);
        assert_eq!(g1.num_net_edges(), g2.num_net_edges());
        assert_eq!(g1.num_cell_edges(), g2.num_cell_edges());
        assert_eq!(g1.max_level(), g2.max_level());
    }

    #[test]
    fn roundtrip_generated_design() {
        // A bigger structural round-trip through a generated netlist.
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("gen");
        // Build a few layers by hand to avoid a circular dev-dependency.
        let mut drivers = Vec::new();
        for i in 0..6 {
            drivers.push(nl.add_input_port(format!("p{i}")));
        }
        let nand = lib.pick(GateFn::Nand2, 1).unwrap();
        for layer in 0..4 {
            let mut next = Vec::new();
            for (k, pair) in drivers.chunks(2).enumerate() {
                if pair.len() < 2 {
                    next.push(pair[0]);
                    continue;
                }
                let (c, o) = nl.add_cell(format!("n{layer}_{k}"), nand, &lib);
                let (a, b) = (nl.cell(c).inputs[0], nl.cell(c).inputs[1]);
                nl.connect_net(format!("wa{layer}_{k}"), pair[0], &[a]).unwrap();
                nl.connect_net(format!("wb{layer}_{k}"), pair[1], &[b]).unwrap();
                next.push(o);
            }
            drivers = next;
        }
        for (i, &d) in drivers.iter().enumerate() {
            let y = nl.add_output_port(format!("q{i}"));
            nl.connect_net(format!("wo{i}"), d, &[y]).unwrap();
        }
        nl.validate().unwrap();

        let v = write_verilog(&nl, &lib);
        let back = parse_verilog(&v, &lib).unwrap();
        assert_eq!(back.num_cells(), nl.num_cells());
        assert_eq!(back.num_nets(), nl.num_nets());
    }

    #[test]
    fn parse_rejects_unknown_cells_and_pins() {
        let lib = CellLibrary::asap7_like();
        let bad_type =
            "module m (a, y);\n input a;\n output y;\n FOO_X9 u0 (.i0(a), .o(y));\nendmodule";
        assert!(matches!(parse_verilog(bad_type, &lib), Err(VerilogError::UnknownCellType(_))));
        let bad_pin =
            "module m (a, y);\n input a;\n output y;\n INV_X1 u0 (.zz(a), .o(y));\nendmodule";
        assert!(matches!(parse_verilog(bad_pin, &lib), Err(VerilogError::UnknownPin(..))));
    }

    #[test]
    fn parse_reports_syntax_errors_with_lines() {
        let lib = CellLibrary::asap7_like();
        let text = "module m (a);\n input a input;\n"; // missing `;` after `a`
        match parse_verilog(text, &lib) {
            Err(VerilogError::Syntax { line, .. }) => assert!(line >= 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        // Truncated input reports EOF.
        assert!(matches!(
            parse_verilog("module m (a);\n input a", &lib),
            Err(VerilogError::UnexpectedEof)
        ));
    }

    #[test]
    fn comments_are_ignored() {
        let lib = CellLibrary::asap7_like();
        let text = "// header\nmodule m (a, y); // ports\n input a;\n output y;\n \
                    INV_X1 u0 (.i0(a), .o(y)); // the gate\nendmodule\n";
        let nl = parse_verilog(text, &lib).unwrap();
        assert_eq!(nl.num_cells(), 1);
    }

    #[test]
    fn multi_port_net_roundtrips_via_assign() {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("fanports");
        let a = nl.add_input_port("a");
        let inv = lib.pick(GateFn::Inv, 1).unwrap();
        let (c, o) = nl.add_cell("u0", inv, &lib);
        let i = nl.cell(c).inputs[0];
        nl.connect_net("a", a, &[i]).unwrap();
        let y0 = nl.add_output_port("y0");
        let y1 = nl.add_output_port("y1");
        let y2 = nl.add_output_port("y2");
        nl.connect_net("w", o, &[y0, y1, y2]).unwrap();

        let text = write_verilog(&nl, &lib);
        assert!(text.contains("assign"), "extra port sinks need assigns:\n{text}");
        let back = parse_verilog(&text, &lib).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_nets(), 2);
        let (_, net) = back.nets().find(|(_, n)| n.sinks.len() == 3).expect("fanout-3 net");
        assert_eq!(net.sinks.len(), 3);
    }

    #[test]
    fn dangling_instance_pin_is_allowed() {
        let lib = CellLibrary::asap7_like();
        let text = "module m (a, y);\n input a;\n output y;\n wire w;\n \
                    AND2_X1 u0 (.i0(a), .i1(), .o(y));\nendmodule";
        let nl = parse_verilog(text, &lib).unwrap();
        let (_, cell) = nl.cells().next().unwrap();
        assert!(nl.pin(cell.inputs[1]).net.is_none());
    }
}
