//! Property-based equivalence suites for the parallel kernel layer.
//!
//! The blocked/parallel `matmul`, the zero-skip variant, and the im2col
//! `conv2d` all claim to be drop-in replacements for the naive reference
//! loops they displaced. These tests pin that claim down: each kernel is
//! compared against a reference implementation written the obvious way,
//! across randomly sampled shapes and values, and across thread counts.

use std::sync::Mutex;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtt_nn::{parallel, Tape, Tensor};

/// Serializes tests that toggle the global thread count. Kernels are
/// bit-identical across thread counts, so tests that *don't* toggle are
/// unaffected by whoever holds the lock.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once at one thread and once at four, restoring one thread
/// afterwards. Both runs happen under the lock so concurrent tests can't
/// change the pool between the two measurements.
fn at_one_and_four_threads<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parallel::set_num_threads(1);
    let serial = f();
    parallel::set_num_threads(4);
    let par = f();
    parallel::set_num_threads(1);
    (serial, par)
}

fn random_tensor(shape: &[usize], seed: u64, bound: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(&mut rng, shape, bound)
}

/// The naive triple loop the blocked kernel replaced, accumulating over
/// `k` in ascending order per output element — the same order the blocked
/// and row-parallel paths use, so results must match bit for bit.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(i, p) * b.at(p, j);
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #[test]
    fn blocked_matmul_matches_naive_reference(
        dims in (1usize..17, 1usize..33, 1usize..33),
        seed in 0u64..1_000_000,
    ) {
        // Shapes stay below the parallel threshold, so this exercises the
        // serial blocked kernel no matter what the pool is set to.
        let (m, k, n) = dims;
        let a = random_tensor(&[m, k], seed, 2.0);
        let b = random_tensor(&[k, n], seed ^ 0xA5A5, 2.0);
        prop_assert_eq!(a.matmul(&b).data(), naive_matmul(&a, &b).data());
    }

    #[test]
    fn zero_skip_matmul_matches_dense_on_sparse_inputs(
        dims in (1usize..12, 1usize..24, 1usize..24),
        sparsity in 0.0f32..0.95,
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let mut a = random_tensor(&[m, k], seed, 1.0);
        // Force exact zeros (the one-hot-like pattern the variant targets).
        for v in a.data_mut() {
            if v.abs() < sparsity {
                *v = 0.0;
            }
        }
        let b = random_tensor(&[k, n], seed ^ 0x5A5A, 1.0);
        prop_assert_eq!(a.matmul_zero_skip(&b).data(), a.matmul(&b).data());
    }
}

#[test]
fn parallel_matmul_is_bit_identical_to_serial() {
    // 2·m·k·n = 2·64·64·64 = 512 KiFLOPs, past the row-split threshold, so
    // the four-thread run takes the par_chunks_mut path.
    let a = random_tensor(&[64, 64], 7, 1.5);
    let b = random_tensor(&[64, 64], 11, 1.5);
    let (serial, par) = at_one_and_four_threads(|| a.matmul(&b));
    assert_eq!(serial.data(), par.data());
    assert_eq!(serial.data(), naive_matmul(&a, &b).data());
}

/// Direct (non-im2col) convolution forward: `x` is `[cin, h, w]`, `w` is
/// `[cout, cin, kh, kw]`, zero padding, stride 1. Taps are accumulated in
/// the same `(ci, ky, kx)` order as the im2col column layout, with padding
/// contributing exact `0.0` terms, so the result matches bit for bit.
#[allow(clippy::needless_range_loop)]
fn direct_conv2d(x: &Tensor, w: &Tensor, pad: usize) -> Tensor {
    let (cin, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (cout, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
    assert_eq!(w.shape()[1], cin);
    let (oh, ow) = (h + 2 * pad - kh + 1, wd + 2 * pad - kw + 1);
    let mut out = Tensor::zeros(&[cout, oh, ow]);
    for co in 0..cout {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ci in 0..cin {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let (iy, ix) = (oy + ky, ox + kx);
                            let tap = if iy >= pad && ix >= pad && iy - pad < h && ix - pad < wd {
                                x.data()[ci * h * wd + (iy - pad) * wd + (ix - pad)]
                            } else {
                                0.0
                            };
                            acc += tap * w.data()[((co * cin + ci) * kh + ky) * kw + kx];
                        }
                    }
                }
                out.data_mut()[(co * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// Direct adjoint of [`direct_conv2d`] given the upstream gradient `gy`.
fn direct_conv2d_backward(x: &Tensor, w: &Tensor, pad: usize, gy: &Tensor) -> (Tensor, Tensor) {
    let (cin, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (cout, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
    let (oh, ow) = (gy.shape()[1], gy.shape()[2]);
    let mut gx = Tensor::zeros(x.shape());
    let mut gw = Tensor::zeros(w.shape());
    for co in 0..cout {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = gy.data()[(co * oh + oy) * ow + ox];
                for ci in 0..cin {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let (iy, ix) = (oy + ky, ox + kx);
                            if iy < pad || ix < pad || iy - pad >= h || ix - pad >= wd {
                                continue;
                            }
                            let xi = ci * h * wd + (iy - pad) * wd + (ix - pad);
                            let wi = ((co * cin + ci) * kh + ky) * kw + kx;
                            gx.data_mut()[xi] += g * w.data()[wi];
                            gw.data_mut()[wi] += g * x.data()[xi];
                        }
                    }
                }
            }
        }
    }
    (gx, gw)
}

fn assert_close(got: &[f32], want: &[f32], tol: f32, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let scale = 1.0f32.max(w.abs());
        assert!((g - w).abs() <= tol * scale, "{what}[{i}]: got {g}, want {w}");
    }
}

proptest! {
    #[test]
    fn im2col_conv2d_forward_matches_direct(
        chans in (1usize..4, 1usize..4),
        hw in (4usize..10, 4usize..10),
        kp in (0usize..2, 0usize..2),
        seed in 0u64..1_000_000,
    ) {
        let (cin, cout) = chans;
        let (h, wd) = hw;
        let (ksel, pad) = kp;
        let k = if ksel == 0 { 1 } else { 3 };
        let x = random_tensor(&[cin, h, wd], seed, 1.0);
        let w = random_tensor(&[cout, cin, k, k], seed ^ 0xC0FE, 0.8);

        let tape = Tape::new();
        let y = tape.conv2d(tape.constant(x.clone()), tape.constant(w.clone()), pad);
        let direct = direct_conv2d(&x, &w, pad);
        prop_assert_eq!(tape.value(y).shape(), direct.shape());
        prop_assert_eq!(tape.value(y).data(), direct.data());
    }

    #[test]
    fn im2col_conv2d_gradients_match_direct_adjoint(
        chans in (1usize..4, 1usize..4),
        hw in (4usize..9, 4usize..9),
        pad in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let (cin, cout) = chans;
        let (h, wd) = hw;
        let k = 3;
        let x = random_tensor(&[cin, h, wd], seed, 1.0);
        let w = random_tensor(&[cout, cin, k, k], seed ^ 0xBEEF, 0.8);

        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.constant(w.clone());
        let y = tape.conv2d(xv, wv, pad);
        // A random linear readout gives every output element a distinct
        // upstream gradient.
        let c = random_tensor(tape.value(y).shape(), seed ^ 0xD00D, 1.0);
        let n = c.len() as f32;
        let loss = y.mul(tape.constant(c.clone())).mean();
        let grads = tape.backward(loss);

        let mut gy = c;
        gy.scale_assign(1.0 / n);
        let (gx, gw) = direct_conv2d_backward(&x, &w, pad, &gy);
        // The im2col path pairs products in a different order than the
        // direct loops, so compare to f32 reduction tolerance, not bits.
        assert_close(grads.wrt(xv.id()).unwrap().data(), gx.data(), 1e-4, "gx");
        assert_close(grads.wrt(wv.id()).unwrap().data(), gw.data(), 1e-4, "gw");
    }
}

#[test]
fn parallel_conv2d_is_bit_identical_to_serial() {
    let x = random_tensor(&[3, 32, 32], 13, 1.0);
    let w = random_tensor(&[8, 3, 3, 3], 17, 0.5);
    let (serial, par) = at_one_and_four_threads(|| {
        let tape = Tape::new();
        let y = tape.conv2d(tape.constant(x.clone()), tape.constant(w.clone()), 1);
        tape.value(y)
    });
    assert_eq!(serial.data(), par.data());
    assert_eq!(serial.data(), direct_conv2d(&x, &w, 1).data());
}

#[test]
fn parallel_segment_reductions_are_bit_identical_to_serial() {
    // 256 rows × 64 cols crosses the gather/segment parallel threshold.
    let (rows, d, segs) = (256usize, 64usize, 10usize);
    let x = random_tensor(&[rows, d], 19, 1.0);
    // Sorted segment ids (the run-parallel path), uneven run lengths.
    let seg: Vec<u32> = (0..rows).map(|i| ((i * segs) / rows) as u32).collect();
    let idx: Vec<u32> = (0..rows).map(|i| ((i * 7 + 3) % rows) as u32).collect();

    let run = || {
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let sum = tape.segment_sum(xv, &seg, segs);
        let max = tape.segment_max(xv, &seg, segs);
        let gath = tape.gather_rows(xv, &idx);
        (tape.value(sum), tape.value(max), tape.value(gath))
    };
    let (serial, par) = at_one_and_four_threads(run);
    assert_eq!(serial.0.data(), par.0.data());
    assert_eq!(serial.1.data(), par.1.data());
    assert_eq!(serial.2.data(), par.2.data());
}
