// D002 positive: ambient entropy in library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t = SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

pub fn elapsed_hack() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
