//! Seeded synthetic gate-level design generation.
//!
//! The paper's dataset is ten open-source designs synthesized with Cadence
//! Genus on the ASAP7 PDK — assets we cannot reproduce. This crate replaces
//! them with a deterministic generator that produces netlists with realistic
//! *structural statistics*: layered logic cones of widely varying depth,
//! heavy-tailed fanout, a commercial-looking gate mix, and register
//! boundaries that define the timing endpoints. Ten presets (see [`preset`])
//! named after the paper's designs (Table I) preserve the designs' *relative*
//! sizes and endpoint ratios at reduced scale (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use rtt_circgen::{preset, Scale};
//! use rtt_netlist::{CellLibrary, TimingGraph};
//!
//! let lib = CellLibrary::asap7_like();
//! let params = preset("xgate", Scale::Tiny).expect("known design");
//! let design = params.generate(&lib);
//! let graph = TimingGraph::build(&design.netlist, &lib);
//! assert!(!graph.endpoints().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod generate;
mod params;
mod presets;

pub use adder::ripple_carry_adder;
pub use generate::GeneratedDesign;
pub use params::{GenParams, Scale};
pub use presets::{all_presets, preset, preset_names, TEST_DESIGNS, TRAIN_DESIGNS};
