//! Regenerates **Fig. 5**: the cell-density, RUDY, and macro-region layout
//! maps for two designs (or1200 and rocket), written as PGM images.

use rtt_bench::Cli;
use rtt_circgen::preset;
use rtt_features::LayoutMaps;
use rtt_netlist::CellLibrary;
use rtt_place::{place, PlaceConfig};

fn main() {
    let cli = Cli::parse();
    let lib = CellLibrary::asap7_like();
    let grid = 128;
    let mut report = format!("# Fig. 5 layout feature maps (scale: {})\n\n", cli.scale);

    for name in ["or1200", "rocket"] {
        let params = preset(name, cli.scale).expect("known design");
        let design = params.generate(&lib);
        let pl = place(&design.netlist, &lib, design.num_macros.max(1), &PlaceConfig::default());
        let maps = LayoutMaps::extract(&design.netlist, &lib, &pl, grid);
        for (label, grid_map) in
            [("density", &maps.density), ("rudy", &maps.rudy), ("macros", &maps.macros)]
        {
            let mut img = grid_map.clone();
            img.normalize_max();
            cli.write_bytes(&format!("fig5/{name}_{label}.pgm"), &img.to_pgm());
        }
        report.push_str(&format!(
            "- **{name}**: {} cells, {} macros, density max {:.2}, rudy max {:.2} \
             (images under `fig5/`)\n",
            design.netlist.num_cells(),
            pl.floorplan().macros.len(),
            maps.density.max(),
            maps.rudy.max(),
        ));
    }
    cli.write_report("fig5", &report);
    cli.finish_trace();
}
