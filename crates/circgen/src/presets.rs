//! Presets named after the paper's ten benchmark designs (Table I).
//!
//! At [`Scale::Small`] each preset targets roughly 1/40 of the paper's pin
//! count while preserving the *relative* design sizes and the
//! endpoint-to-pin ratios (or1200 is endpoint-heavy, jpeg endpoint-light,
//! steelcore/xgate are small, hwacha is the largest, ...). The train/test
//! split matches the paper exactly.

use crate::{GenParams, Scale};

/// The five training designs of the paper.
pub const TRAIN_DESIGNS: [&str; 5] = ["jpeg", "rocket", "smallboom", "steelcore", "xgate"];

/// The five held-out test designs of the paper.
pub const TEST_DESIGNS: [&str; 5] = ["arm9", "chacha", "hwacha", "or1200", "sha3"];

/// Names of all ten presets, train designs first.
pub fn preset_names() -> Vec<&'static str> {
    TRAIN_DESIGNS.iter().chain(TEST_DESIGNS.iter()).copied().collect()
}

/// Returns the generation parameters for one of the paper's designs at the
/// given scale, or `None` for an unknown name.
pub fn preset(name: &str, scale: Scale) -> Option<GenParams> {
    // (comb cells, inputs, outputs, flops, macros, depth_bias, seed)
    // Counts are the Scale::Small baseline (~1/40 of the paper's pins).
    let (cells, inp, out, flops, macros, bias, seed) = match name {
        // -- train designs ---------------------------------------------------
        "jpeg" => (2900, 64, 48, 950, 2, 0.46, 0x6a70),
        "rocket" => (2150, 48, 40, 1250, 3, 0.44, 0x726f),
        "smallboom" => (2150, 48, 40, 1500, 2, 0.42, 0x736d),
        "steelcore" => (85, 12, 8, 38, 0, 0.40, 0x7374),
        "xgate" => (66, 10, 6, 16, 0, 0.40, 0x7867),
        // -- test designs ----------------------------------------------------
        "arm9" => (140, 16, 10, 58, 0, 0.42, 0x6172),
        "chacha" => (110, 14, 10, 46, 0, 0.48, 0x6368),
        "hwacha" => (4300, 72, 56, 1450, 4, 0.45, 0x6877),
        "or1200" => (3100, 64, 48, 4200, 3, 0.38, 0x6f72),
        "sha3" => (2450, 56, 40, 1450, 2, 0.47, 0x7368),
        _ => return None,
    };
    Some(
        GenParams {
            name: name.to_owned(),
            comb_cells: cells,
            inputs: inp,
            outputs: out,
            flops,
            macros,
            depth_bias: bias,
            window: 64,
            seed,
        }
        .scaled(scale),
    )
}

/// All ten presets at the given scale, train designs first.
pub fn all_presets(scale: Scale) -> Vec<GenParams> {
    preset_names().into_iter().map(|n| preset(n, scale).expect("listed preset exists")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_presets_with_paper_split() {
        let all = all_presets(Scale::Small);
        assert_eq!(all.len(), 10);
        assert_eq!(&all[0].name, "jpeg");
        assert_eq!(&all[5].name, "arm9");
        assert!(preset("unknown", Scale::Small).is_none());
    }

    #[test]
    fn relative_sizes_match_table1() {
        let g = |n| preset(n, Scale::Small).unwrap();
        // hwacha is the largest; xgate the smallest; or1200 endpoint-heavy.
        assert!(g("hwacha").comb_cells > g("jpeg").comb_cells);
        assert!(g("xgate").comb_cells < g("steelcore").comb_cells);
        let or1200 = g("or1200");
        let jpeg = g("jpeg");
        let edp_ratio = |p: &GenParams| (p.flops + p.outputs) as f64 / p.comb_cells as f64;
        assert!(edp_ratio(&or1200) > 2.0 * edp_ratio(&jpeg));
    }

    #[test]
    fn seeds_are_distinct() {
        let all = all_presets(Scale::Small);
        let mut seeds: Vec<u64> = all.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn split_constants_are_disjoint() {
        for t in TRAIN_DESIGNS {
            assert!(!TEST_DESIGNS.contains(&t));
        }
    }
}
