//! A minimal JSON value, parser, and string/number writers — just
//! enough for the trace exporter and its tests, with zero dependencies.
//!
//! Numbers keep their literal text ([`Value::Num`] holds the source
//! slice verbatim), so comparing two parsed documents compares numeric
//! literals byte-for-byte — exactly what the determinism tests need —
//! without committing to a float formatting.

use std::fmt;

/// A parsed JSON value. Object members keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text.
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document, rejecting trailing input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a member of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The member keys if this is an object.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => f.write_str(n),
            Value::Str(s) => {
                let mut out = String::new();
                write_string(&mut out, s);
                f.write_str(&out)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_string(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number to `out`. JSON has no NaN or
/// infinity, so non-finite values serialize as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(format!("raw control byte at {}", self.pos)),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(b) = self.peek() else { return Err("unterminated escape".to_owned()) };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                let code = u32::from_str_radix(hex, 16)
                    .map_err(|e| format!("bad \\u escape at byte {}: {e}", self.pos))?;
                self.pos += 4;
                // Surrogates never appear in our own output; map them
                // to U+FFFD instead of implementing pair decoding.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            other => return Err(format!("unknown escape `\\{}`", other as char)),
        }
        Ok(())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("invalid UTF-8 in number: {e}"))?;
        Ok(Value::Num(text.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v =
            Value::parse(r#"{"a": [1, -2.5, 3e4], "b": {"c": null, "d": true}, "e": "x\n\"y\""}"#)
                .expect("valid");
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("-2.5".into()),
                Value::Num("3e4".into()),
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Str("x\n\"y\"".into())));
        assert_eq!(v.keys(), ["a", "b", "e"]);
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"k":[1,2.5,"s\\t",{"n":null,"b":false}],"u":"é"}"#;
        let v = Value::parse(text).expect("valid");
        let reparsed = Value::parse(&v.to_string()).expect("round trip");
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[]x",
            "{\"a\":}",
            "01e",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn write_f64_handles_non_finite() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        write_f64(&mut out, f64::NAN);
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5nullnull");
    }
}
