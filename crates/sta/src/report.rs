//! STA result container.

use std::collections::BTreeMap;

use rtt_netlist::PinId;

/// Result of one STA run.
///
/// Arrival times are in picoseconds from the launching clock edge. Slack of
/// an endpoint is `clock_period_ps - arrival`.
#[derive(Clone, Debug)]
pub struct StaReport {
    /// Clock period the slacks were computed against, ps.
    pub clock_period_ps: f32,
    /// Worst negative slack (the minimum endpoint slack), ps.
    pub wns: f32,
    /// Total negative slack (sum of negative endpoint slacks), ps.
    pub tns: f32,
    /// Worst hold slack over all endpoints (min-delay check), ps.
    pub hold_wns: f32,
    pub(crate) arrival: Vec<f32>,
    pub(crate) arrival_min: Vec<f32>,
    pub(crate) required: Vec<f32>,
    pub(crate) endpoints: Vec<(PinId, f32)>,
    // BTreeMap, not HashMap: `net_edge_delays()` / `cell_edge_delays()`
    // iterate these, and consumers (feature extraction, report diffing)
    // must see the same order on every run.
    pub(crate) net_edge_delay: BTreeMap<(PinId, PinId), f32>,
    pub(crate) cell_edge_delay: BTreeMap<(PinId, PinId), f32>,
}

impl StaReport {
    /// Arrival time at `pin`, or `None` for pins outside the analyzed graph.
    pub fn arrival(&self, pin: PinId) -> Option<f32> {
        self.arrival.get(pin.index()).copied().filter(|a| a.is_finite())
    }

    /// Earliest (min-delay) arrival time at `pin` — the quantity behind
    /// hold checks — or `None` outside the graph.
    pub fn arrival_min(&self, pin: PinId) -> Option<f32> {
        self.arrival_min.get(pin.index()).copied().filter(|a| a.is_finite())
    }

    /// Required time at `pin` (backward-propagated from the clock period),
    /// or `None` for pins outside the graph or with no path to an endpoint.
    pub fn required(&self, pin: PinId) -> Option<f32> {
        self.required.get(pin.index()).copied().filter(|r| r.is_finite())
    }

    /// Slack at `pin`: `required - arrival`. Negative on violating paths.
    pub fn pin_slack(&self, pin: PinId) -> Option<f32> {
        Some(self.required(pin)? - self.arrival(pin)?)
    }

    /// `(endpoint pin, arrival)` pairs — the paper's prediction target.
    pub fn endpoint_arrivals(&self) -> &[(PinId, f32)] {
        &self.endpoints
    }

    /// Slack of an endpoint at `arrival`.
    pub fn slack_of(&self, arrival: f32) -> f32 {
        self.clock_period_ps - arrival
    }

    /// Delay of the net edge `driver -> sink`, if it exists.
    pub fn net_edge_delay(&self, driver: PinId, sink: PinId) -> Option<f32> {
        self.net_edge_delay.get(&(driver, sink)).copied()
    }

    /// Delay of the cell edge `input -> output`, if it exists.
    pub fn cell_edge_delay(&self, input: PinId, output: PinId) -> Option<f32> {
        self.cell_edge_delay.get(&(input, output)).copied()
    }

    /// Iterates over all `(driver, sink, delay)` net edges.
    pub fn net_edge_delays(&self) -> impl Iterator<Item = (PinId, PinId, f32)> + '_ {
        self.net_edge_delay.iter().map(|(&(a, b), &d)| (a, b, d))
    }

    /// Iterates over all `(input, output, delay)` cell edges.
    pub fn cell_edge_delays(&self) -> impl Iterator<Item = (PinId, PinId, f32)> + '_ {
        self.cell_edge_delay.iter().map(|(&(a, b), &d)| (a, b, d))
    }

    /// The largest endpoint arrival time (critical-path length), ps.
    pub fn max_arrival(&self) -> f32 {
        self.endpoints.iter().map(|&(_, a)| a).fold(0.0, f32::max)
    }
}
