//! Placement substrate: floorplanning, macro placement, global placement.
//!
//! The paper takes placements from Cadence Innovus; this crate provides the
//! simulated equivalent. It computes a die from the design's total cell area
//! and a target utilization, carves out macro blocks, runs a seeded
//! force-directed global placement with bin-based spreading, and pins the
//! top-level ports to the die boundary. The resulting [`Placement`] is the
//! sole geometric input to routing, feature extraction (density/RUDY/macro
//! maps), and the layout-legality checks of the timing optimizer.
//!
//! # Example
//!
//! ```
//! use rtt_netlist::CellLibrary;
//! use rtt_circgen::ripple_carry_adder;
//! use rtt_place::{place, PlaceConfig};
//!
//! let lib = CellLibrary::asap7_like();
//! let nl = ripple_carry_adder(4, &lib);
//! let placement = place(&nl, &lib, 0, &PlaceConfig::default());
//! let (c, _) = nl.cells().next().expect("adder has cells");
//! let p = placement.cell_pos(c);
//! assert!(placement.floorplan().die.contains(p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod floorplan;
mod grid;
mod io;
mod placer;

pub use floorplan::{Floorplan, Point, Rect};
pub use grid::Grid;
pub use io::{parse_placement, write_placement, PlacementIoError};
pub use placer::{density_map, place, PlaceConfig, Placement};
