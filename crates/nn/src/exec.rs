//! The execution-backend abstraction: forward computation written once,
//! run by two engines.
//!
//! Model code (layers, the GNN/CNN trunks, the fused regressor) is generic
//! over [`Exec`] and therefore agnostic to *how* its ops execute:
//!
//! * `&Tape` — the training backend. Every op records a node for the
//!   reverse sweep; values are [`crate::Var`] handles.
//! * `&InferCtx` — the tape-free inference backend. Ops write into a
//!   recycled buffer arena; no gradient bookkeeping, no per-node
//!   allocation in the steady state.
//!
//! Both backends call the same [`crate::ops`] kernels with the same fixed
//! accumulation orders, so for identical inputs and weights their outputs
//! are bit-identical — the contract the tape-vs-infer equivalence suite
//! pins down.
//!
//! Methods take `self` by value: both backends implement the trait on a
//! shared reference, so an `Exec` value is `Copy` and can be passed around
//! freely, mirroring how `&Tape` flows through the model stack today.

use crate::store::{ParamId, ParamStore};
use crate::Tensor;

/// A forward-execution backend. See the [module docs](self) for the
/// bit-identity contract between implementations.
pub trait Exec: Copy {
    /// Backend-specific handle to a produced tensor value.
    type Value: Copy;

    /// Introduces a non-trainable input value.
    fn constant(self, t: Tensor) -> Self::Value;

    /// Introduces a parameter from `store` (trainable under `&Tape`, a
    /// plain input under `&InferCtx`).
    fn param(self, store: &ParamStore, id: ParamId) -> Self::Value;

    /// The current tensor behind `v` (cloned out of the backend).
    fn value(self, v: Self::Value) -> Tensor;

    /// Element count of the tensor behind `v` (no clone).
    fn len(self, v: Self::Value) -> usize;

    /// Matrix product.
    fn matmul(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Elementwise sum (same shape).
    fn add(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Adds a rank-1 row vector to every row of a matrix (bias add).
    fn add_row(self, a: Self::Value, row: Self::Value) -> Self::Value;

    /// Adds a per-channel bias `[C]` to a feature map `[C, H, W]`.
    fn add_channel(self, x: Self::Value, bias: Self::Value) -> Self::Value;

    /// Elementwise difference (same shape).
    fn sub(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Elementwise (Hadamard) product.
    fn mul(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Multiplies every row of a matrix by a rank-1 vector.
    fn mul_row(self, a: Self::Value, row: Self::Value) -> Self::Value;

    /// Scalar multiple.
    fn scale(self, x: Self::Value, s: f32) -> Self::Value;

    /// Rectified linear unit.
    fn relu(self, x: Self::Value) -> Self::Value;

    /// Hyperbolic tangent.
    fn tanh(self, x: Self::Value) -> Self::Value;

    /// Reshaped copy with identical element count.
    fn reshape(self, x: Self::Value, shape: &[usize]) -> Self::Value;

    /// Mean of all elements (scalar `[1]` output).
    fn mean(self, x: Self::Value) -> Self::Value;

    /// Selects rows `idx` from a matrix.
    fn gather_rows(self, x: Self::Value, idx: &[u32]) -> Self::Value;

    /// Selects rows from several source matrices: entry `(s, r)` takes
    /// row `r` of `sources[s]`.
    fn gather_multi(self, sources: &[Self::Value], index: &[(u32, u32)]) -> Self::Value;

    /// Per-segment column-wise maximum (empty segments yield zero rows).
    fn segment_max(self, x: Self::Value, seg: &[u32], num_segments: usize) -> Self::Value;

    /// Per-segment column-wise sum.
    fn segment_sum(self, x: Self::Value, seg: &[u32], num_segments: usize) -> Self::Value;

    /// Multiplies each row by a constant factor.
    fn scale_rows(self, x: Self::Value, factors: &[f32]) -> Self::Value;

    /// Stacks `a` above `b`.
    fn concat_rows(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Concatenates `a` and `b` side by side.
    fn concat_cols(self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// 2-D convolution, stride 1 (`x`: `[C_in, H, W]`, `w`:
    /// `[C_out, C_in, kh, kw]`).
    fn conv2d(self, x: Self::Value, w: Self::Value, pad: usize) -> Self::Value;

    /// Max pooling with a square window and equal stride over `[C, H, W]`.
    fn maxpool2d(self, x: Self::Value, size: usize) -> Self::Value;
}
