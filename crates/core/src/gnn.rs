//! The customized GNN of Section IV: levelized message passing with
//! distinct aggregators for cell edges and net edges (Equation 3).

use rand::Rng;

use rtt_features::{NodeFeatures, CELL_FEATURE_DIM, NET_FEATURE_DIM};
use rtt_netlist::{EdgeKind, NodeKind, TimingGraph};
use rtt_nn::{ops, Exec, Mlp, ParamStore, Tensor};

use crate::{Aggregation, ModelConfig};

/// Readout scale for residual embeddings: they accumulate over up to
/// hundreds of topological levels, so readout heads should rescale them
/// into an O(1) regime.
pub const READOUT_SCALE: f32 = 0.05;

/// A static execution plan for one design: who sits at which topological
/// level, where each node's messages come from, and how to reassemble the
/// per-level matrices. Building it once per design and reusing it across
/// epochs is what makes CPU training viable.
#[derive(Clone, Debug)]
pub struct GnnSchedule {
    levels: Vec<LevelPlan>,
    endpoint_locs: Vec<(u32, u32)>,
    node_loc: Vec<(u32, u32)>,
    /// Flat, SIMD-friendly twin of `levels`, derived once at build time
    /// and consumed by [`NetlistGnn::forward_flat`].
    plan: GnnPlan,
}

/// The batched execution plan over one flat `[num_nodes, embed_dim]`
/// embedding matrix: every per-level `(level, row)` pair of the
/// [`LevelPlan`]s is pre-resolved to a single flat row index, segment ids
/// become CSR run offsets, and the `[cells, nets, sources] → level order`
/// permutation becomes per-group scatter destinations. All of it is
/// index arithmetic done once per design, so the per-pass inner loops are
/// straight-line gathers, contiguous reductions, and row memcpys.
#[derive(Clone, Debug, Default)]
struct GnnPlan {
    levels: Vec<FlatLevel>,
    /// Flat row of each endpoint, aligned with `TimingGraph::endpoints()`.
    endpoint_rows: Vec<u32>,
    /// Total rows of the flat matrix (= number of graph nodes).
    total_rows: usize,
    /// Rows of the concatenated static cell-feature matrix that belong to
    /// cell groups; source-group rows follow (see
    /// [`LevelFeats::cell_src_flat`]).
    total_cell_rows: usize,
}

#[derive(Clone, Debug, Default)]
struct FlatLevel {
    n_cells: usize,
    n_nets: usize,
    n_srcs: usize,
    /// Flat source row of each gathered cell fanin message.
    cell_gather: Vec<u32>,
    /// CSR offsets into `cell_gather`: cell `i` reduces messages
    /// `cell_seg_off[i]..cell_seg_off[i + 1]` (`len = n_cells + 1`).
    cell_seg_off: Vec<u32>,
    /// `1 / max(fanin, 1)` per cell (mean aggregation), precomputed with
    /// the exact arithmetic of the per-pass Exec path.
    cell_inv_fanin: Vec<f32>,
    /// Flat source row of each net node's driver message.
    net_gather: Vec<u32>,
    /// Flat destination row of each cell / net / source group row.
    cell_dst: Vec<u32>,
    net_dst: Vec<u32>,
    src_dst: Vec<u32>,
    /// Row offsets of this level's groups inside the concatenated static
    /// feature matrices of [`LevelFeats`].
    cell_feat_off: usize,
    net_feat_off: usize,
    src_feat_off: usize,
}

impl GnnPlan {
    fn build(levels: &[LevelPlan], endpoint_locs: &[(u32, u32)]) -> Self {
        let mut level_off = Vec::with_capacity(levels.len() + 1);
        let mut off = 0u32;
        for p in levels {
            level_off.push(off);
            off += (p.cell_nodes.len() + p.net_nodes.len() + p.source_nodes.len()) as u32;
        }
        level_off.push(off);
        let flat = |&(l, r): &(u32, u32)| level_off[l as usize] + r;
        let total_cell_rows: usize = levels.iter().map(|p| p.cell_nodes.len()).sum();
        let (mut cell_off, mut net_off) = (0usize, 0usize);
        let mut src_off = total_cell_rows;
        let mut flat_levels = Vec::with_capacity(levels.len());
        for (l, p) in levels.iter().enumerate() {
            let (nc, nn, ns) = (p.cell_nodes.len(), p.net_nodes.len(), p.source_nodes.len());
            // `cell_seg` ascends by construction, so per-segment counts +
            // prefix sum reproduce its runs exactly.
            let mut cell_seg_off = vec![0u32; nc + 1];
            for &s in &p.cell_seg {
                cell_seg_off[s as usize + 1] += 1;
            }
            for i in 1..cell_seg_off.len() {
                cell_seg_off[i] += cell_seg_off[i - 1];
            }
            // Scatter destinations: invert the concat permutation, so
            // writing group rows straight to their level-order positions
            // replaces the per-level concat + gather of the Exec path.
            let base = level_off[l];
            let mut inv = vec![0u32; p.perm.len()];
            for (i, &c) in p.perm.iter().enumerate() {
                inv[c as usize] = i as u32;
            }
            flat_levels.push(FlatLevel {
                n_cells: nc,
                n_nets: nn,
                n_srcs: ns,
                cell_gather: p.cell_gather.iter().map(flat).collect(),
                cell_seg_off,
                cell_inv_fanin: p.cell_fanin.iter().map(|&c| 1.0 / c.max(1.0)).collect(),
                net_gather: p.net_gather.iter().map(flat).collect(),
                cell_dst: (0..nc).map(|c| base + inv[c]).collect(),
                net_dst: (nc..nc + nn).map(|c| base + inv[c]).collect(),
                src_dst: (nc + nn..nc + nn + ns).map(|c| base + inv[c]).collect(),
                cell_feat_off: cell_off,
                net_feat_off: net_off,
                src_feat_off: src_off,
            });
            cell_off += nc;
            net_off += nn;
            src_off += ns;
        }
        // Debug/env-gated plan validation (RTT_SANITIZE=1): every gather
        // and scatter index must address a real flat row, and segment
        // offsets must tile the gathered messages exactly.
        if rtt_nn::sanitize::enabled() {
            let rows = off as usize;
            for fl in &flat_levels {
                rtt_nn::sanitize::check_csr(
                    "gnn_plan.cell_seg",
                    &fl.cell_seg_off,
                    &fl.cell_gather,
                    rows,
                );
                rtt_nn::sanitize::check_rows("gnn_plan.net_gather", &fl.net_gather, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.cell_dst", &fl.cell_dst, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.net_dst", &fl.net_dst, rows);
                rtt_nn::sanitize::check_rows("gnn_plan.src_dst", &fl.src_dst, rows);
            }
        }
        Self {
            endpoint_rows: endpoint_locs.iter().map(flat).collect(),
            total_rows: off as usize,
            total_cell_rows,
            levels: flat_levels,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct LevelPlan {
    cell_nodes: Vec<u32>,
    net_nodes: Vec<u32>,
    source_nodes: Vec<u32>,
    /// `(level, row)` of each fanin message of the cell group, flattened.
    cell_gather: Vec<(u32, u32)>,
    /// Segment id (index into `cell_nodes`) of each gathered message.
    cell_seg: Vec<u32>,
    /// Fanin count per cell node (for mean aggregation).
    cell_fanin: Vec<f32>,
    /// `(level, row)` of the single driver message of each net node.
    net_gather: Vec<(u32, u32)>,
    /// Restores level order from the `[cells, nets, sources]` concat.
    perm: Vec<u32>,
}

impl GnnSchedule {
    /// Plans the levelized propagation for `graph`.
    pub fn build(graph: &TimingGraph) -> Self {
        let mut node_loc = vec![(0u32, 0u32); graph.num_nodes()];
        let mut levels = Vec::with_capacity(graph.max_level() as usize + 1);

        for l in 0..=graph.max_level() {
            let nodes = graph.nodes_at_level(l);
            let mut plan = LevelPlan::default();
            // Partition the level into groups.
            for &v in nodes {
                match graph.node_kind(v) {
                    NodeKind::CellOut => plan.cell_nodes.push(v),
                    NodeKind::NetSink => plan.net_nodes.push(v),
                    NodeKind::Source => plan.source_nodes.push(v),
                }
            }
            // Record each node's (level, row-in-level-order) location.
            for (row, &v) in nodes.iter().enumerate() {
                node_loc[v as usize] = (l, row as u32);
            }
            // Message gathers reference already-computed levels.
            for (seg, &v) in plan.cell_nodes.iter().enumerate() {
                let mut fanin = 0u32;
                for e in graph.fanin(v) {
                    debug_assert_eq!(e.kind, EdgeKind::Cell);
                    plan.cell_gather.push(node_loc[e.from as usize]);
                    plan.cell_seg.push(seg as u32);
                    fanin += 1;
                }
                // Fanin counts are tiny (gate arity ≤ 4 plus buffers);
                // `as f32` is exact far beyond any real value, so the
                // range check is a debug invariant, not a release panic.
                debug_assert!(fanin < (1 << 24), "fanin {fanin} exceeds f32 exact range");
                plan.cell_fanin.push(fanin as f32);
            }
            for &v in &plan.net_nodes {
                // `TimingGraph::try_build` rejects driverless net sinks, so
                // a missing driver is a debug invariant; release builds
                // gather from the origin slot instead of panicking.
                let loc = match graph.fanin(v).next() {
                    Some(e) => {
                        debug_assert_eq!(e.kind, EdgeKind::Net);
                        node_loc[e.from as usize]
                    }
                    None => {
                        debug_assert!(false, "net node {v} has a driver (try_build invariant)");
                        (0, 0)
                    }
                };
                plan.net_gather.push(loc);
            }
            // Permutation: concat order position of each level-order node.
            let mut concat_pos = vec![0u32; nodes.len()];
            let mut cursor = 0u32;
            for group in [&plan.cell_nodes, &plan.net_nodes, &plan.source_nodes] {
                for &v in group {
                    let (_, row) = node_loc[v as usize];
                    concat_pos[row as usize] = cursor;
                    cursor += 1;
                }
            }
            plan.perm = concat_pos;
            levels.push(plan);
        }

        let endpoint_locs: Vec<(u32, u32)> =
            graph.endpoints().iter().map(|&v| node_loc[v as usize]).collect();
        let plan = GnnPlan::build(&levels, &endpoint_locs);
        Self { levels, endpoint_locs, node_loc, plan }
    }

    /// Number of topological levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of endpoints the schedule will embed.
    pub fn num_endpoints(&self) -> usize {
        self.endpoint_locs.len()
    }

    /// `(level, row)` location of a graph node in the level matrices —
    /// usable as an [`Exec::gather_multi`] index over the output of
    /// [`NetlistGnn::forward_levels`].
    pub fn loc_of(&self, node: u32) -> (u32, u32) {
        self.node_loc[node as usize]
    }

    /// Locations of several nodes (convenience for batched gathers).
    pub fn locs_of(&self, nodes: &[u32]) -> Vec<(u32, u32)> {
        nodes.iter().map(|&v| self.loc_of(v)).collect()
    }

    /// Total graph nodes — the row count of the flat embedding matrix
    /// that [`NetlistGnn::forward_flat`] fills (one row per pin).
    pub fn num_nodes(&self) -> usize {
        self.node_loc.len()
    }

    /// Row of each endpoint in the flat embedding matrix, aligned with
    /// `TimingGraph::endpoints()` order.
    pub fn flat_endpoint_rows(&self) -> &[u32] {
        &self.plan.endpoint_rows
    }
}

/// Per-level feature tensors consumed by the GNN forward pass, aligned
/// with a [`GnnSchedule`]'s groups.
#[derive(Clone, Debug, Default)]
pub struct LevelFeats {
    /// Cell-group features, one `[n_cells, CELL_FEATURE_DIM]` per level.
    pub cell: Vec<Option<Tensor>>,
    /// Net-group features, `[n_nets, NET_FEATURE_DIM]` per level.
    pub net: Vec<Option<Tensor>>,
    /// Source-group features, `[n_src, CELL_FEATURE_DIM]` per level.
    pub source: Vec<Option<Tensor>>,
    /// Every cell-group row (all levels, level order) followed by every
    /// source-group row — both groups feed `f_c2`, so the flat inference
    /// path runs them as a single matmul chain per pass instead of two
    /// tiny ones per level. Row values duplicate `cell` / `source`.
    pub cell_src_flat: Option<Tensor>,
    /// Every net-group row (all levels, level order), the single `f_n`
    /// input of the flat path.
    pub net_flat: Option<Tensor>,
}

impl LevelFeats {
    /// Assembles group feature matrices from extracted node features.
    pub fn assemble(schedule: &GnnSchedule, features: &NodeFeatures) -> Self {
        let mut out = Self::default();
        for plan in &schedule.levels {
            out.cell
                .push(group_matrix(&plan.cell_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
            out.net.push(group_matrix(&plan.net_nodes, NET_FEATURE_DIM, |v| features.net_row(v)));
            out.source
                .push(group_matrix(&plan.source_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
        }
        let mut cs = Vec::new();
        for t in out.cell.iter().flatten().chain(out.source.iter().flatten()) {
            cs.extend_from_slice(t.data());
        }
        if !cs.is_empty() {
            let rows = cs.len() / CELL_FEATURE_DIM;
            out.cell_src_flat = Some(Tensor::from_vec(&[rows, CELL_FEATURE_DIM], cs));
        }
        let mut nf = Vec::new();
        for t in out.net.iter().flatten() {
            nf.extend_from_slice(t.data());
        }
        if !nf.is_empty() {
            let rows = nf.len() / NET_FEATURE_DIM;
            out.net_flat = Some(Tensor::from_vec(&[rows, NET_FEATURE_DIM], nf));
        }
        out
    }
}

fn group_matrix<'f>(nodes: &[u32], dim: usize, row: impl Fn(u32) -> &'f [f32]) -> Option<Tensor> {
    if nodes.is_empty() {
        return None;
    }
    let mut data = Vec::with_capacity(nodes.len() * dim);
    for &v in nodes {
        data.extend_from_slice(row(v));
    }
    Some(Tensor::from_vec(&[nodes.len(), dim], data))
}

/// The three MLPs of Equation 3 and the levelized forward pass.
#[derive(Clone, Debug)]
pub struct NetlistGnn {
    f_c1: Mlp,
    f_c2: Mlp,
    f_n: Mlp,
    residual: bool,
}

impl NetlistGnn {
    /// Registers the GNN parameters (`f_c1`, `f_c2`, `f_n` — 3-layer MLPs
    /// as in the paper).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, config: &ModelConfig) -> Self {
        let d = config.embed_dim;
        let h = config.gnn_hidden;
        if config.residual {
            // Small-increment initialization: fanin cones reach hundreds of
            // levels, so per-level increments must start near zero.
            Self {
                f_c1: Mlp::new_scaled(store, rng, &[d, h, d], 0.1),
                f_c2: Mlp::new_scaled(store, rng, &[CELL_FEATURE_DIM, h, d], 0.1),
                f_n: Mlp::new_scaled(store, rng, &[NET_FEATURE_DIM, h, d], 0.1),
                residual: true,
            }
        } else {
            Self {
                f_c1: Mlp::new(store, rng, &[d, h, d]),
                f_c2: Mlp::new(store, rng, &[CELL_FEATURE_DIM, h, d]),
                f_n: Mlp::new(store, rng, &[NET_FEATURE_DIM, h, d]),
                residual: false,
            }
        }
    }

    /// Runs levelized propagation and returns the endpoint embedding
    /// matrix `[num_endpoints, embed_dim]` on any execution backend
    /// (`&Tape` for training, `&InferCtx` for tape-free serving).
    ///
    /// # Panics
    ///
    /// Panics if `feats` does not match `schedule` (group shape mismatch).
    pub fn forward<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> E::Value {
        rtt_obs::span!("core::gnn_forward");
        let level_vars = self.forward_levels(ex, store, schedule, feats, aggregation);
        ex.gather_multi(&level_vars, &schedule.endpoint_locs)
    }

    /// Like [`Self::forward`], but returns every per-level embedding matrix
    /// so callers can read out arbitrary node embeddings via
    /// [`GnnSchedule::loc_of`] (the end-to-end baseline predicts at all
    /// pins, not only endpoints).
    pub fn forward_levels<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> Vec<E::Value> {
        let mut level_vars: Vec<E::Value> = Vec::with_capacity(schedule.levels.len());
        for (l, plan) in schedule.levels.iter().enumerate() {
            let mut groups: Vec<E::Value> = Vec::new();

            if !plan.cell_nodes.is_empty() {
                let msgs = ex.gather_multi(&level_vars, &plan.cell_gather);
                let agg = match aggregation {
                    Aggregation::Max => ex.segment_max(msgs, &plan.cell_seg, plan.cell_nodes.len()),
                    Aggregation::Mean => {
                        let sum = ex.segment_sum(msgs, &plan.cell_seg, plan.cell_nodes.len());
                        let inv: Vec<f32> =
                            plan.cell_fanin.iter().map(|&c| 1.0 / c.max(1.0)).collect();
                        ex.scale_rows(sum, &inv)
                    }
                };
                let feat = ex.constant(feats.cell[l].clone().expect("cell feats present"));
                let h =
                    if self.residual {
                        // Residual: accumulate a *bounded* non-negative
                        // increment on top of the worst fanin message,
                        // mirroring arrival-time propagation. The context into
                        // f_c1 is tanh-bounded: an increment proportional to
                        // the accumulated magnitude would grow exponentially
                        // over hundred-level cones.
                        let ctx = ex.tanh(agg);
                        let inc = ex.relu(ex.add(
                            self.f_c1.forward(ex, store, ctx),
                            self.f_c2.forward(ex, store, feat),
                        ));
                        ex.add(agg, inc)
                    } else {
                        // Literal Equation 3.
                        ex.relu(ex.add(
                            self.f_c1.forward(ex, store, agg),
                            self.f_c2.forward(ex, store, feat),
                        ))
                    };
                groups.push(h);
            }
            if !plan.net_nodes.is_empty() {
                let msg = ex.gather_multi(&level_vars, &plan.net_gather);
                let feat = ex.constant(feats.net[l].clone().expect("net feats present"));
                let inc = if self.residual {
                    ex.relu(self.f_n.forward(ex, store, feat))
                } else {
                    ex.relu(ex.add(msg, self.f_n.forward(ex, store, feat)))
                };
                let h = if self.residual { ex.add(msg, inc) } else { inc };
                groups.push(h);
            }
            if !plan.source_nodes.is_empty() {
                let feat = ex.constant(feats.source[l].clone().expect("source feats present"));
                let h = ex.relu(self.f_c2.forward(ex, store, feat));
                groups.push(h);
            }

            let concat = groups
                .into_iter()
                .reduce(|a, b| ex.concat_rows(a, b))
                .expect("every level has nodes");
            level_vars.push(ex.gather_rows(concat, &plan.perm));
        }
        level_vars
    }

    /// Number of scratch tensors [`Self::forward_flat`] consumes.
    pub const FLAT_SCRATCH: usize = 8;

    /// Batched, tape-free levelized forward over the flat plan built by
    /// [`GnnSchedule::build`]. Fills `bufs[0]` with the
    /// `[num_nodes, embed_dim]` flat embedding matrix; read node
    /// embeddings out of it via [`GnnSchedule::flat_endpoint_rows`].
    ///
    /// Bit-identical to [`Self::forward_levels`] by construction:
    /// * the static `f_c2` / `f_n` products are hoisted out of the level
    ///   loop, which is row-wise exact (matmul rows are independent and
    ///   accumulate in ascending-`k` order; bias and ReLU are
    ///   elementwise);
    /// * CSR segment reductions scan the same rows in the same ascending
    ///   order as the legacy `seg[]` kernels;
    /// * in-place adds/activations produce the same values as the
    ///   copy-then-transform Exec ops, in the same operation order;
    /// * the per-level concat + permutation gather is replaced by direct
    ///   scatters to the same destination rows.
    ///
    /// # Panics
    ///
    /// Panics if `bufs.len() != FLAT_SCRATCH` or `feats` does not match
    /// `schedule`.
    // rtt-lint: hot
    pub fn forward_flat(
        &self,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
        bufs: &mut [Tensor],
    ) {
        rtt_obs::span!("core::gnn_forward");
        let [flat, sc, sn, msgs, agg, ctxv, t0, t1] = bufs else {
            unreachable!("forward_flat needs exactly {} scratch buffers", Self::FLAT_SCRATCH)
        };
        let plan = &schedule.plan;
        let d = self.f_c1.out_dim();
        if let Some(cs) = &feats.cell_src_flat {
            self.f_c2.forward_into(store, cs, t0, t1, sc);
            // Source rows always read out through ReLU; cell rows stay
            // raw (they join the pre-activation sum with f_c1).
            for v in &mut sc.data_mut()[plan.total_cell_rows * d..] {
                *v = v.max(0.0);
            }
        }
        if let Some(nf) = &feats.net_flat {
            self.f_n.forward_into(store, nf, t0, t1, sn);
            if self.residual {
                // Residual nets add `relu(f_n(feat))` as the increment.
                ops::relu_in_place(sn);
            }
        }
        flat.reset_for_overwrite(&[plan.total_rows, d]);
        for fl in &plan.levels {
            if fl.n_cells > 0 {
                ops::gather_rows_flat(flat, &fl.cell_gather, msgs);
                match aggregation {
                    Aggregation::Max => ops::segment_max_csr(msgs, &fl.cell_seg_off, agg),
                    Aggregation::Mean => {
                        ops::segment_sum_csr(msgs, &fl.cell_seg_off, agg);
                        ops::scale_rows_in_place(agg, &fl.cell_inv_fanin);
                    }
                }
                if self.residual {
                    ops::tanh_to(agg, ctxv);
                    self.f_c1.forward_into(store, ctxv, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc, fl.cell_feat_off);
                    ops::relu_in_place(msgs);
                    agg.add_assign(msgs);
                    ops::scatter_rows(agg, 0, &fl.cell_dst, flat);
                } else {
                    self.f_c1.forward_into(store, agg, t0, t1, msgs);
                    ops::add_rows_range(msgs, sc, fl.cell_feat_off);
                    ops::relu_in_place(msgs);
                    ops::scatter_rows(msgs, 0, &fl.cell_dst, flat);
                }
            }
            if fl.n_nets > 0 {
                ops::gather_rows_flat(flat, &fl.net_gather, msgs);
                ops::add_rows_range(msgs, sn, fl.net_feat_off);
                if !self.residual {
                    ops::relu_in_place(msgs);
                }
                ops::scatter_rows(msgs, 0, &fl.net_dst, flat);
            }
            if fl.n_srcs > 0 {
                ops::scatter_rows(sc, fl.src_feat_off, &fl.src_dst, flat);
            }
        }
        rtt_nn::sanitize::check_finite("gnn_forward_flat", flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_netlist::CellLibrary;
    use rtt_nn::Tape;
    use rtt_place::{place, PlaceConfig};

    fn world(cells: usize) -> (GnnSchedule, LevelFeats, usize) {
        let lib = CellLibrary::asap7_like();
        let nl = if cells == 0 {
            ripple_carry_adder(4, &lib)
        } else {
            GenParams::new("g", cells, 3).generate(&lib).netlist
        };
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let schedule = GnnSchedule::build(&graph);
        let features = NodeFeatures::extract(&nl, &lib, &graph, &pl);
        let feats = LevelFeats::assemble(&schedule, &features);
        (schedule, feats, graph.endpoints().len())
    }

    #[test]
    fn schedule_covers_all_endpoints() {
        let (schedule, _, n_ep) = world(0);
        assert_eq!(schedule.num_endpoints(), n_ep);
        assert!(schedule.num_levels() > 3);
    }

    #[test]
    fn sources_only_at_level_zero() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            if l > 0 {
                assert!(plan.source_nodes.is_empty(), "source above level 0");
                assert_eq!(plan.cell_gather.is_empty(), plan.cell_nodes.is_empty());
            }
        }
        assert!(!schedule.levels[0].source_nodes.is_empty());
        assert!(schedule.levels[0].cell_nodes.is_empty());
    }

    #[test]
    fn gathers_reference_earlier_levels_only() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            for &(src_level, _) in plan.cell_gather.iter().chain(&plan.net_gather) {
                assert!((src_level as usize) < l, "forward reference at level {l}");
            }
        }
    }

    #[test]
    fn forward_produces_endpoint_matrix() {
        let (schedule, feats, n_ep) = world(150);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let t = tape.value(emb);
        assert_eq!(t.shape(), &[n_ep, cfg.embed_dim]);
        assert!(t.data().iter().all(|v| v.is_finite()));
        // Embeddings must differ across endpoints (no collapse at init).
        let first = t.row(0).to_vec();
        assert!((1..n_ep).any(|r| t.row(r) != first.as_slice()));
    }

    #[test]
    fn mean_and_max_aggregation_differ() {
        let (schedule, feats, _) = world(120);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let a = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max));
        let b = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Mean));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn gradients_flow_to_all_three_mlps() {
        let (schedule, feats, _) = world(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let loss = emb.mul(emb).mean();
        let grads = tape.backward(loss);
        let mut with_grad = 0;
        for (id, _) in store.iter() {
            if grads.of(id).is_some_and(|g| g.norm() > 0.0) {
                with_grad += 1;
            }
        }
        // 3 MLPs × 2 layers × (w, b) = 12 parameter tensors.
        assert!(with_grad >= 10, "only {with_grad} params receive gradient");
    }
}
