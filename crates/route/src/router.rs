//! Net routing: topology + congestion detour + RC reduction.

use rtt_netlist::{CellLibrary, NetId, Netlist, PinId};
use rtt_place::{Grid, Placement, Point, Rect};

use crate::rc::{elmore_delays, RcTree};
use crate::steiner::rectilinear_mst;

/// Load presented by a top-level output port, fF.
const PORT_CAP_FF: f32 = 1.0;

/// Routing configuration (wire parasitics and congestion response).
#[derive(Clone, Debug, PartialEq)]
pub struct RouteConfig {
    /// Resolution of the RUDY congestion map used for detours.
    pub rudy_grid: usize,
    /// How strongly congestion above the die average stretches wires.
    pub detour_strength: f32,
    /// Extra detour applied per unit of macro overlap along an edge.
    pub macro_detour: f32,
    /// Wire resistance, kΩ per µm.
    pub unit_res_kohm_per_um: f32,
    /// Wire capacitance, fF per µm.
    pub unit_cap_ff_per_um: f32,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            rudy_grid: 32,
            detour_strength: 0.35,
            macro_detour: 0.45,
            // ASAP7-like thin-wire parasitics: ~130 Ω/µm, ~0.2 fF/µm, so a
            // 50 µm net costs tens of ps — comparable to a gate delay.
            unit_res_kohm_per_um: 0.13,
            unit_cap_ff_per_um: 0.20,
        }
    }
}

/// One routed net: topology length and reduced RC timing quantities.
#[derive(Clone, Debug)]
pub struct RoutedNet {
    /// The net this entry describes.
    pub net: NetId,
    /// Total routed wirelength (detours included), µm.
    pub wirelength_um: f32,
    /// Total capacitance seen by the driver (wire + sink pins), fF.
    pub total_cap_ff: f32,
    sink_delay: Vec<(PinId, f32)>,
}

impl RoutedNet {
    /// Elmore wire delay from the driver to `sink`, ps.
    pub fn sink_delay(&self, sink: PinId) -> Option<f32> {
        self.sink_delay.iter().find(|(p, _)| *p == sink).map(|(_, d)| *d)
    }

    /// All `(sink, delay_ps)` pairs.
    pub fn sink_delays(&self) -> &[(PinId, f32)] {
        &self.sink_delay
    }
}

/// Result of routing a whole design.
#[derive(Clone, Debug)]
pub struct Routing {
    nets: Vec<Option<RoutedNet>>,
    congestion: Grid,
    total_wl: f64,
}

impl Routing {
    /// The routed entry for `net`, if it is live.
    pub fn net(&self, net: NetId) -> Option<&RoutedNet> {
        self.nets.get(net.index()).and_then(Option::as_ref)
    }

    /// The RUDY congestion map the detours were derived from.
    pub fn congestion(&self) -> &Grid {
        &self.congestion
    }

    /// Total routed wirelength, µm.
    pub fn total_wirelength(&self) -> f64 {
        self.total_wl
    }
}

/// Builds the RUDY (rectangular uniform wire density) map — the paper's
/// second layout feature. Each net smears `hpwl / bbox_area` over its
/// bounding box; values are per-µm² wire volume.
pub fn rudy_map(netlist: &Netlist, placement: &Placement, w: usize, h: usize) -> Grid {
    let mut g = Grid::new(w, h, placement.floorplan().die);
    for (_, net) in netlist.nets() {
        let mut r = {
            let d = placement.pin_position(netlist, net.driver);
            Rect::new(d.x, d.y, d.x, d.y)
        };
        for &s in &net.sinks {
            let p = placement.pin_position(netlist, s);
            r = Rect::new(r.x0.min(p.x), r.y0.min(p.y), r.x1.max(p.x), r.y1.max(p.y));
        }
        let hpwl = r.width() + r.height();
        if hpwl > 0.0 {
            g.splat(r, hpwl);
        }
    }
    g.normalize_by_bin_area();
    g
}

/// Routes every live net of `netlist` over `placement`.
///
/// Deterministic: no randomness is involved; detours come from the static
/// RUDY estimate and macro overlaps.
pub fn route(
    netlist: &Netlist,
    library: &CellLibrary,
    placement: &Placement,
    config: &RouteConfig,
) -> Routing {
    let obs = rtt_obs::span("route::route");
    obs.add("nets", netlist.num_nets() as u64);
    let congestion = rudy_map(netlist, placement, config.rudy_grid, config.rudy_grid);
    let mean_c = {
        let v = congestion.values();
        let s: f32 = v.iter().sum();
        (s / v.len() as f32).max(f32::MIN_POSITIVE)
    };
    let macros = &placement.floorplan().macros;

    let mut nets: Vec<Option<RoutedNet>> = vec![None; netlist.net_capacity()];
    let mut total_wl = 0.0f64;
    for (nid, net) in netlist.nets() {
        let mut points = Vec::with_capacity(1 + net.sinks.len());
        points.push(placement.pin_position(netlist, net.driver));
        for &s in &net.sinks {
            points.push(placement.pin_position(netlist, s));
        }
        let edges = rectilinear_mst(&points);

        let mut tree = RcTree::with_nodes(points.len());
        let mut wl = 0.0f32;
        for &(a, b) in &edges {
            let base = points[a].manhattan(points[b]).max(1e-3);
            let factor = detour_factor(&congestion, mean_c, macros, points[a], points[b], config);
            let len = base * factor;
            wl += len;
            tree.set_edge(a, b, len * config.unit_res_kohm_per_um, len * config.unit_cap_ff_per_um);
        }
        for (i, &s) in net.sinks.iter().enumerate() {
            let cap = match netlist.pin(s).cell {
                Some(c) => library.cell_type(netlist.cell(c).type_id).pin_cap_ff,
                None => PORT_CAP_FF,
            };
            tree.add_node_cap(i + 1, cap);
        }
        let delays = elmore_delays(&tree);
        let sink_delay = net.sinks.iter().enumerate().map(|(i, &s)| (s, delays[i + 1])).collect();
        total_wl += f64::from(wl);
        nets[nid.index()] = Some(RoutedNet {
            net: nid,
            wirelength_um: wl,
            total_cap_ff: tree.total_cap(),
            sink_delay,
        });
    }
    Routing { nets, congestion, total_wl }
}

/// Detour multiplier for a tree edge: 1 plus congestion pressure plus macro
/// blockage pressure.
fn detour_factor(
    congestion: &Grid,
    mean_c: f32,
    macros: &[Rect],
    a: Point,
    b: Point,
    config: &RouteConfig,
) -> f32 {
    // Sample congestion at the endpoints and midpoint.
    let mid = Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
    let mut c = 0.0;
    for p in [a, mid, b] {
        let (bx, by) = congestion.bin_of(p.x, p.y);
        c += congestion.at(bx, by);
    }
    c /= 3.0;
    let pressure = ((c / mean_c) - 1.0).clamp(0.0, 3.0);

    // Macro blockage: fraction of the edge bounding box covered by macros.
    let bbox = Rect::bounding(a, b);
    let mut blocked = 0.0f32;
    if bbox.area() > 0.0 {
        for m in macros {
            if m.overlaps(&bbox) {
                let ox = (bbox.x1.min(m.x1) - bbox.x0.max(m.x0)).max(0.0);
                let oy = (bbox.y1.min(m.y1) - bbox.y0.max(m.y0)).max(0.0);
                blocked += (ox * oy) / bbox.area();
            }
        }
    }
    1.0 + config.detour_strength * pressure + config.macro_detour * blocked.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_place::{place, PlaceConfig};

    fn setup(cells: usize, macros: usize) -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("r", cells, 5).generate(&lib);
        let pl = place(&d.netlist, &lib, macros, &PlaceConfig::default());
        (lib, d.netlist, pl)
    }

    #[test]
    fn every_live_net_is_routed() {
        let (lib, nl, pl) = setup(200, 1);
        let r = route(&nl, &lib, &pl, &RouteConfig::default());
        for (nid, net) in nl.nets() {
            let rn = r.net(nid).expect("routed");
            assert_eq!(rn.sink_delays().len(), net.sinks.len());
            assert!(rn.total_cap_ff > 0.0);
            for &(_, d) in rn.sink_delays() {
                assert!(d.is_finite() && d >= 0.0);
            }
        }
        assert!(r.total_wirelength() > 0.0);
    }

    #[test]
    fn longer_nets_have_larger_delay() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(8, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let r = route(&nl, &lib, &pl, &RouteConfig::default());
        // Across all 2-pin nets, delay should correlate with wirelength:
        // the longest 2-pin net must be slower than the shortest.
        let mut two_pin: Vec<(f32, f32)> = nl
            .nets()
            .filter(|(_, n)| n.sinks.len() == 1)
            .map(|(nid, n)| {
                let rn = r.net(nid).unwrap();
                (rn.wirelength_um, rn.sink_delay(n.sinks[0]).unwrap())
            })
            .collect();
        two_pin.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (short, long) = (two_pin.first().unwrap(), two_pin.last().unwrap());
        assert!(long.0 > short.0);
        assert!(long.1 > short.1, "delay {} !> {}", long.1, short.1);
    }

    #[test]
    fn routing_is_deterministic() {
        let (lib, nl, pl) = setup(150, 0);
        let a = route(&nl, &lib, &pl, &RouteConfig::default());
        let b = route(&nl, &lib, &pl, &RouteConfig::default());
        assert_eq!(a.total_wirelength(), b.total_wirelength());
    }

    #[test]
    fn detours_only_lengthen() {
        let (lib, nl, pl) = setup(300, 2);
        let no_detour =
            RouteConfig { detour_strength: 0.0, macro_detour: 0.0, ..RouteConfig::default() };
        let base = route(&nl, &lib, &pl, &no_detour);
        let full = route(&nl, &lib, &pl, &RouteConfig::default());
        assert!(full.total_wirelength() >= base.total_wirelength());
    }

    #[test]
    fn rudy_mass_tracks_hpwl() {
        let (_, nl, pl) = setup(200, 0);
        let g = rudy_map(&nl, &pl, 16, 16);
        let (bw, bh) = g.bin_size();
        let mass: f32 = g.values().iter().map(|v| v * bw * bh).sum();
        let hpwl = pl.hpwl(&nl) as f32;
        assert!((mass - hpwl).abs() / hpwl < 0.05, "mass {mass} vs hpwl {hpwl}");
    }

    #[test]
    fn dead_net_is_not_routed() {
        let (lib, mut nl, pl) = setup(100, 0);
        let (nid, _) = nl.nets().next().unwrap();
        nl.remove_net(nid).unwrap();
        let r = route(&nl, &lib, &pl, &RouteConfig::default());
        assert!(r.net(nid).is_none());
    }
}
