//! A dense 2-D scalar grid over the die.
//!
//! Used for placement density, and reused by the feature crate for the
//! paper's three layout maps (cell density, RUDY, macro region) and by the
//! model for the pooled layout information map `M^L`.

use crate::Rect;

/// A row-major `w × h` grid of `f32` values mapped onto a die rectangle.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    w: usize,
    h: usize,
    die: Rect,
    data: Vec<f32>,
}

impl Grid {
    /// Creates a zero-filled grid of `w × h` bins covering `die`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`, `h == 0`, or the die is degenerate.
    pub fn new(w: usize, h: usize, die: Rect) -> Self {
        assert!(w > 0 && h > 0, "grid must have at least one bin");
        assert!(die.width() > 0.0 && die.height() > 0.0, "degenerate die");
        Self { w, h, die, data: vec![0.0; w * h] }
    }

    /// Grid width in bins.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Grid height in bins.
    pub fn height(&self) -> usize {
        self.h
    }

    /// The die rectangle this grid covers.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Raw values, row-major (`y * width + x`).
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at bin `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.w && y < self.h, "bin ({x},{y}) out of range");
        self.data[y * self.w + x]
    }

    /// Sets the value at bin `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.w && y < self.h, "bin ({x},{y}) out of range");
        self.data[y * self.w + x] = v;
    }

    /// Bin size in µm (width, height).
    pub fn bin_size(&self) -> (f32, f32) {
        (self.die.width() / self.w as f32, self.die.height() / self.h as f32)
    }

    /// Bin containing point `(px, py)`, clamped to the grid.
    pub fn bin_of(&self, px: f32, py: f32) -> (usize, usize) {
        let (bw, bh) = self.bin_size();
        let x = (((px - self.die.x0) / bw).floor() as isize).clamp(0, self.w as isize - 1);
        let y = (((py - self.die.y0) / bh).floor() as isize).clamp(0, self.h as isize - 1);
        (x as usize, y as usize)
    }

    /// The die-space rectangle of bin `(x, y)`.
    pub fn bin_rect(&self, x: usize, y: usize) -> Rect {
        let (bw, bh) = self.bin_size();
        Rect::new(
            self.die.x0 + bw * x as f32,
            self.die.y0 + bh * y as f32,
            self.die.x0 + bw * (x + 1) as f32,
            self.die.y0 + bh * (y + 1) as f32,
        )
    }

    /// Adds `v` to every bin overlapping `r`, weighted by the overlap
    /// fraction of the bin (standard area-smearing used for density and
    /// RUDY maps).
    pub fn splat(&mut self, r: Rect, v: f32) {
        if r.area() <= 0.0 {
            // Degenerate rect (e.g. a zero-length net): deposit into one bin.
            let (x, y) = self.bin_of(r.x0, r.y0);
            self.data[y * self.w + x] += v;
            return;
        }
        let (x0, y0) = self.bin_of(r.x0, r.y0);
        let (x1, y1) = self.bin_of(r.x1, r.y1);
        for by in y0..=y1 {
            for bx in x0..=x1 {
                let b = self.bin_rect(bx, by);
                let ox = (r.x1.min(b.x1) - r.x0.max(b.x0)).max(0.0);
                let oy = (r.y1.min(b.y1) - r.y0.max(b.y0)).max(0.0);
                let frac = (ox * oy) / r.area();
                self.data[by * self.w + bx] += v * frac;
            }
        }
    }

    /// [`Self::splat`], restricted to bins where `mask` is `true`.
    ///
    /// Mirrors `splat` exactly (including the degenerate-rect branch), so
    /// that for any masked bin the accumulated value is bit-identical to
    /// what an unrestricted splat would have deposited there — the
    /// property the delta map update in `rtt_features` relies on.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != width * height`.
    pub fn splat_masked(&mut self, r: Rect, v: f32, mask: &[bool]) {
        assert_eq!(mask.len(), self.w * self.h, "mask must cover every bin");
        if r.area() <= 0.0 {
            let (x, y) = self.bin_of(r.x0, r.y0);
            if mask[y * self.w + x] {
                self.data[y * self.w + x] += v;
            }
            return;
        }
        let (x0, y0) = self.bin_of(r.x0, r.y0);
        let (x1, y1) = self.bin_of(r.x1, r.y1);
        for by in y0..=y1 {
            for bx in x0..=x1 {
                if !mask[by * self.w + bx] {
                    continue;
                }
                let b = self.bin_rect(bx, by);
                let ox = (r.x1.min(b.x1) - r.x0.max(b.x0)).max(0.0);
                let oy = (r.y1.min(b.y1) - r.y0.max(b.y0)).max(0.0);
                let frac = (ox * oy) / r.area();
                self.data[by * self.w + bx] += v * frac;
            }
        }
    }

    /// Sum of all bin values.
    pub fn total(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum bin value.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Divides every bin by the bin area (turn mass into density).
    pub fn normalize_by_bin_area(&mut self) {
        let (bw, bh) = self.bin_size();
        let a = bw * bh;
        for v in &mut self.data {
            *v /= a;
        }
    }

    /// Scales all values so the maximum becomes 1 (no-op on an all-zero
    /// grid).
    pub fn normalize_max(&mut self) {
        let m = self.max();
        if m > 0.0 {
            for v in &mut self.data {
                *v /= m;
            }
        }
    }

    /// Average-pools the grid by an integer `factor` in both dimensions,
    /// producing a `(w/factor) × (h/factor)` grid.
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not divide both dimensions.
    #[must_use]
    pub fn avg_pool(&self, factor: usize) -> Grid {
        assert!(factor > 0 && self.w.is_multiple_of(factor) && self.h.is_multiple_of(factor));
        let (nw, nh) = (self.w / factor, self.h / factor);
        let mut out = Grid::new(nw, nh, self.die);
        let inv = 1.0 / (factor * factor) as f32;
        for y in 0..nh {
            for x in 0..nw {
                let mut s = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        s += self.at(x * factor + dx, y * factor + dy);
                    }
                }
                out.set(x, y, s * inv);
            }
        }
        out
    }

    /// Renders the grid as a binary PGM image (max-normalized), for the
    /// Fig. 5 reproduction.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.w, self.h).into_bytes();
        let m = self.max().max(f32::MIN_POSITIVE);
        // PGM rows go top-down; our y axis goes bottom-up.
        for y in (0..self.h).rev() {
            for x in 0..self.w {
                let v = (self.at(x, y) / m * 255.0).clamp(0.0, 255.0) as u8;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn bin_mapping_is_clamped() {
        let g = Grid::new(10, 10, die());
        assert_eq!(g.bin_of(0.0, 0.0), (0, 0));
        assert_eq!(g.bin_of(99.9, 99.9), (9, 9));
        assert_eq!(g.bin_of(150.0, -5.0), (9, 0));
        assert_eq!(g.bin_size(), (10.0, 10.0));
    }

    #[test]
    fn splat_conserves_mass() {
        let mut g = Grid::new(10, 10, die());
        g.splat(Rect::new(5.0, 5.0, 35.0, 25.0), 3.0);
        assert!((g.total() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn splat_point_mass() {
        let mut g = Grid::new(10, 10, die());
        g.splat(Rect::new(42.0, 57.0, 42.0, 57.0), 2.0);
        assert_eq!(g.at(4, 5), 2.0);
        assert!((g.total() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn avg_pool_preserves_mean() {
        let mut g = Grid::new(8, 8, die());
        for y in 0..8 {
            for x in 0..8 {
                g.set(x, y, (x + y) as f32);
            }
        }
        let p = g.avg_pool(4);
        assert_eq!(p.width(), 2);
        assert_eq!(p.height(), 2);
        let mean_g = g.total() / 64.0;
        let mean_p = p.total() / 4.0;
        assert!((mean_g - mean_p).abs() < 1e-5);
    }

    #[test]
    fn normalize_max_caps_at_one() {
        let mut g = Grid::new(4, 4, die());
        g.set(1, 2, 8.0);
        g.set(3, 3, 2.0);
        g.normalize_max();
        assert_eq!(g.at(1, 2), 1.0);
        assert_eq!(g.at(3, 3), 0.25);
    }

    #[test]
    fn pgm_header_and_size() {
        let g = Grid::new(4, 3, die());
        let pgm = g.to_pgm();
        assert!(pgm.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(pgm.len(), b"P5\n4 3\n255\n".len() + 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_out_of_range_panics() {
        let g = Grid::new(4, 4, die());
        let _ = g.at(4, 0);
    }

    proptest! {
        #[test]
        fn splat_mass_conservation_holds_for_any_rect(
            ax in 0.0f32..100.0, ay in 0.0f32..100.0,
            bx in 0.0f32..100.0, by in 0.0f32..100.0,
            v in 0.1f32..10.0,
        ) {
            let mut g = Grid::new(16, 16, die());
            g.splat(Rect::new(ax, ay, bx, by), v);
            prop_assert!((g.total() - v).abs() < v * 1e-3 + 1e-4);
        }

        #[test]
        fn bin_rect_contains_its_points(x in 0usize..10, y in 0usize..10) {
            let g = Grid::new(10, 10, die());
            let r = g.bin_rect(x, y);
            let c = r.center();
            prop_assert_eq!(g.bin_of(c.x, c.y), (x, y));
        }
    }
}
