//! Per-node GNN input features (paper Section IV-A).

use rtt_netlist::{CellLibrary, GateFn, Netlist, NodeKind, PinDir, TimingGraph};
use rtt_place::Placement;

/// Width of the cell-node feature vector: driving strength, pin
/// capacitance, and the gate-type one-hot.
pub const CELL_FEATURE_DIM: usize = 2 + GateFn::ALL.len();

/// Width of the net-node feature vector: the net distance.
pub const NET_FEATURE_DIM: usize = 1;

/// Physical normalization constant for distances, µm.
///
/// Distances must be normalized by a *fixed* length, not the die size:
/// wire delay depends on absolute micrometres, and the test designs have
/// different die sizes than the training designs.
pub const DIST_NORM_UM: f32 = 50.0;

/// Extracted per-node features, aligned with a [`TimingGraph`]'s node ids.
///
/// Every node gets both representations so the model can pick by
/// [`NodeKind`]: net nodes use [`Self::net_row`], cell nodes and sources
/// use [`Self::cell_row`].
#[derive(Clone, Debug)]
pub struct NodeFeatures {
    cell: Vec<f32>, // num_nodes × CELL_FEATURE_DIM
    net: Vec<f32>,  // num_nodes × NET_FEATURE_DIM
    num_nodes: usize,
}

impl NodeFeatures {
    /// Extracts features for every node of `graph`.
    ///
    /// Distances are normalized by the fixed [`DIST_NORM_UM`], strengths by
    /// the maximum drive, capacitances to a ~unit scale, so all inputs are
    /// O(1) *and* comparable across designs of different die sizes.
    pub fn extract(
        netlist: &Netlist,
        library: &CellLibrary,
        graph: &TimingGraph,
        placement: &Placement,
    ) -> Self {
        rtt_obs::span!("features::node_features");
        let n = graph.num_nodes();
        let mut cell = vec![0.0f32; n * CELL_FEATURE_DIM];
        let mut net = vec![0.0f32; n * NET_FEATURE_DIM];

        for v in 0..n as u32 {
            fill_node_rows(netlist, library, graph, placement, v, &mut cell, &mut net);
        }
        Self { cell, net, num_nodes: n }
    }

    /// Delta variant of [`Self::extract`]: recomputes only the rows of
    /// dirty pins, copying every other row from `prev` keyed by pin id.
    ///
    /// `prev_node_of_pin[p]` is the node the pin occupied in the graph
    /// `prev` was extracted from (`u32::MAX` if absent), `prev_kinds` the
    /// node kinds of that graph, `dirty_pin` a per-pin-index dirty mask
    /// over the *current* netlist's id space. Bit-identical to a fresh
    /// `extract` as long as the dirty mask covers every pin whose owning
    /// cell type, driving net, or relevant placement changed — the
    /// contract `rtt_core`'s prepare-delta path establishes from
    /// `opt::dirty_seed_pins` plus moved-cell detection.
    ///
    /// Returns the features and the number of recomputed nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn extract_delta(
        netlist: &Netlist,
        library: &CellLibrary,
        graph: &TimingGraph,
        placement: &Placement,
        prev: &NodeFeatures,
        prev_node_of_pin: &[u32],
        prev_kinds: &[NodeKind],
        dirty_pin: &[bool],
    ) -> (Self, usize) {
        rtt_obs::span!("features::node_features_delta");
        let n = graph.num_nodes();
        let mut cell = vec![0.0f32; n * CELL_FEATURE_DIM];
        let mut net = vec![0.0f32; n * NET_FEATURE_DIM];
        let mut recomputed = 0usize;

        for v in 0..n as u32 {
            let pin_id = graph.pin_of(v);
            let prev_v = prev_node_of_pin.get(pin_id.index()).copied().unwrap_or(u32::MAX);
            let clean = !dirty_pin.get(pin_id.index()).copied().unwrap_or(true)
                && prev_v != u32::MAX
                && prev_kinds[prev_v as usize] == graph.node_kind(v);
            if clean {
                let vc = v as usize;
                cell[vc * CELL_FEATURE_DIM..(vc + 1) * CELL_FEATURE_DIM]
                    .copy_from_slice(prev.cell_row(prev_v));
                net[vc * NET_FEATURE_DIM..(vc + 1) * NET_FEATURE_DIM]
                    .copy_from_slice(prev.net_row(prev_v));
            } else {
                fill_node_rows(netlist, library, graph, placement, v, &mut cell, &mut net);
                recomputed += 1;
            }
        }
        (Self { cell, net, num_nodes: n }, recomputed)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.num_nodes
    }

    /// `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// Cell-feature row of node `v`.
    pub fn cell_row(&self, v: u32) -> &[f32] {
        &self.cell[v as usize * CELL_FEATURE_DIM..(v as usize + 1) * CELL_FEATURE_DIM]
    }

    /// Net-feature row of node `v`.
    pub fn net_row(&self, v: u32) -> &[f32] {
        &self.net[v as usize * NET_FEATURE_DIM..(v as usize + 1) * NET_FEATURE_DIM]
    }
}

/// Computes both feature rows of node `v` into the flat buffers — the
/// single source of truth shared by the cold and delta extract paths, so
/// a recomputed row is bit-identical to a cold one by construction.
// rtt-lint: hot
fn fill_node_rows(
    netlist: &Netlist,
    library: &CellLibrary,
    graph: &TimingGraph,
    placement: &Placement,
    v: u32,
    cell: &mut [f32],
    net: &mut [f32],
) {
    let pin_id = graph.pin_of(v);
    let pin = netlist.pin(pin_id);

    // Cell-side features from the owning cell (ports get zeros plus
    // a port marker via zero one-hot; flop sources get DFF features).
    if let Some(cid) = pin.cell {
        let ty = library.cell_type(netlist.cell(cid).type_id);
        let row = &mut cell[v as usize * CELL_FEATURE_DIM..(v as usize + 1) * CELL_FEATURE_DIM];
        row[0] = f32::from(ty.drive) / 8.0;
        row[1] = ty.pin_cap_ff / 2.0;
        row[2 + ty.gate.one_hot_index()] = 1.0;
    }

    // Net distance for net nodes: Manhattan driver → this sink.
    if graph.node_kind(v) == NodeKind::NetSink && pin.dir == PinDir::Sink {
        if let Some(net_id) = pin.net {
            let driver = netlist.net(net_id).driver;
            let d = placement
                .pin_position(netlist, driver)
                .manhattan(placement.pin_position(netlist, pin_id));
            net[v as usize] = d / DIST_NORM_UM;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::ripple_carry_adder;
    use rtt_place::{place, PlaceConfig};

    fn world() -> (CellLibrary, Netlist, Placement, TimingGraph) {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        (lib, nl, pl, g)
    }

    #[test]
    fn dimensions_match_graph() {
        let (lib, nl, pl, g) = world();
        let f = NodeFeatures::extract(&nl, &lib, &g, &pl);
        assert_eq!(f.len(), g.num_nodes());
        assert_eq!(f.cell_row(0).len(), CELL_FEATURE_DIM);
        assert_eq!(f.net_row(0).len(), NET_FEATURE_DIM);
    }

    #[test]
    fn gate_one_hot_is_exclusive() {
        let (lib, nl, pl, g) = world();
        let f = NodeFeatures::extract(&nl, &lib, &g, &pl);
        for v in 0..g.num_nodes() as u32 {
            let hot: f32 = f.cell_row(v)[2..].iter().sum();
            let is_port = nl.pin(g.pin_of(v)).cell.is_none();
            if is_port {
                assert_eq!(hot, 0.0, "ports carry no gate type");
            } else {
                assert_eq!(hot, 1.0, "cell pins carry exactly one gate type");
            }
        }
    }

    #[test]
    fn net_distance_only_on_net_sinks() {
        let (lib, nl, pl, g) = world();
        let f = NodeFeatures::extract(&nl, &lib, &g, &pl);
        for v in 0..g.num_nodes() as u32 {
            match g.node_kind(v) {
                NodeKind::NetSink => {} // may be zero if coincident pins
                _ => assert_eq!(f.net_row(v)[0], 0.0),
            }
        }
        // At least one net sink must have a positive distance.
        let any_positive = (0..g.num_nodes() as u32)
            .any(|v| g.node_kind(v) == NodeKind::NetSink && f.net_row(v)[0] > 0.0);
        assert!(any_positive);
    }

    #[test]
    fn features_are_normalized() {
        let (lib, nl, pl, g) = world();
        let f = NodeFeatures::extract(&nl, &lib, &g, &pl);
        for v in 0..g.num_nodes() as u32 {
            for &x in f.cell_row(v) {
                assert!((0.0..=2.0).contains(&x), "cell feature {x} out of range");
            }
            // Net distances are in units of DIST_NORM_UM; they stay modest
            // for any realistic die.
            assert!(f.net_row(v)[0].is_finite() && f.net_row(v)[0] < 50.0);
        }
    }

    #[test]
    fn stronger_cells_have_larger_strength_feature() {
        let lib = CellLibrary::asap7_like();
        let mut nl = ripple_carry_adder(2, &lib);
        let (cid, cell) = nl
            .cells()
            .find(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(i, c)| (i, c.clone()))
            .unwrap();
        let out_pin = cell.output;
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let g = TimingGraph::build(&nl, &lib);
        let before = NodeFeatures::extract(&nl, &lib, &g, &pl);
        let v = g.node_of(out_pin).unwrap();
        let s_before = before.cell_row(v)[0];
        nl.resize_cell(cid, lib.pick(lib.cell_type(cell.type_id).gate, 8).unwrap(), &lib).unwrap();
        let g2 = TimingGraph::build(&nl, &lib);
        let after = NodeFeatures::extract(&nl, &lib, &g2, &pl);
        let v2 = g2.node_of(out_pin).unwrap();
        assert!(after.cell_row(v2)[0] > s_before);
    }
}
