//! Per-design preprocessing: everything the model needs, computed once.

use rtt_features::{endpoint_masks, LayoutMaps, NodeFeatures};
use rtt_netlist::{CellLibrary, Netlist, TimingGraph};
use rtt_nn::Tensor;
use rtt_place::Placement;

use crate::gnn::{GnnSchedule, LevelFeats};
use crate::ModelConfig;

/// A design converted into model inputs: GNN schedule and features, stacked
/// layout maps, endpoint masks, and (optionally meaningful) targets.
///
/// This corresponds to the paper's *preprocessing* stage of Table III:
/// graph construction, topological levels, and endpoint-wise critical
/// region generation.
///
/// Masks are stored sparsely (set-bin indices per endpoint): a dense
/// `[num_endpoints, (G/4)²]` matrix would need gigabytes at the paper's
/// 512×512 grid on endpoint-heavy designs. Dense rows are materialized per
/// batch via [`Self::dense_mask_rows`].
#[derive(Clone, Debug)]
pub struct PreparedDesign {
    /// Design name (for reporting).
    pub name: String,
    /// Levelized propagation plan.
    pub schedule: GnnSchedule,
    /// Per-level node feature matrices.
    pub feats: LevelFeats,
    /// Stacked `[3, G, G]` layout maps (density, RUDY, macro).
    pub maps: Tensor,
    /// Set bins of each endpoint's critical-region mask, at pooled
    /// resolution (row-major indices into the `(G/4)²` map).
    pub masks: Vec<Vec<u32>>,
    /// Pooled mask width (`G/4`).
    pub mask_grid: usize,
    /// Ground-truth endpoint arrival times, aligned with
    /// `graph.endpoints()` order (ps).
    pub targets: Vec<f32>,
}

impl PreparedDesign {
    /// Prepares a design for training or inference.
    ///
    /// `targets` must be aligned with `graph.endpoints()`; pass zeros for
    /// pure inference.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the endpoint count.
    pub fn prepare(
        netlist: &Netlist,
        library: &CellLibrary,
        placement: &Placement,
        graph: &TimingGraph,
        config: &ModelConfig,
        targets: Vec<f32>,
    ) -> Self {
        rtt_obs::span!("core::prepare");
        assert_eq!(targets.len(), graph.endpoints().len(), "one target per endpoint");
        let schedule = GnnSchedule::build(graph);
        let features = NodeFeatures::extract(netlist, library, graph, placement);
        let feats = LevelFeats::assemble(&schedule, &features);

        let layout = LayoutMaps::extract(netlist, library, placement, config.grid);
        let maps = Tensor::from_vec(&[3, config.grid, config.grid], layout.stacked());

        let mg = config.pooled_grid();
        let mask_data = endpoint_masks(netlist, placement, graph, mg);
        let masks = mask_data
            .chunks_exact(mg * mg)
            .map(|row| {
                row.iter().enumerate().filter(|(_, &v)| v > 0.0).map(|(i, _)| i as u32).collect()
            })
            .collect();

        Self { name: netlist.name.clone(), schedule, feats, maps, masks, mask_grid: mg, targets }
    }

    /// Number of endpoints (prediction rows).
    pub fn num_endpoints(&self) -> usize {
        self.targets.len()
    }

    /// Materializes dense 0/1 mask rows for the given endpoint indices
    /// (`[indices.len(), (G/4)²]`, row-major).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn dense_mask_rows(&self, indices: &[u32]) -> Tensor {
        let mut out = Tensor::default();
        self.dense_mask_rows_into(indices, &mut out);
        out
    }

    /// [`Self::dense_mask_rows`] into a caller-provided buffer, so the
    /// batched inference path reuses one allocation across chunks.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn dense_mask_rows_into(&self, indices: &[u32], out: &mut Tensor) {
        let cols = self.mask_grid * self.mask_grid;
        out.reset(&[indices.len().max(1), cols], 0.0);
        let data = out.data_mut();
        for (r, &ep) in indices.iter().enumerate() {
            for &bin in &self.masks[ep as usize] {
                data[r * cols + bin as usize] = 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::ripple_carry_adder;
    use rtt_place::{place, PlaceConfig};

    #[test]
    fn prepared_shapes_are_consistent() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let cfg = ModelConfig::tiny();
        let n_ep = graph.endpoints().len();
        let prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, vec![1.0; n_ep]);
        assert_eq!(prep.num_endpoints(), n_ep);
        assert_eq!(prep.maps.shape(), &[3, cfg.grid, cfg.grid]);
        assert_eq!(prep.masks.len(), n_ep);
        assert_eq!(prep.mask_grid, cfg.pooled_grid());
        // Dense materialization matches the sparse storage.
        let idx: Vec<u32> = (0..n_ep as u32).collect();
        let dense = prep.dense_mask_rows(&idx);
        assert_eq!(dense.shape(), &[n_ep, cfg.pooled_grid() * cfg.pooled_grid()]);
        for (r, bins) in prep.masks.iter().enumerate() {
            let ones = dense.row(r).iter().filter(|&&v| v.to_bits() == 1.0f32.to_bits()).count();
            assert_eq!(ones, bins.len());
        }
        assert_eq!(prep.schedule.num_endpoints(), n_ep);
        assert_eq!(prep.name, nl.name);
    }

    #[test]
    #[should_panic(expected = "one target per endpoint")]
    fn target_count_is_checked() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(2, &lib);
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let _ = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &ModelConfig::tiny(), vec![]);
    }
}
