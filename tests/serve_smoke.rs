//! Tier-1 smoke test for the prediction daemon: ephemeral port, HTTP
//! predictions bit-exact against the library path, hot-reload swapping
//! real weights, runtime design registration, and a clean drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use restructure_timing::model::model_io::save_model;
use restructure_timing::netlist::write_verilog;
use restructure_timing::place::write_placement;
use restructure_timing::prelude::*;
use restructure_timing::serve::{ServeConfig, Server};

fn fixture(bits: usize) -> (CellLibrary, Netlist, Placement, TimingGraph) {
    let lib = CellLibrary::asap7_like();
    let nl = ripple_carry_adder(bits, &lib);
    let pl = place(&nl, &lib, 0, &PlaceConfig::default());
    let graph = TimingGraph::build(&nl, &lib);
    (lib, nl, pl, graph)
}

fn prepared(
    lib: &CellLibrary,
    nl: &Netlist,
    pl: &Placement,
    graph: &TimingGraph,
    cfg: &ModelConfig,
) -> PreparedDesign {
    let targets = vec![0.0f32; graph.endpoints().len()];
    PreparedDesign::prepare(nl, lib, pl, graph, cfg, targets)
}

/// Minimal blocking HTTP client: one request, one parsed response.
fn http(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(raw).expect("send request");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((status, head_len, body_len)) = head(&buf) {
            if buf.len() >= head_len + body_len {
                return (status, buf[head_len..head_len + body_len].to_vec());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed before a full response"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
}

fn head(buf: &[u8]) -> Option<(u16, usize, usize)> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let text = std::str::from_utf8(&buf[..end]).ok()?;
    let status = text.split(' ').nth(1)?.parse().ok()?;
    let body_len = text
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))?
        .1
        .trim()
        .parse()
        .ok()?;
    Some((status, end, body_len))
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").into_bytes()
}

fn post(path: &str, headers: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{headers}Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

fn predict_bits(body: &[u8]) -> (u64, Vec<u32>) {
    let text = std::str::from_utf8(body).expect("utf-8 predict body");
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
        .expect("n= line");
    let generation: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("generation="))
        .and_then(|v| v.parse().ok())
        .expect("generation= line");
    let bits: Vec<u32> = lines.map(|l| l.parse::<f32>().expect("float line").to_bits()).collect();
    assert_eq!(bits.len(), n);
    (generation, bits)
}

fn bits_of(preds: &[f32]) -> Vec<u32> {
    preds.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn daemon_serves_bit_exact_predictions_reloads_and_drains() {
    let (lib, nl, pl, graph) = fixture(8);
    let cfg = ModelConfig::tiny();
    let prep = prepared(&lib, &nl, &pl, &graph, &cfg);
    let boot_model = TimingModel::new(cfg.clone());

    // A second model with genuinely different weights, for the reload.
    let mut trained = TimingModel::new(cfg.clone());
    {
        let targets: Vec<f32> = (0..graph.endpoints().len()).map(|i| 50.0 + i as f32).collect();
        let train_prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, targets);
        trained.train(&[train_prep], &TrainConfig { epochs: 2, ..TrainConfig::default() });
    }

    let dir = std::env::temp_dir().join(format!("rtt-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let weights = dir.join("model.rttm");
    std::fs::write(&weights, save_model(&boot_model)).expect("write boot weights");

    let serve_cfg = ServeConfig { weights_path: Some(weights.clone()), ..ServeConfig::default() };
    let mut server =
        Server::start(serve_cfg, boot_model.clone(), vec![("rca".to_owned(), prep.clone())])
            .expect("daemon starts on an ephemeral port");
    let addr = server.addr();

    let (status, body) = http(addr, &get("/healthz"));
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    // Bit-exactness against the library fast path, full and subset.
    let ctx = restructure_timing::nn::InferCtx::new();
    let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
    let expect_all = bits_of(&boot_model.predict_batch(&ctx, &prep, &all));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    let (generation, got) = predict_bits(&body);
    assert_eq!(generation, 1);
    assert_eq!(got, expect_all, "HTTP predictions must match the library bit-for-bit");

    let subset = [4u32, 0, 9];
    let expect_subset = bits_of(&boot_model.predict_batch(&ctx, &prep, &subset));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\nindices=4,0,9\n"));
    assert_eq!(status, 200);
    assert_eq!(predict_bits(&body).1, expect_subset, "index subsets too");

    // Typed client errors, not panics.
    let (status, _) = http(addr, &post("/predict", "", b"design=missing\n"));
    assert_eq!(status, 404);
    let (status, _) = http(addr, &post("/predict", "", b"design=rca\nindices=999999\n"));
    assert_eq!(status, 422);
    let (status, _) = http(addr, &get("/nope"));
    assert_eq!(status, 404);

    // Hot-reload: overwrite the weights file and POST /reload; new
    // predictions must be bit-exact for the *new* model.
    std::fs::write(&weights, save_model(&trained)).expect("write trained weights");
    let (status, body) = http(addr, &post("/reload", "", b""));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(body, b"generation=2\n");
    let expect_trained = bits_of(&trained.predict_batch(&ctx, &prep, &all));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    let (generation, got) = predict_bits(&body);
    assert_eq!(generation, 2, "reload must bump the generation");
    assert_eq!(got, expect_trained, "post-reload predictions use the new weights");
    assert_ne!(got, expect_all, "the reload really changed the weights");

    // Runtime design registration over HTTP, then predict on it.
    let (lib2, nl2, pl2, _) = fixture(4);
    let verilog = write_verilog(&nl2, &lib2);
    let placement = write_placement(&nl2, &pl2);
    let mut body2 = verilog.clone().into_bytes();
    body2.extend_from_slice(placement.as_bytes());
    let (status, body) = http(
        addr,
        &post("/load?name=rca4", &format!("X-Netlist-Bytes: {}\r\n", verilog.len()), &body2),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    // The text round-trip can reorder cells/pins, so build the reference
    // from the same serialized files the server parsed.
    let nl2 = restructure_timing::netlist::parse_verilog(&verilog, &lib2).expect("round-trip");
    let pl2 = restructure_timing::place::parse_placement(&nl2, &placement).expect("round-trip");
    let graph2 = TimingGraph::build(&nl2, &lib2);
    let prep2 = prepared(&lib2, &nl2, &pl2, &graph2, &cfg);
    let all2: Vec<u32> = (0..prep2.num_endpoints() as u32).collect();
    let expect2 = bits_of(&trained.predict_batch(&ctx, &prep2, &all2));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca4\n"));
    assert_eq!(status, 200);
    assert_eq!(predict_bits(&body).1, expect2, "a design loaded over HTTP predicts bit-exactly");

    // /stats is valid JSON with sane counters.
    let (status, body) = http(addr, &get("/stats"));
    assert_eq!(status, 200);
    let doc =
        restructure_timing::obs::json::Value::parse(std::str::from_utf8(&body).expect("utf-8"))
            .expect("stats parses as JSON");
    let num = |key: &str| -> u64 {
        match doc.get(key) {
            Some(restructure_timing::obs::json::Value::Num(n)) => n.parse().expect("integer"),
            other => panic!("stats[{key}] = {other:?}"),
        }
    };
    assert!(num("requests") >= 8);
    assert_eq!(num("worker_panics"), 0);
    assert_eq!(num("generation"), 2);
    assert_eq!(num("designs"), 2);
    assert!(num("endpoints_predicted") >= 2 * prep.num_endpoints() as u64);

    // POST /shutdown flips the flag the CLI loop watches; the drain
    // itself must answer everything and join.
    let (status, _) = http(addr, &post("/shutdown", "", b""));
    assert_eq!(status, 200);
    assert!(server.shutdown_requested());
    let report = server.shutdown();
    assert_eq!(report.stats.worker_panics, 0);
    assert!(report.stats.responses_2xx >= 8);
    drop(std::fs::remove_dir_all(dir));
}
