// D004 positive: scheduling-order reductions over parallel iterators.
use rayon::prelude::*;

pub fn total(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn maximum(xs: &[f32]) -> Option<f32> {
    xs.par_iter().copied().reduce(|| 0.0, f32::max).into()
}
