//! Deterministic fault injection for the serving stack.
//!
//! The chaos suite needs the daemon to misbehave *reproducibly*: the same
//! seed must inject the same faults in the same per-site order, so a
//! failure found in CI replays locally. Every injection decision is drawn
//! from a counter-mode SplitMix64 stream keyed by `(seed, site, n)` where
//! `n` is a per-site atomic sequence number — the n-th decision at a site
//! is a pure function of the seed, independent of wall clock and (per
//! site) of thread interleaving. Which *request* the n-th decision lands
//! on does depend on scheduling; what the suite relies on is the
//! deterministic per-site fault mix, not a per-request script.
//!
//! Injection is env-gated like `RTT_SANITIZE`: production code calls
//! [`FaultPlan::from_env`], which returns the zero-cost disabled plan
//! unless `RTT_FAULTS` is set. Tests construct plans directly.
//!
//! ```
//! use rtt_serve::fault::{FaultMode, FaultSpec};
//!
//! let plan = FaultSpec::new(42).rate(0.5).all_modes().build();
//! // Deterministic: the same seed always yields the same decision stream.
//! let first: Vec<bool> = (0..8).map(|_| plan.decide(FaultMode::ShortRead)).collect();
//! let again = FaultSpec::new(42).rate(0.5).all_modes().build();
//! let second: Vec<bool> = (0..8).map(|_| again.decide(FaultMode::ShortRead)).collect();
//! assert_eq!(first, second);
//! ```

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fault modes the serving stack can inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// Socket reads return a 1-byte sliver, exercising incremental
    /// request parsing.
    ShortRead,
    /// Socket writes accept only a prefix, exercising the response-write
    /// resume loop.
    ShortWrite,
    /// The peer vanishes mid-request/mid-response (simulated
    /// `BrokenPipe` / EOF).
    Disconnect,
    /// The socket stalls for [`FaultPlan::stall_ms`] before the next IO,
    /// exercising read timeouts and deadlines.
    Stall,
    /// A model file read during hot-reload comes back truncated or
    /// bit-flipped, exercising `model_io`'s typed rejection.
    CorruptReload,
    /// The request queue reports full, exercising 503 backpressure.
    QueueFull,
    /// A `/transform` request aborts after mutating its working copy but
    /// before publishing, exercising the all-or-nothing publish step (the
    /// design and its incremental cache must be left exactly as they
    /// were).
    TransformAbort,
}

/// Every mode, in a fixed order (indexes the per-mode counters).
pub const ALL_MODES: [FaultMode; 7] = [
    FaultMode::ShortRead,
    FaultMode::ShortWrite,
    FaultMode::Disconnect,
    FaultMode::Stall,
    FaultMode::CorruptReload,
    FaultMode::QueueFull,
    FaultMode::TransformAbort,
];

impl FaultMode {
    fn index(self) -> usize {
        match self {
            Self::ShortRead => 0,
            Self::ShortWrite => 1,
            Self::Disconnect => 2,
            Self::Stall => 3,
            Self::CorruptReload => 4,
            Self::QueueFull => 5,
            Self::TransformAbort => 6,
        }
    }

    /// Stable name (env spec syntax and `/stats` keys).
    pub fn name(self) -> &'static str {
        match self {
            Self::ShortRead => "short_read",
            Self::ShortWrite => "short_write",
            Self::Disconnect => "disconnect",
            Self::Stall => "stall",
            Self::CorruptReload => "corrupt_reload",
            Self::QueueFull => "queue_full",
            Self::TransformAbort => "transform_abort",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        ALL_MODES.iter().copied().find(|m| m.name() == s)
    }
}

/// Builder for a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultSpec {
    seed: u64,
    rate_ppm: [u32; 7],
    stall_ms: u64,
}

impl FaultSpec {
    /// Starts a spec with every mode off.
    pub fn new(seed: u64) -> Self {
        Self { seed, rate_ppm: [0; 7], stall_ms: 25 }
    }

    /// Sets one mode's injection probability (`0.0..=1.0`).
    #[must_use]
    pub fn mode(mut self, mode: FaultMode, probability: f64) -> Self {
        self.rate_ppm[mode.index()] = ppm(probability);
        self
    }

    /// Remembers `probability` as the default for [`Self::all_modes`].
    #[must_use]
    pub fn rate(mut self, probability: f64) -> Self {
        self.rate_ppm = [ppm(probability); 7];
        self
    }

    /// Enables every mode at the rate set by the last [`Self::rate`] call
    /// (identity today; kept for spec readability).
    #[must_use]
    pub fn all_modes(self) -> Self {
        self
    }

    /// Sets the stall duration in milliseconds.
    #[must_use]
    pub fn stall_ms(mut self, ms: u64) -> Self {
        self.stall_ms = ms;
        self
    }

    /// Freezes the spec into a shareable plan.
    pub fn build(self) -> FaultPlan {
        if self.rate_ppm.iter().all(|&r| r == 0) {
            return FaultPlan::disabled();
        }
        FaultPlan {
            inner: Some(Arc::new(Inner {
                seed: self.seed,
                rate_ppm: self.rate_ppm,
                stall_ms: self.stall_ms,
                seq: Default::default(),
                injected: Default::default(),
            })),
        }
    }
}

fn ppm(probability: f64) -> u32 {
    (probability.clamp(0.0, 1.0) * 1_000_000.0) as u32
}

#[derive(Debug, Default)]
struct Inner {
    seed: u64,
    rate_ppm: [u32; 7],
    stall_ms: u64,
    seq: [AtomicU64; 7],
    injected: [AtomicU64; 7],
}

/// A frozen, shareable fault-injection plan. Cloning shares the per-site
/// sequence counters, so all holders draw from the same deterministic
/// streams. The default plan is disabled and costs one branch per check.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl FaultPlan {
    /// The no-faults plan (production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builds a plan from the `RTT_FAULTS` environment variable, or the
    /// disabled plan when it is unset/empty.
    ///
    /// Spec syntax (comma- or space-separated `key=value`):
    /// `RTT_FAULTS="seed=42,rate=0.05,stall_ms=20,modes=short_read|stall"`.
    /// `modes=all` enables every mode. Unknown keys and malformed values
    /// are ignored (a fault layer must never take the daemon down).
    pub fn from_env() -> Self {
        match std::env::var("RTT_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec),
            _ => Self::disabled(),
        }
    }

    /// Parses the `RTT_FAULTS` spec syntax (see [`Self::from_env`]).
    pub fn parse(spec: &str) -> Self {
        let mut seed = 0u64;
        let mut rate = 0.05f64;
        let mut stall = 25u64;
        let mut modes: Vec<FaultMode> = Vec::new();
        for part in spec.split([',', ' ']).filter(|p| !p.is_empty()) {
            let Some((key, value)) = part.split_once('=') else { continue };
            match key.trim() {
                "seed" => seed = value.trim().parse().unwrap_or(seed),
                "rate" => rate = value.trim().parse().unwrap_or(rate),
                "stall_ms" => stall = value.trim().parse().unwrap_or(stall),
                "modes" => {
                    if value.trim() == "all" {
                        modes.extend(ALL_MODES);
                    } else {
                        modes.extend(
                            value.split('|').filter_map(|m| FaultMode::from_name(m.trim())),
                        );
                    }
                }
                _ => {}
            }
        }
        let mut out = FaultSpec::new(seed).stall_ms(stall);
        for m in modes {
            out = out.mode(m, rate);
        }
        out.build()
    }

    /// `true` when any mode can fire.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Draws the next decision for `mode` from its deterministic stream;
    /// tallies an injection when it fires.
    pub fn decide(&self, mode: FaultMode) -> bool {
        let Some(inner) = &self.inner else { return false };
        let i = mode.index();
        let rate = inner.rate_ppm[i];
        if rate == 0 {
            return false;
        }
        let n = inner.seq[i].fetch_add(1, Ordering::Relaxed);
        let key = inner
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((i as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(n);
        let fire = (splitmix64(key) % 1_000_000) < u64::from(rate);
        if fire {
            inner.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// The configured stall duration (0 when disabled).
    pub fn stall_ms(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.stall_ms)
    }

    /// Sleeps for the stall duration if the stall stream fires.
    pub fn maybe_stall(&self) {
        if self.decide(FaultMode::Stall) {
            std::thread::sleep(std::time::Duration::from_millis(self.stall_ms()));
        }
    }

    /// Times each mode has fired, in [`ALL_MODES`] order.
    pub fn injected_counts(&self) -> [(FaultMode, u64); 7] {
        let mut out = [(FaultMode::ShortRead, 0); 7];
        for (slot, mode) in out.iter_mut().zip(ALL_MODES) {
            let n =
                self.inner.as_ref().map_or(0, |i| i.injected[mode.index()].load(Ordering::Relaxed));
            *slot = (mode, n);
        }
        out
    }

    /// Total injections across every mode.
    pub fn injected_total(&self) -> u64 {
        self.injected_counts().iter().map(|&(_, n)| n).sum()
    }

    /// Applies the `CorruptReload` stream to freshly read model-file
    /// bytes: when it fires, the bytes come back truncated (even draws)
    /// or bit-flipped (odd draws) at a seed-determined position.
    pub fn corrupt_reload(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        if !self.decide(FaultMode::CorruptReload) || bytes.is_empty() {
            return bytes;
        }
        let Some(inner) = &self.inner else { return bytes };
        let roll = splitmix64(inner.seed.wrapping_add(bytes.len() as u64));
        let pos = (roll >> 8) as usize % bytes.len();
        if roll & 1 == 0 {
            bytes.truncate(pos);
        } else {
            bytes[pos] ^= 0x20;
        }
        bytes
    }

    /// Faulted socket read: may stall, report a simulated disconnect
    /// (clean EOF), or truncate the read to one byte.
    pub fn read(&self, stream: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
        self.maybe_stall();
        if self.decide(FaultMode::Disconnect) {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected disconnect"));
        }
        if self.decide(FaultMode::ShortRead) && buf.len() > 1 {
            return stream.read(&mut buf[..1]);
        }
        stream.read(buf)
    }

    /// Faulted socket write: may stall, report a simulated broken pipe,
    /// or accept only a 1-byte prefix. Callers must loop (exactly as they
    /// must for real sockets).
    pub fn write(&self, stream: &mut impl Write, data: &[u8]) -> io::Result<usize> {
        self.maybe_stall();
        if self.decide(FaultMode::Disconnect) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected broken pipe"));
        }
        if self.decide(FaultMode::ShortWrite) && data.len() > 1 {
            return stream.write(&data[..1]);
        }
        stream.write(data)
    }
}

/// SplitMix64 finalizer — the same mixer the offline proptest/rand shims
/// use, chosen for full-avalanche behavior on sequential keys.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.active());
        for mode in ALL_MODES {
            for _ in 0..64 {
                assert!(!plan.decide(mode));
            }
        }
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultSpec::new(seed).rate(0.3).all_modes().build();
            (0..256).map(|i| plan.decide(ALL_MODES[i % ALL_MODES.len()])).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds should differ");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultSpec::new(1).mode(FaultMode::QueueFull, 0.25).build();
        let fired = (0..4000).filter(|_| plan.decide(FaultMode::QueueFull)).count();
        assert!((600..1400).contains(&fired), "0.25 rate fired {fired}/4000");
        assert_eq!(plan.injected_total(), fired as u64);
    }

    #[test]
    fn env_spec_parses_modes_and_ignores_garbage() {
        let plan = FaultPlan::parse("seed=9,rate=1.0,modes=queue_full|nonsense,junk,x=");
        assert!(plan.active());
        assert!(plan.decide(FaultMode::QueueFull));
        assert!(!plan.decide(FaultMode::ShortRead), "unlisted mode must stay off");
        assert!(!FaultPlan::parse("").active());
        assert!(!FaultPlan::parse("modes=").active());
    }

    #[test]
    fn corrupt_reload_changes_bytes_deterministically() {
        let plan = FaultSpec::new(3).mode(FaultMode::CorruptReload, 1.0).build();
        let original: Vec<u8> = (0..128u8).collect();
        let a = plan.corrupt_reload(original.clone());
        assert_ne!(a, original);
        let plan2 = FaultSpec::new(3).mode(FaultMode::CorruptReload, 1.0).build();
        let b = plan2.corrupt_reload(original.clone());
        assert_eq!(a, b, "same seed, same draw index, same corruption");
    }

    #[test]
    fn short_read_and_write_truncate_io() {
        let plan = FaultSpec::new(5).mode(FaultMode::ShortRead, 1.0).build();
        let data = [1u8, 2, 3, 4];
        let mut src: &[u8] = &data;
        let mut buf = [0u8; 4];
        let n = plan.read(&mut src, &mut buf).expect("short read");
        assert_eq!(n, 1, "short read must return a sliver");

        let plan = FaultSpec::new(5).mode(FaultMode::ShortWrite, 1.0).build();
        let mut sink = Vec::new();
        let n = plan.write(&mut sink, &data).expect("short write");
        assert_eq!(n, 1);
        assert_eq!(sink, vec![1]);
    }
}
