//! R003 negative: the helper file still contains a panic site, but the
//! entry point only calls the safe helper, so nothing is reachable.

// rtt-lint: entry
pub fn serve_fixture_safe() {
    let _ = helper_safe();
}
