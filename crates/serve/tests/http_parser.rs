//! Fuzz and fixture tests for the hand-rolled HTTP/1.1 parser.
//!
//! The two properties the daemon's safety rests on:
//! 1. **No input panics** — arbitrary bytes, arbitrary prefixes, always
//!    a typed verdict (`Complete`/`Partial`/`HttpError`).
//! 2. **Round-trip** — any request the encoder side of the protocol can
//!    produce is parsed back identically, at every split point an
//!    injected short read could produce.

use proptest::collection;
use proptest::prelude::*;
use rtt_serve::http::{parse_request, HttpError, Limits, ParseStatus};

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let limits = Limits::default();
        // Every prefix too: the incremental loop offers all of them.
        for cut in (0..=bytes.len()).step_by(7) {
            let _ = parse_request(&bytes[..cut], &limits);
        }
        let _ = parse_request(&bytes, &limits);
        // Tight budgets exercise the limit branches on the same input.
        let tight = Limits { max_head_bytes: 32, max_body_bytes: 8, max_headers: 2 };
        let _ = parse_request(&bytes, &tight);
    }

    #[test]
    fn near_valid_mutations_never_panic(
        seed in collection::vec(0u32..256, 1..24),
        pos in 0usize..64,
        bit in 0u32..8,
    ) {
        // Start from a valid request, then flip one bit somewhere: the
        // parser must still produce a typed verdict.
        let mut raw = b"POST /predict?design=a HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc".to_vec();
        let i = pos % raw.len();
        raw[i] ^= 1 << bit;
        // Then splice random garbage in as well.
        let at = seed[0] as usize % raw.len();
        let garbage: Vec<u8> = seed.iter().map(|&b| b as u8).collect();
        raw.splice(at..at, garbage);
        let _ = parse_request(&raw, &Limits::default());
    }

    #[test]
    fn valid_requests_round_trip(
        path_len in 1usize..12,
        body in collection::vec(0u32..256, 0..64),
        keep_alive in 0u32..2,
    ) {
        let path: String = std::iter::once('/')
            .chain((0..path_len).map(|i| (b'a' + (i % 26) as u8) as char))
            .collect();
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        let conn = if keep_alive == 1 { "keep-alive" } else { "close" };
        let mut raw = format!(
            "POST {path}?k=v HTTP/1.1\r\nHost: t\r\nConnection: {conn}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);

        // Whole-buffer parse succeeds and consumes exactly the request.
        let limits = Limits::default();
        let ParseStatus::Complete { request, consumed } =
            parse_request(&raw, &limits).expect("valid request")
        else {
            panic!("complete request reported partial");
        };
        prop_assert_eq!(consumed, raw.len());
        prop_assert_eq!(&request.method, "POST");
        prop_assert_eq!(&request.path, &path);
        prop_assert_eq!(&request.query, "k=v");
        prop_assert_eq!(&request.body, &body);
        prop_assert_eq!(request.wants_close(), keep_alive == 0);

        // Every proper prefix is Partial — the short-read contract.
        for cut in 0..raw.len() {
            let status = parse_request(&raw[..cut], &limits).expect("prefix stays valid");
            prop_assert_eq!(status, ParseStatus::Partial, "cut={}", cut);
        }
    }
}

#[test]
fn fixture_requests_parse_as_expected() {
    let limits = Limits::default();
    let cases: &[(&[u8], Result<&str, HttpError>)] = &[
        (b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n", Ok("/healthz")),
        (b"GET /stats HTTP/1.0\r\n\r\n", Ok("/stats")),
        // Lenient bare-LF framing (curl-style hand-typed requests).
        (b"GET /healthz HTTP/1.1\nHost: a\n\n", Ok("/healthz")),
        (b"PATCH /x HTTP/3.0\r\n\r\n", Err(HttpError::Version)),
        (
            b"POST /p HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            Err(HttpError::TransferEncoding),
        ),
        (
            b"POST /p HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            Err(HttpError::Bad("bad content-length")),
        ),
        (b"OPTIONS * HTTP/1.1\r\n\r\n", Err(HttpError::Bad("target must be origin-form"))),
    ];
    for (raw, expected) in cases {
        match (parse_request(raw, &limits), expected) {
            (Ok(ParseStatus::Complete { request, .. }), Ok(path)) => {
                assert_eq!(&request.path, path, "{:?}", String::from_utf8_lossy(raw));
            }
            (Err(got), Err(want)) => {
                assert_eq!(got, *want, "{:?}", String::from_utf8_lossy(raw));
            }
            (got, want) => {
                panic!("{:?}: got {:?}, wanted {:?}", String::from_utf8_lossy(raw), got, want);
            }
        }
    }
}

#[test]
fn a_giant_content_length_is_refused_before_buffering() {
    // usize::MAX would overflow a naive head+body add; the parser must
    // refuse at the budget check, not wrap around.
    let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
    assert_eq!(parse_request(raw.as_bytes(), &Limits::default()), Err(HttpError::BodyTooLarge));
}
