//! Serial-vs-parallel performance suite.
//!
//! Times the four workloads the parallel execution layer targets — dataset
//! generation, GNN forward, CNN forward, and one training epoch — once with
//! one thread and once with all available cores, then writes the results to
//! `BENCH_PR4.json` in the current directory (and prints them). Every
//! workload is bit-identical across thread counts, so this suite measures
//! speed only.
//!
//! The report also contains a `stages` section: the rtt-obs span breakdown
//! (wall time, call counts, counters) of one instrumented end-to-end pass —
//! circuit generation through placement, routing, STA, feature extraction,
//! and a training epoch (forward, backward, optimizer step).

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use std::time::Instant;

use rtt_circgen::{GenParams, Scale};
use rtt_core::{ModelConfig, PreparedDesign, TimingModel, TrainConfig};
use rtt_features::endpoint_masks;
use rtt_flow::{Dataset, FlowConfig};
use rtt_netlist::{CellLibrary, TimingGraph};
use rtt_nn::parallel;
use rtt_place::{place, PlaceConfig};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, WireModel};

/// Median wall-clock seconds over `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s.max(1e-12)
    }
}

/// Times one workload with 1 thread, then with all cores.
fn serial_vs_parallel<R>(
    name: &'static str,
    cores: usize,
    reps: usize,
    mut f: impl FnMut() -> R,
) -> Row {
    parallel::set_num_threads(1);
    let serial_s = time_median(reps, &mut f);
    parallel::set_num_threads(cores);
    let parallel_s = time_median(reps, &mut f);
    parallel::set_num_threads(1);
    let row = Row { name, serial_s, parallel_s };
    println!(
        "{:<22} serial {:>9.4}s  parallel {:>9.4}s  speedup {:>5.2}x",
        row.name,
        row.serial_s,
        row.parallel_s,
        row.speedup()
    );
    row
}

fn prepare_design(cells: usize, seed: u64, cfg: &ModelConfig, lib: &CellLibrary) -> PreparedDesign {
    let d = GenParams::new(format!("perf{seed}"), cells, seed).generate(lib);
    let pl = place(&d.netlist, lib, 0, &PlaceConfig::default());
    let rt = route(&d.netlist, lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&d.netlist, lib);
    let sta = run_sta(&d.netlist, lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
    PreparedDesign::prepare(&d.netlist, lib, &pl, &graph, cfg, targets)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("perfsuite: {cores} core(s) available");

    let mut rows = Vec::new();
    let lib = CellLibrary::asap7_like();

    // 1. Dataset generation: ten tiny designs through both flows, fanned
    //    out one design per thread.
    let flow_cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    rows.push(serial_vs_parallel("dataset_generate", cores, 3, || Dataset::generate(&flow_cfg)));

    // 2. Endpoint-mask extraction at 2000 cells (per-endpoint fan-out).
    let md = GenParams::new("perfmask".to_owned(), 2000, 17).generate(&lib);
    let mpl = place(&md.netlist, &lib, 0, &PlaceConfig::default());
    let mgraph = TimingGraph::build(&md.netlist, &lib);
    rows.push(serial_vs_parallel("endpoint_masks_2000", cores, 3, || {
        endpoint_masks(&md.netlist, &mpl, &mgraph, 32)
    }));

    // 3./4. Model forwards at paper-ish widths (parallel matmul + im2col
    //       conv paths).
    let cfg = ModelConfig::small();
    let gnn_design = prepare_design(2000, 21, &cfg, &lib);
    let gnn_model = TimingModel::new(cfg.clone());
    rows.push(serial_vs_parallel("gnn_cnn_forward_2000", cores, 3, || {
        gnn_model.predict(&gnn_design)
    }));

    // 5. One training epoch over four 2000-cell designs (per-design
    //    gradient fan-out + parallel kernels underneath).
    let designs: Vec<PreparedDesign> =
        (0..4).map(|s| prepare_design(2000, 100 + s, &cfg, &lib)).collect();
    let tc = TrainConfig { epochs: 1, ..TrainConfig::default() };
    rows.push(serial_vs_parallel("train_epoch_4x2000", cores, 3, || {
        let mut model = TimingModel::new(cfg.clone());
        model.train(&designs, &tc)
    }));

    // Per-stage breakdown: reset the span registry so it reflects exactly
    // one instrumented end-to-end pass (generation → place → route → STA →
    // features → one training epoch), then dump the tree.
    rtt_obs::reset();
    parallel::set_num_threads(cores);
    let stage_design = prepare_design(2000, 300, &cfg, &lib);
    let mut stage_model = TimingModel::new(cfg.clone());
    stage_model.train(&[stage_design], &tc);
    parallel::set_num_threads(1);
    let snap = rtt_obs::snapshot();
    println!("\nper-stage breakdown (one end-to-end pass):");
    print!("{}", snap.render_tree());

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.serial_s,
            r.parallel_s,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"stages\": {\n");
    let n_spans = snap.spans.len();
    for (i, (path, s)) in snap.spans.iter().enumerate() {
        json.push_str(&format!(
            "    \"{path}\": {{\"count\": {}, \"total_ms\": {:.6}}}{}\n",
            s.count,
            s.total_ns as f64 / 1e6,
            if i + 1 < n_spans { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR4.json", json).expect("write BENCH_PR4.json");
    eprintln!("[written to BENCH_PR4.json]");
}
