//! Model persistence and reuse across the facade.

use restructure_timing::flow::{Dataset, FlowConfig};
use restructure_timing::prelude::*;

#[test]
fn trained_model_roundtrips_through_bytes() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 1);
    let lib = &ds.library;
    let mc = ModelConfig::tiny();
    let train: Vec<PreparedDesign> =
        ds.train_designs().iter().map(|d| d.prepared(lib, &mc)).collect();
    let mut model = TimingModel::new(mc.clone());
    model.train(&train, &TrainConfig { epochs: 5, ..TrainConfig::default() });

    let test_prep = ds.test_designs()[0].prepared(lib, &mc);
    let expect = model.predict(&test_prep);

    let blob = model.save_weights();
    let mut restored = TimingModel::new(mc);
    restored.load_weights(&blob).expect("same architecture");
    let restored_pred = restored.predict(&test_prep);
    let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&restored_pred), bits(&expect), "reload must preserve predictions exactly");
    // The round-trip holds on both execution backends: the tape-backed
    // reference path must agree with the tape-free predictions to the bit.
    assert_eq!(
        bits(&restored.predict_taped(&test_prep)),
        bits(&expect),
        "taped reference diverged from tape-free predict after reload"
    );
}

/// Corrupt-file fixtures against the versioned `RTTM` container: every
/// damaged variant must come back as a typed error — never a panic,
/// never a partially-loaded model.
#[test]
fn corrupt_model_files_are_rejected_with_typed_errors() {
    use restructure_timing::model::model_io::{load_model, save_model, ModelIoError};

    let model = TimingModel::new(ModelConfig::tiny());
    let good = save_model(&model);
    assert!(load_model(&good).is_ok(), "pristine container loads");

    // Truncations at every interesting boundary: magic, version, config,
    // mid-payload, missing checksum.
    for cut in [0, 3, 7, 20, good.len() / 2, good.len() - 9, good.len() - 1] {
        let err = load_model(&good[..cut]).expect_err("truncated file must be refused");
        assert!(
            matches!(
                err,
                // A cut that leaves 8+ trailing bytes reads them as the
                // checksum, which then cannot match — equally typed.
                ModelIoError::Truncated { .. }
                    | ModelIoError::BadMagic
                    | ModelIoError::Checksum { .. }
            ),
            "cut={cut}: {err}"
        );
    }

    // A single flipped bit anywhere in the body trips the checksum.
    for pos in [8, 16, good.len() / 2, good.len() - 10] {
        let mut bad = good.clone();
        bad[pos] ^= 0x01;
        let err = load_model(&bad).expect_err("bit flip must be refused");
        assert!(
            matches!(err, ModelIoError::Checksum { .. } | ModelIoError::BadMagic),
            "pos={pos}: {err}"
        );
    }

    // Wrong magic and future version are identified as such.
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"NOPE");
    assert_eq!(load_model(&bad).expect_err("bad magic"), ModelIoError::BadMagic);

    // Arbitrary garbage of various lengths: typed error, no panic.
    let mut state = 0x9E37u64;
    for len in [0usize, 1, 8, 33, 64, 1024] {
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        assert!(load_model(&garbage).is_err(), "garbage len={len} must not load");
    }
}

#[test]
fn variants_predict_differently() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 0);
    let lib = &ds.library;
    let d = ds.train_designs()[0];

    let mut preds = Vec::new();
    for variant in [ModelVariant::Full, ModelVariant::GnnOnly, ModelVariant::CnnOnly] {
        let mc = ModelConfig::tiny().with_variant(variant);
        let prep = d.prepared(lib, &mc);
        let model = TimingModel::new(mc);
        preds.push(model.predict(&prep));
    }
    assert_ne!(preds[0], preds[1]);
    assert_ne!(preds[0], preds[2]);
    assert_ne!(preds[1], preds[2]);
}
