//! Rectilinear spanning-tree topology generation.

use rtt_place::Point;

/// Builds a rectilinear minimum spanning tree over `points` with Prim's
/// algorithm under Manhattan distance.
///
/// Returns tree edges as index pairs `(parent, child)` such that index 0
/// (the net driver by convention) is the root and every other point appears
/// exactly once as a child. An RMST is a ≤1.5× approximation of the
/// rectilinear Steiner minimum tree, which is accurate enough for an
/// academic routing estimator.
///
/// Returns an empty vector for fewer than two points.
pub fn rectilinear_mst(points: &[Point]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f32::INFINITY; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = points[0].manhattan(points[j]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        // Cheapest frontier vertex.
        let mut v = usize::MAX;
        let mut vd = f32::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < vd {
                vd = best_dist[j];
                v = j;
            }
        }
        debug_assert_ne!(v, usize::MAX, "graph is complete; frontier never empty");
        in_tree[v] = true;
        edges.push((best_parent[v], v));
        for j in 0..n {
            if !in_tree[j] {
                let d = points[v].manhattan(points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_parent[j] = v;
                }
            }
        }
    }
    edges
}

/// Total Manhattan length of a tree produced by [`rectilinear_mst`].
pub fn tree_length(points: &[Point], edges: &[(usize, usize)]) -> f32 {
    edges.iter().map(|&(a, b)| points[a].manhattan(points[b])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pts(coords: &[(f32, f32)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn two_pin_net_is_a_single_edge() {
        let p = pts(&[(0.0, 0.0), (3.0, 4.0)]);
        let e = rectilinear_mst(&p);
        assert_eq!(e, vec![(0, 1)]);
        assert_eq!(tree_length(&p, &e), 7.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(rectilinear_mst(&[]).is_empty());
        assert!(rectilinear_mst(&pts(&[(1.0, 1.0)])).is_empty());
    }

    #[test]
    fn collinear_points_chain() {
        let p = pts(&[(0.0, 0.0), (10.0, 0.0), (5.0, 0.0)]);
        let e = rectilinear_mst(&p);
        // Optimal chain: 0-2-1, total length 10 (not 0-1 + 0-2 = 15).
        assert_eq!(tree_length(&p, &e), 10.0);
    }

    #[test]
    fn star_topology_for_central_driver() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)]);
        let e = rectilinear_mst(&p);
        assert_eq!(e.len(), 4);
        assert_eq!(tree_length(&p, &e), 4.0);
    }

    proptest! {
        #[test]
        fn tree_spans_all_points(
            coords in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 2..24)
        ) {
            let p = pts(&coords);
            let e = rectilinear_mst(&p);
            prop_assert_eq!(e.len(), p.len() - 1);
            // Every non-root appears exactly once as a child; parents precede
            // children in insertion order (rooted tree).
            let mut seen = vec![false; p.len()];
            seen[0] = true;
            for &(a, b) in &e {
                prop_assert!(seen[a], "parent not yet in tree");
                prop_assert!(!seen[b], "child added twice");
                seen[b] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn mst_no_longer_than_star(
            coords in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 2..24)
        ) {
            let p = pts(&coords);
            let e = rectilinear_mst(&p);
            let star: f32 = (1..p.len()).map(|j| p[0].manhattan(p[j])).sum();
            prop_assert!(tree_length(&p, &e) <= star + 1e-3);
        }
    }
}
