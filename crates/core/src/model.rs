//! The end-to-end endpoint-embedding model and its trainer.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use rtt_netlist::PinId;
use rtt_nn::{mse, ops, Adam, Exec, Grads, InferCtx, Linear, Mlp, ParamStore, Tape, Tensor};

use crate::cnn::LayoutCnn;
use crate::gnn::NetlistGnn;
use crate::{IncrementalCtx, ModelConfig, ModelVariant, PreparedDesign, TrainConfig};

/// Training history.
#[derive(Clone, Debug, Default)]
pub struct TrainLog {
    /// Mean training loss (normalized MSE) per epoch.
    pub epoch_loss: Vec<f32>,
}

impl TrainLog {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_loss.last().copied().unwrap_or(f32::NAN)
    }
}

/// The restructure-tolerant timing predictor (Fig. 2).
#[derive(Clone, Debug)]
pub struct TimingModel {
    config: ModelConfig,
    store: ParamStore,
    gnn: Option<NetlistGnn>,
    cnn: Option<(LayoutCnn, Linear)>,
    regressor: Mlp,
    target_mean: f32,
    target_std: f32,
    rng: StdRng,
}

impl TimingModel {
    /// Builds a model with freshly initialized weights.
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let gnn = (config.variant != ModelVariant::CnnOnly)
            .then(|| NetlistGnn::new(&mut store, &mut rng, &config));
        let cnn = (config.variant != ModelVariant::GnnOnly).then(|| {
            let trunk = LayoutCnn::new(&mut store, &mut rng, &config);
            let mg = config.pooled_grid();
            let fc = Linear::new(&mut store, &mut rng, mg * mg, config.embed_dim);
            (trunk, fc)
        });
        let regressor = Mlp::new(
            &mut store,
            &mut rng,
            &[config.fused_dim(), config.regressor_hidden, config.regressor_hidden, 1],
        );
        Self { config, store, gnn, cnn, regressor, target_mean: 0.0, target_std: 1.0, rng }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Total scalar weight count.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// One forward pass over a design for the endpoint rows in `batch`
    /// (`None` = all endpoints); returns normalized predictions
    /// `[rows, 1]`.
    ///
    /// The GNN necessarily computes every node (messages flow through the
    /// whole DAG), but the layout branch and regressor run only on the
    /// requested rows — this is what keeps masked-layout training cheap and
    /// paper-scale masks out of memory (they are densified per batch).
    fn forward<E: Exec>(&self, ex: E, design: &PreparedDesign, batch: Option<&[u32]>) -> E::Value {
        rtt_obs::span!("core::forward");
        let all: Vec<u32>;
        let indices: &[u32] = match batch {
            Some(b) => b,
            None => {
                all = (0..design.num_endpoints() as u32).collect();
                &all
            }
        };
        let netlist_emb = self.gnn.as_ref().map(|gnn| {
            let emb = gnn.forward(
                ex,
                &self.store,
                &design.schedule,
                &design.feats,
                self.config.aggregation,
            );
            let rows = ex.gather_rows(emb, indices);
            if self.config.residual {
                // Residual embeddings accumulate over up to hundreds of
                // levels; rescale into an O(1) regime for the regressor.
                ex.scale(rows, crate::READOUT_SCALE)
            } else {
                rows
            }
        });
        let layout_emb = self.cnn.as_ref().map(|(trunk, fc)| {
            let maps = ex.constant(design.maps.clone());
            let global_map = trunk.forward(ex, &self.store, maps);
            let masks = if self.config.masking {
                ex.constant(design.dense_mask_rows(indices))
            } else {
                // Ablation A2: every endpoint sees the full layout map.
                let cols = design.mask_grid * design.mask_grid;
                ex.constant(Tensor::full(&[indices.len().max(1), cols], 1.0))
            };
            let masked = ex.mul_row(masks, global_map);
            fc.forward(ex, &self.store, masked)
        });
        let fused = match (netlist_emb, layout_emb) {
            (Some(n), Some(l)) => ex.concat_cols(n, l),
            (Some(n), None) => n,
            (None, Some(l)) => l,
            (None, None) => unreachable!("at least one branch is active"),
        };
        self.regressor.forward(ex, &self.store, fused)
    }

    /// Forward target transform: optional log space (see
    /// [`ModelConfig::log_space`]).
    fn encode_target(&self, t: f32) -> f32 {
        if self.config.log_space {
            (1.0 + t.max(0.0)).ln()
        } else {
            t
        }
    }

    /// Inverse of [`Self::encode_target`].
    fn decode_target(&self, t: f32) -> f32 {
        if self.config.log_space {
            t.exp() - 1.0
        } else {
            t
        }
    }

    /// Trains on the given designs with MSE on (encoded, standardized)
    /// arrival times; the de-normalization is stored in the model.
    ///
    /// Each epoch runs every design's forward/backward pass in parallel
    /// against the epoch-start weights, sums the gradients in a fixed-order
    /// tree, and takes a single optimizer step — so loss curves are
    /// bit-identical for any thread count (`RTT_THREADS=1` included).
    pub fn train(&mut self, designs: &[PreparedDesign], tc: &TrainConfig) -> TrainLog {
        let obs = rtt_obs::span("core::train");
        assert!(!designs.is_empty(), "training needs at least one design");
        obs.add("designs", designs.len() as u64);
        obs.add("epochs", tc.epochs as u64);
        let all: Vec<f32> =
            designs.iter().flat_map(|d| d.targets.iter().map(|&t| self.encode_target(t))).collect();
        let n = all.len() as f32;
        self.target_mean = all.iter().sum::<f32>() / n;
        let var = all.iter().map(|t| (t - self.target_mean).powi(2)).sum::<f32>() / n;
        self.target_std = var.sqrt().max(1e-6);

        // Per-design loss weights ∝ 1/variance: designs span a wide range
        // of arrival magnitudes, and an unweighted standardized MSE lets
        // the large designs drown out the small ones (destroying their
        // per-design R², the paper's metric). Weighting by inverse target
        // variance makes each design's term ≈ its (1 − R²).
        let global_var = self.target_std * self.target_std;
        let weights: Vec<f32> = designs
            .iter()
            .map(|d| {
                let enc: Vec<f32> = d.targets.iter().map(|&t| self.encode_target(t)).collect();
                let m = enc.iter().sum::<f32>() / enc.len().max(1) as f32;
                let v = enc.iter().map(|t| (t - m).powi(2)).sum::<f32>() / enc.len().max(1) as f32;
                (global_var / v.max(1e-9)).clamp(0.05, 50.0)
            })
            .collect();

        let mut adam = Adam::new(tc.lr);
        let mut log = TrainLog::default();
        let mut order: Vec<usize> = (0..designs.len()).collect();

        for epoch in 0..tc.epochs {
            order.shuffle(&mut self.rng);
            // Minibatch indices are drawn serially, in shuffled design
            // order, so the RNG stream is identical no matter how many
            // threads run the forward/backward passes below.
            let batches: Vec<(usize, Vec<u32>)> = order
                .iter()
                .map(|&di| {
                    let n_ep = designs[di].num_endpoints();
                    let idx: Vec<u32> = if n_ep > tc.batch_endpoints {
                        sample_indices(&mut self.rng, n_ep, tc.batch_endpoints)
                    } else {
                        (0..n_ep as u32).collect()
                    };
                    (di, idx)
                })
                .collect();
            // Each design's forward/backward pass sees the same epoch-start
            // weights, so the passes are independent and run in parallel;
            // gradients reduce in a fixed-order pairwise tree and the
            // optimizer takes one step per epoch over the accumulated sum.
            let this: &TimingModel = self;
            let results: Vec<(f32, Grads)> = batches
                .par_iter()
                .map(|(di, idx)| {
                    // Root span: worker threads must not inherit (or leak
                    // into) the caller's span stack, or the recorded tree
                    // would depend on RTT_THREADS.
                    let _pass = rtt_obs::root_span("core::train::design_pass");
                    let design = &designs[*di];
                    let tape = Tape::new();
                    let pred_b = this.forward(&tape, design, Some(idx));
                    let data: Vec<f32> = idx
                        .iter()
                        .map(|&i| {
                            (this.encode_target(design.targets[i as usize]) - this.target_mean)
                                / this.target_std
                        })
                        .collect();
                    let target_b = tape.constant(Tensor::from_vec(&[idx.len(), 1], data));
                    let loss = mse(&tape, pred_b, target_b).scale(weights[*di]);
                    (tape.value(loss).data()[0], tape.backward(loss))
                })
                .collect();
            let mut epoch_loss = 0.0;
            let mut grad_sets = Vec::with_capacity(results.len());
            for (l, g) in results {
                epoch_loss += l;
                grad_sets.push(g);
            }
            adam.step(&mut self.store, &Grads::tree_sum(grad_sets));
            epoch_loss /= designs.len() as f32;
            rtt_obs::series_push("core::train::epoch_loss", f64::from(epoch_loss));
            log.epoch_loss.push(epoch_loss);
            if tc.log_every > 0 && (epoch + 1) % tc.log_every == 0 {
                eprintln!("epoch {:>4}: loss {epoch_loss:.5}", epoch + 1);
            }
        }
        log
    }

    /// Predicts endpoint arrival times (ps) for a prepared design on the
    /// tape-free inference backend.
    ///
    /// Endpoints are processed in chunks so that even paper-scale designs
    /// (hundreds of thousands of endpoints, 128×128 pooled masks) never
    /// materialize the full dense mask matrix. All chunks share one
    /// [`InferCtx`] arena, so after the first chunk the forward pass
    /// allocates (nearly) nothing. Outputs are bit-identical to
    /// [`Self::predict_taped`] because both backends run the same
    /// [`rtt_nn::ops`] kernels in the same order.
    // rtt-lint: entry
    pub fn predict(&self, design: &PreparedDesign) -> Vec<f32> {
        self.predict_with(&InferCtx::new(), design)
    }

    /// Like [`Self::predict`], but on a caller-owned [`InferCtx`], so the
    /// buffer arena persists across designs: a serving loop that scores
    /// many designs (or the same design repeatedly) through one context
    /// allocates on the first pass and reuses those buffers afterwards.
    // rtt-lint: entry
    pub fn predict_with(&self, ctx: &InferCtx, design: &PreparedDesign) -> Vec<f32> {
        let all: Vec<u32> = (0..design.num_endpoints() as u32).collect();
        self.predict_batch(ctx, design, &all)
    }

    /// Batched tape-free prediction for an arbitrary set of endpoint
    /// `indices` (output order follows `indices`): the GNN flat pass and
    /// the CNN global map run **once** and are shared by every endpoint
    /// chunk, instead of being recomputed per chunk as the Exec backends
    /// do. This is the serving-loop fast path — on the flat kernels of
    /// [`rtt_nn::ops`], driven by the plan precomputed in
    /// [`crate::gnn::GnnSchedule::build`].
    ///
    /// Outputs are bit-identical to [`Self::predict`] /
    /// [`Self::predict_taped`] on the same indices; the equivalence suite
    /// asserts it at several batch sizes and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    // rtt-lint: entry
    pub fn predict_batch(
        &self,
        ctx: &InferCtx,
        design: &PreparedDesign,
        indices: &[u32],
    ) -> Vec<f32> {
        let obs = rtt_obs::span("core::predict");
        obs.add("endpoints", indices.len() as u64);
        if indices.is_empty() {
            return Vec::new();
        }
        // Scratch layout: the GNN's buffers, then CNN ping-pong (2) +
        // global map, endpoint rows, dense masks, layout embedding, fused
        // features, regressor ping-pong (2), predictions.
        const REST: usize = 10;
        let mut out = Vec::with_capacity(indices.len());
        ctx.with_scratch(NetlistGnn::FLAT_SCRATCH + REST, |bufs, argmax, col| {
            let (gbufs, rest) = bufs.split_at_mut(NetlistGnn::FLAT_SCRATCH);
            let (cnn_bufs, tail_bufs) = rest.split_at_mut(3);
            if let Some(gnn) = &self.gnn {
                gnn.forward_flat(
                    &self.store,
                    &design.schedule,
                    &design.feats,
                    self.config.aggregation,
                    gbufs,
                );
            }
            if let Some((trunk, _)) = &self.cnn {
                let [cnn_a, cnn_b, gmap] = cnn_bufs else {
                    unreachable!("scratch layout mismatch")
                };
                trunk.forward_into(&self.store, &design.maps, cnn_a, cnn_b, gmap, col, argmax);
            }
            let flat = self.gnn.is_some().then(|| &gbufs[0]);
            let gmap = self.cnn.is_some().then(|| &cnn_bufs[2]);
            self.predict_tail(design, indices, flat, gmap, tail_bufs, &mut out);
        });
        out
    }

    /// Incremental twin of [`Self::predict_batch`]: reuses the flat GNN
    /// activations cached in `inc` for a base design, recomputing only
    /// the fan-out cones of `dirty_pins` (plus any rows whose static
    /// features, node kind, or existence changed — those are detected
    /// internally). A cold `inc` runs one full pass. On return the cache
    /// has rebased onto `design`, so a transform sequence only ever pays
    /// for its latest step's cone. The per-endpoint readout tail runs
    /// only for endpoints whose inputs changed — an endpoint whose flat
    /// row survived the refresh untouched, whose mask bins are unchanged
    /// and whose global map came from the cache is served its cached
    /// prediction, which is the same bits recomputation would produce.
    /// Outputs are therefore bit-identical to [`Self::predict_batch`]
    /// on the same design and indices.
    ///
    /// Caller contract:
    /// * `dirty_pins` must cover every pin whose *gather topology*
    ///   changed versus the design `inc` last saw —
    ///   `rtt_opt::dirty_seed_pins` derives exactly that set from a
    ///   before/after netlist pair (pin ids must be shared with the
    ///   cached base, i.e. `design` descends from it by tombstoning
    ///   edits);
    /// * call [`IncrementalCtx::reset`] whenever the model weights
    ///   change (e.g. a hot-reload) or the design lineage breaks.
    ///
    /// CNN-only variants have no per-node state to cache and simply
    /// forward to [`Self::predict_batch`].
    // rtt-lint: entry
    pub fn predict_incremental(
        &self,
        ctx: &InferCtx,
        inc: &mut IncrementalCtx,
        design: &PreparedDesign,
        dirty_pins: &[PinId],
        indices: &[u32],
    ) -> Vec<f32> {
        let obs = rtt_obs::span("core::predict_incremental");
        obs.add("endpoints", indices.len() as u64);
        let Some(gnn) = &self.gnn else {
            return self.predict_batch(ctx, design, indices);
        };
        const TAIL: usize = 7;
        let mut out = Vec::with_capacity(indices.len());
        ctx.with_scratch(NetlistGnn::INC_SCRATCH + 3 + TAIL, |bufs, argmax, col| {
            let (gbufs, rest) = bufs.split_at_mut(NetlistGnn::INC_SCRATCH);
            let (cnn_bufs, tail_bufs) = rest.split_at_mut(3);
            // The cache refreshes even for an empty index set, so a
            // caller draining queued transforms can always hand the
            // seeds over exactly once.
            inc.refresh_gnn(gnn, &self.store, design, self.config.aggregation, dirty_pins, gbufs);
            if let Some((trunk, _)) = &self.cnn {
                if !inc.gmap_matches(&design.maps) {
                    let [cnn_a, cnn_b, gmap] = cnn_bufs else {
                        unreachable!("scratch layout mismatch")
                    };
                    trunk.forward_into(&self.store, &design.maps, cnn_a, cnn_b, gmap, col, argmax);
                    inc.set_gmap(&design.maps, gmap);
                }
            }
            if indices.is_empty() {
                return;
            }
            // Split the request into cache hits (tail inputs bit-equal
            // to the run that produced the entry) and endpoints that
            // must recompute; scatter both into the caller's order.
            let pins = design.schedule.flat_row_pins();
            let ep_rows = design.schedule.flat_endpoint_rows();
            let masked = self.cnn.is_some() && self.config.masking;
            out.resize(indices.len(), 0.0);
            let mut todo: Vec<u32> = Vec::new();
            let mut todo_pos: Vec<usize> = Vec::new();
            for (k, &i) in indices.iter().enumerate() {
                let pin = pins[ep_rows[i as usize] as usize];
                let hit = inc.ep_get(pin).filter(|e| !masked || e.mask == design.masks[i as usize]);
                match hit {
                    Some(e) => out[k] = e.val,
                    None => {
                        todo.push(i);
                        todo_pos.push(k);
                    }
                }
            }
            rtt_obs::add_many(&[
                (crate::EPS_REUSED_COUNTER, (indices.len() - todo.len()) as u64),
                (crate::EPS_TOTAL_COUNTER, indices.len() as u64),
            ]);
            if todo.is_empty() {
                return;
            }
            let mut fresh = Vec::with_capacity(todo.len());
            self.predict_tail(design, &todo, inc.flat(), inc.gmap(), tail_bufs, &mut fresh);
            for ((&v, &k), &i) in fresh.iter().zip(&todo_pos).zip(&todo) {
                out[k] = v;
                let pin = pins[ep_rows[i as usize] as usize];
                let mask: &[u32] = if masked { &design.masks[i as usize] } else { &[] };
                inc.ep_put(pin, v, mask);
            }
        });
        out
    }

    /// The shared per-endpoint readout tail of [`Self::predict_batch`]
    /// and [`Self::predict_incremental`]: endpoint-row gather + readout
    /// rescale, masked layout embedding, fusion, and the regressor, in
    /// [`Self::PREDICT_CHUNK`]-row chunks. Both entry points run this
    /// exact code, which is what makes their outputs bit-comparable.
    ///
    /// `flat` must be present iff the GNN branch is active, `gmap` iff
    /// the CNN branch is.
    fn predict_tail(
        &self,
        design: &PreparedDesign,
        indices: &[u32],
        flat: Option<&Tensor>,
        gmap: Option<&Tensor>,
        bufs: &mut [Tensor],
        out: &mut Vec<f32>,
    ) {
        let [ep, masks, lemb, fused, r0, r1, pred] = bufs else {
            unreachable!("tail scratch layout mismatch")
        };
        let ep_rows = design.schedule.flat_endpoint_rows();
        let mut rows: Vec<u32> = Vec::new();
        for chunk in indices.chunks(Self::PREDICT_CHUNK) {
            let span = rtt_obs::span("nn::infer");
            span.add("endpoints", chunk.len() as u64);
            if let Some(flat) = flat {
                rows.clear();
                rows.extend(chunk.iter().map(|&i| ep_rows[i as usize]));
                ops::gather_rows_flat(flat, &rows, ep);
                if self.config.residual {
                    // Same rescale as the Exec path (values identical:
                    // `scale` is a copy + in-place multiply).
                    ep.scale_assign(crate::READOUT_SCALE);
                }
            }
            if let Some(gmap) = gmap {
                let Some((_, fc)) = self.cnn.as_ref() else {
                    unreachable!("gmap implies an active CNN branch")
                };
                if self.config.masking {
                    design.dense_mask_rows_into(chunk, masks);
                } else {
                    let cols = design.mask_grid * design.mask_grid;
                    masks.reset(&[chunk.len().max(1), cols], 1.0);
                }
                ops::mul_row_in_place(masks, gmap.data());
                fc.forward_into(&self.store, masks, lemb);
            }
            let fused_ref: &Tensor = match (flat.is_some(), gmap.is_some()) {
                (true, true) => {
                    ops::concat_cols(ep, lemb, fused);
                    fused
                }
                (true, false) => ep,
                (false, true) => lemb,
                (false, false) => unreachable!("at least one branch is active"),
            };
            self.regressor.forward_into(&self.store, fused_ref, r0, r1, pred);
            out.extend(
                pred.data()
                    .iter()
                    .map(|p| self.decode_target(p * self.target_std + self.target_mean)),
            );
        }
    }

    /// Multi-design serving entry point: scores every design (all
    /// endpoints) through one shared context, so the arena and scratch
    /// buffers warm up on the first design and are reused for the rest.
    // rtt-lint: entry
    pub fn predict_many(&self, ctx: &InferCtx, designs: &[&PreparedDesign]) -> Vec<Vec<f32>> {
        designs.iter().map(|d| self.predict_with(ctx, d)).collect()
    }

    /// Endpoints per forward pass in [`Self::predict`] /
    /// [`Self::predict_taped`].
    const PREDICT_CHUNK: usize = 8192;

    /// Reference implementation of [`Self::predict`] on the tape backend.
    ///
    /// Builds (and throws away) a gradient tape per chunk exactly as the
    /// pre-split `predict` did. Kept public so the equivalence suite and
    /// the perf harness can compare the two backends; serving code should
    /// call [`Self::predict`].
    pub fn predict_taped(&self, design: &PreparedDesign) -> Vec<f32> {
        let obs = rtt_obs::span("core::predict_taped");
        obs.add("endpoints", design.num_endpoints() as u64);
        let n = design.num_endpoints();
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        while start < n {
            let end = (start + Self::PREDICT_CHUNK).min(n);
            let idx: Vec<u32> = (start as u32..end as u32).collect();
            let tape = Tape::new();
            let pred = self.forward(&tape, design, Some(&idx));
            out.extend(
                tape.value(pred)
                    .data()
                    .iter()
                    .map(|p| self.decode_target(p * self.target_std + self.target_mean)),
            );
            start = end;
        }
        out
    }

    /// Serializes the weights (plus the target normalization) to bytes.
    pub fn save_weights(&self) -> Vec<u8> {
        let mut out = self.target_mean.to_le_bytes().to_vec();
        out.extend_from_slice(&self.target_std.to_le_bytes());
        out.extend_from_slice(&self.store.to_bytes());
        out
    }

    /// Restores weights saved by [`Self::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns a [`rtt_nn::WeightsError`] if the blob is truncated,
    /// corrupt, or does not match this architecture. On error the model is
    /// unchanged — the normalization header is committed only after the
    /// parameter store accepted the rest of the blob, so a failed load
    /// (e.g. a corrupt hot-reload) never leaves partial state behind.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), rtt_nn::WeightsError> {
        if bytes.len() < 8 {
            return Err(rtt_nn::WeightsError::Truncated { needed: 8, available: bytes.len() });
        }
        let mean = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let std = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        self.store.load_bytes(&bytes[8..])?;
        self.target_mean = mean;
        self.target_std = std;
        Ok(())
    }
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    for i in 0..k.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k.min(n));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::GenParams;
    use rtt_netlist::{CellLibrary, TimingGraph};
    use rtt_place::{place, PlaceConfig};
    use rtt_route::{route, RouteConfig};
    use rtt_sta::{run_sta, WireModel};

    fn prepared(cells: usize, seed: u64, cfg: &ModelConfig) -> PreparedDesign {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new(format!("m{seed}"), cells, seed).generate(&lib);
        let pl = place(&d.netlist, &lib, 0, &PlaceConfig::default());
        let rt = route(&d.netlist, &lib, &pl, &RouteConfig::default());
        let graph = TimingGraph::build(&d.netlist, &lib);
        let sta = run_sta(&d.netlist, &lib, &graph, WireModel::Routed(&rt), 500.0);
        let targets = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
        PreparedDesign::prepare(&d.netlist, &lib, &pl, &graph, cfg, targets)
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = ModelConfig::tiny();
        let prep = prepared(120, 1, &cfg);
        let mut model = TimingModel::new(cfg);
        let log =
            model.train(&[prep], &TrainConfig { epochs: 30, lr: 3e-3, ..TrainConfig::default() });
        let first = log.epoch_loss[0];
        let last = log.final_loss();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn model_learns_real_sta_targets() {
        // The model should fit one design's real arrivals to high accuracy
        // (memorization sanity check that gradients are correct end-to-end).
        let cfg = ModelConfig::tiny();
        let prep = prepared(150, 2, &cfg);
        let mut model = TimingModel::new(cfg);
        model.train(
            &[prep.clone()],
            &TrainConfig { epochs: 120, lr: 3e-3, ..TrainConfig::default() },
        );
        let pred = model.predict(&prep);
        let mean = prep.targets.iter().sum::<f32>() / prep.targets.len() as f32;
        let ss_tot: f32 = prep.targets.iter().map(|t| (t - mean).powi(2)).sum();
        let ss_res: f32 = pred.iter().zip(&prep.targets).map(|(p, t)| (p - t).powi(2)).sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.7, "train-set R² only {r2}");
    }

    #[test]
    fn variants_have_expected_parameter_relationship() {
        let full = TimingModel::new(ModelConfig::tiny());
        let gnn = TimingModel::new(ModelConfig::tiny().with_variant(ModelVariant::GnnOnly));
        let cnn = TimingModel::new(ModelConfig::tiny().with_variant(ModelVariant::CnnOnly));
        assert!(gnn.num_parameters() < full.num_parameters());
        assert!(cnn.num_parameters() < full.num_parameters());
    }

    #[test]
    fn predictions_have_one_value_per_endpoint() {
        let cfg = ModelConfig::tiny();
        let prep = prepared(80, 3, &cfg);
        let model = TimingModel::new(cfg);
        assert_eq!(model.predict(&prep).len(), prep.num_endpoints());
    }

    #[test]
    fn weight_roundtrip_preserves_predictions() {
        let cfg = ModelConfig::tiny();
        let prep = prepared(80, 4, &cfg);
        let mut model = TimingModel::new(cfg.clone());
        model.train(&[prep.clone()], &TrainConfig { epochs: 3, ..TrainConfig::default() });
        let before = model.predict(&prep);
        let blob = model.save_weights();
        let mut fresh = TimingModel::new(cfg);
        fresh.load_weights(&blob).unwrap();
        assert_eq!(fresh.predict(&prep), before);
    }

    #[test]
    fn load_rejects_other_architecture() {
        let mut a = TimingModel::new(ModelConfig::tiny());
        let b = TimingModel::new(ModelConfig::tiny().with_variant(ModelVariant::CnnOnly));
        assert!(a.load_weights(&b.save_weights()).is_err());
    }

    #[test]
    fn masking_changes_predictions() {
        let cfg = ModelConfig::tiny();
        let prep = prepared(100, 5, &cfg);
        let masked = TimingModel::new(cfg.clone());
        let unmasked = TimingModel::new(ModelConfig { masking: false, ..cfg });
        assert_ne!(masked.predict(&prep), unmasked.predict(&prep));
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let idx = sample_indices(&mut rng, 50, 20);
        assert_eq!(idx.len(), 20);
        let set: std::collections::HashSet<u32> = idx.iter().copied().collect();
        assert_eq!(set.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
        // k >= n returns everything.
        assert_eq!(sample_indices(&mut rng, 5, 10).len(), 5);
    }
}
