//! Gate-level netlist data model for restructure-tolerant timing prediction.
//!
//! This crate is the foundation of the workspace: it defines the
//! [`CellLibrary`] (an ASAP7-flavoured synthetic standard-cell library), the
//! mutable [`Netlist`] (pins, cells, nets, ports), and the derived
//! [`TimingGraph`] — the pin-level heterogeneous DAG with *net edges* and
//! *cell edges* that both the STA engine and the customized GNN of the paper
//! operate on.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rtt_netlist::NetlistError> {
//! use rtt_netlist::{CellLibrary, GateFn, Netlist, TimingGraph};
//!
//! let lib = CellLibrary::asap7_like();
//! let mut nl = Netlist::new("adder_bit");
//! let a = nl.add_input_port("a");
//! let b = nl.add_input_port("b");
//! let xor_t = lib.pick(GateFn::Xor2, 1).expect("library has XOR2_X1");
//! let (xor, xout) = nl.add_cell("u_xor", xor_t, &lib);
//! let (i0, i1) = (nl.cell(xor).inputs[0], nl.cell(xor).inputs[1]);
//! nl.connect_net("na", a, &[i0])?;
//! nl.connect_net("nb", b, &[i1])?;
//! let s = nl.add_output_port("s");
//! nl.connect_net("ns", xout, &[s])?;
//! let graph = TimingGraph::build(&nl, &lib);
//! assert_eq!(graph.endpoints().len(), 1); // the output port
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;
mod library;
mod netlist;
mod verilog;

pub use error::NetlistError;
pub use graph::{EdgeKind, NodeKind, TimingEdge, TimingGraph};
pub use ids::{CellId, CellTypeId, NetId, PinId};
pub use library::{CellLibrary, CellType, GateFn, DRIVE_STRENGTHS};
pub use netlist::{Cell, Net, Netlist, Pin, PinDir, PortKind};
pub use verilog::{parse_verilog, write_verilog, VerilogError};
