//! P002 positive: indexed accesses in the hot inner loop with no
//! hoisted length assert — every `out[i]` re-checks bounds.

// rtt-lint: hot
pub fn scale_fixture(a: &[f32], out: &mut [f32]) {
    for i in 0..a.len() {
        out[i] = a[i] * 2.0;
    }
}
