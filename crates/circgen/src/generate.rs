//! The layered random-logic generator.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtt_netlist::{CellLibrary, CellTypeId, GateFn, Netlist, PinId};

use crate::GenParams;

/// Output of [`GenParams::generate`]: the netlist plus physical hints for
/// the placer.
#[derive(Clone, Debug)]
pub struct GeneratedDesign {
    /// The generated gate-level netlist.
    pub netlist: Netlist,
    /// Number of macro blocks the placer should carve out of the die.
    pub num_macros: usize,
    /// The parameters the design was generated from.
    pub params: GenParams,
}

/// Relative frequency of each combinational gate function, mimicking a
/// commercial synthesis result (NAND/NOR-heavy, sparse XOR/MUX/AOI).
const GATE_MIX: [(GateFn, u32); 14] = [
    (GateFn::Nand2, 18),
    (GateFn::Nor2, 12),
    (GateFn::And2, 12),
    (GateFn::Or2, 10),
    (GateFn::Inv, 10),
    (GateFn::And3, 6),
    (GateFn::Or3, 5),
    (GateFn::And4, 4),
    (GateFn::Or4, 3),
    (GateFn::Xor2, 6),
    (GateFn::Xnor2, 4),
    (GateFn::Mux2, 6),
    (GateFn::Aoi22, 4),
    (GateFn::Buf, 2),
];

fn sample_gate(rng: &mut StdRng) -> GateFn {
    let total: u32 = GATE_MIX.iter().map(|(_, w)| w).sum();
    let mut r = rng.gen_range(0..total);
    for &(g, w) in &GATE_MIX {
        if r < w {
            return g;
        }
        r -= w;
    }
    unreachable!("weights exhausted")
}

/// Synthesis output carries a spread of drive strengths; the downstream
/// optimizer both upsizes (critical cones) and downsizes (area recovery),
/// so the initial distribution needs room in both directions.
fn sample_drive(rng: &mut StdRng) -> u8 {
    let r: f64 = rng.gen();
    if r < 0.40 {
        1
    } else if r < 0.70 {
        2
    } else if r < 0.90 {
        4
    } else {
        8
    }
}

struct DriverPool {
    /// `(driver pin, logic depth)` for every net driver created so far.
    drivers: Vec<(PinId, u32)>,
    /// Indices into `drivers` whose output has not been used yet.
    unconsumed: VecDeque<usize>,
    /// Accumulated sinks per driver; nets are emitted at the end.
    sinks: Vec<Vec<PinId>>,
}

impl DriverPool {
    fn new() -> Self {
        Self { drivers: Vec::new(), unconsumed: VecDeque::new(), sinks: Vec::new() }
    }

    fn add(&mut self, pin: PinId, depth: u32) -> usize {
        let idx = self.drivers.len();
        self.drivers.push((pin, depth));
        self.sinks.push(Vec::new());
        self.unconsumed.push_back(idx);
        idx
    }

    fn attach(&mut self, driver_idx: usize, sink: PinId) {
        self.sinks[driver_idx].push(sink);
    }
}

impl GenParams {
    /// Generates the design described by these parameters.
    ///
    /// Deterministic: equal parameters (including `seed`) produce identical
    /// netlists.
    ///
    /// # Panics
    ///
    /// Panics if the library lacks a required gate variant (never the case
    /// for [`CellLibrary::asap7_like`]).
    pub fn generate(&self, library: &CellLibrary) -> GeneratedDesign {
        let obs = rtt_obs::span("circgen::generate");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut nl = Netlist::new(self.name.clone());
        let mut pool = DriverPool::new();

        // Startpoints: primary inputs and flip-flop outputs, depth 0.
        for i in 0..self.inputs {
            let p = nl.add_input_port(format!("pi{i}"));
            pool.add(p, 0);
        }
        let mut flop_d_pins = Vec::with_capacity(self.flops);
        for i in 0..self.flops {
            let ty = pick(library, GateFn::Dff, if rng.gen_bool(0.8) { 1 } else { 2 });
            let (c, q) = nl.add_cell(format!("r{i}"), ty, library);
            flop_d_pins.push(nl.cell(c).inputs[0]);
            pool.add(q, 0);
        }

        // Combinational gates: inputs sampled from the driver pool with a
        // bias toward extending recent cones (creates depth variance from a
        // couple of levels to hundreds, like real designs).
        for g in 0..self.comb_cells {
            let gate = sample_gate(&mut rng);
            let ty = pick(library, gate, sample_drive(&mut rng));
            let (c, out) = nl.add_cell(format!("g{g}"), ty, library);
            let in_pins: Vec<PinId> = nl.cell(c).inputs.clone();
            let mut chosen: Vec<usize> = Vec::with_capacity(in_pins.len());
            let mut depth = 0;
            for &ipin in &in_pins {
                let d_idx = self.sample_driver(&mut rng, &mut pool, &chosen);
                chosen.push(d_idx);
                pool.attach(d_idx, ipin);
                depth = depth.max(pool.drivers[d_idx].1 + 1);
            }
            pool.add(out, depth);
        }

        // Endpoints: output ports and flop D inputs. Drain the unconsumed
        // drivers first (deepest last => assigned first), then sample.
        let mut endpoint_sinks: Vec<PinId> = Vec::new();
        for i in 0..self.outputs {
            endpoint_sinks.push(nl.add_output_port(format!("po{i}")));
        }
        endpoint_sinks.extend(flop_d_pins);
        for &sink in &endpoint_sinks {
            let d_idx = match pool.unconsumed.pop_back() {
                Some(i) => i,
                None => rng.gen_range(0..pool.drivers.len()),
            };
            pool.attach(d_idx, sink);
        }
        // Leftover never-used drivers become extra observation ports so that
        // no live output dangles.
        let leftovers: Vec<usize> = pool.unconsumed.drain(..).collect();
        for (k, d_idx) in leftovers.into_iter().enumerate() {
            let p = nl.add_output_port(format!("po_x{k}"));
            pool.attach(d_idx, p);
        }

        // Emit nets.
        for (idx, (driver, _)) in pool.drivers.iter().enumerate() {
            let sinks = &pool.sinks[idx];
            debug_assert!(!sinks.is_empty(), "dangling driver escaped the drain");
            nl.connect_net(format!("w{idx}"), *driver, sinks)
                .expect("generator wiring is structurally valid");
        }
        nl.validate().expect("generated netlist is valid");

        obs.add("cells", nl.num_cells() as u64);
        obs.add("nets", nl.num_nets() as u64);
        GeneratedDesign { netlist: nl, num_macros: self.macros, params: self.clone() }
    }

    /// Samples an input driver for a new gate, avoiding duplicates within
    /// the gate.
    fn sample_driver(&self, rng: &mut StdRng, pool: &mut DriverPool, taken: &[usize]) -> usize {
        for _ in 0..8 {
            let r: f64 = rng.gen();
            let (cand, popped) = if r < self.depth_bias && !pool.unconsumed.is_empty() {
                // Extend the most recent (deepest) open cone.
                (pool.unconsumed.pop_back().expect("nonempty"), true)
            } else if r < self.depth_bias + 0.15 && !pool.unconsumed.is_empty() {
                // Merge in an old shallow signal (reconvergence).
                (pool.unconsumed.pop_front().expect("nonempty"), true)
            } else {
                // Fanout / reconvergence within a recency window.
                let n = pool.drivers.len();
                let w = self.window.min(n);
                (rng.gen_range(n - w..n), false)
            };
            if taken.contains(&cand) {
                // Duplicate within this gate: restore and retry.
                if popped {
                    pool.unconsumed.push_back(cand);
                }
                continue;
            }
            if !popped {
                // A random hit on a still-unconsumed driver consumes it.
                if let Some(pos) = pool.unconsumed.iter().position(|&i| i == cand) {
                    pool.unconsumed.remove(pos);
                }
            }
            return cand;
        }
        // Fallback: newest non-duplicate driver; with a pool smaller than the
        // gate's input count, a duplicate driver is acceptable (two sinks on
        // the same cell).
        let cand = (0..pool.drivers.len())
            .rev()
            .find(|i| !taken.contains(i))
            .unwrap_or(pool.drivers.len() - 1);
        if let Some(pos) = pool.unconsumed.iter().position(|&i| i == cand) {
            pool.unconsumed.remove(pos);
        }
        cand
    }
}

fn pick(library: &CellLibrary, gate: GateFn, drive: u8) -> CellTypeId {
    library
        .pick(gate, drive)
        .unwrap_or_else(|| library.variants(gate).first().copied().expect("gate exists in library"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{preset, Scale};
    use rtt_netlist::TimingGraph;

    fn small() -> GeneratedDesign {
        GenParams::new("gen_test", 300, 42).generate(&CellLibrary::asap7_like())
    }

    #[test]
    fn generated_netlist_is_valid_and_acyclic() {
        let lib = CellLibrary::asap7_like();
        let d = small();
        d.netlist.validate().unwrap();
        let g = TimingGraph::try_build(&d.netlist, &lib).unwrap();
        assert!(g.max_level() >= 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.netlist.num_pins(), b.netlist.num_pins());
        assert_eq!(a.netlist.num_nets(), b.netlist.num_nets());
        let nets_a: Vec<_> = a.netlist.nets().map(|(_, n)| n.sinks.clone()).collect();
        let nets_b: Vec<_> = b.netlist.nets().map(|(_, n)| n.sinks.clone()).collect();
        assert_eq!(nets_a, nets_b);
    }

    #[test]
    fn different_seeds_differ() {
        let lib = CellLibrary::asap7_like();
        let a = GenParams::new("a", 300, 1).generate(&lib);
        let b = GenParams::new("a", 300, 2).generate(&lib);
        let sa: Vec<_> = a.netlist.nets().map(|(_, n)| n.sinks.len()).collect();
        let sb: Vec<_> = b.netlist.nets().map(|(_, n)| n.sinks.len()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn cell_count_matches_params() {
        let d = small();
        assert_eq!(d.netlist.num_cells(), d.params.comb_cells + d.params.flops);
    }

    #[test]
    fn endpoints_cover_flops_and_outputs() {
        let lib = CellLibrary::asap7_like();
        let d = small();
        let g = TimingGraph::build(&d.netlist, &lib);
        // flop D pins + declared outputs + leftover observation ports
        assert!(g.endpoints().len() >= d.params.flops + d.params.outputs);
        assert_eq!(g.startpoints().len(), d.params.inputs + d.params.flops);
    }

    #[test]
    fn depth_has_realistic_variance() {
        let lib = CellLibrary::asap7_like();
        let d = preset("jpeg", Scale::Tiny).unwrap().generate(&lib);
        let g = TimingGraph::build(&d.netlist, &lib);
        let levels: Vec<u32> = g.endpoints().iter().map(|&e| g.level(e)).collect();
        let min = *levels.iter().min().unwrap();
        let max = *levels.iter().max().unwrap();
        // The paper reports fanin-cone depths from 2 to 400+; at tiny scale we
        // still need a wide spread for the model to have anything to learn.
        assert!(max >= min + 8, "levels {min}..{max} too uniform");
    }

    #[test]
    fn fanout_is_heavy_tailed() {
        let d = small();
        let mut fanouts: Vec<usize> = d.netlist.nets().map(|(_, n)| n.sinks.len()).collect();
        fanouts.sort_unstable();
        assert_eq!(fanouts[0], 1);
        assert!(*fanouts.last().unwrap() >= 4, "max fanout {}", fanouts.last().unwrap());
    }

    #[test]
    fn all_presets_generate_at_tiny_scale() {
        let lib = CellLibrary::asap7_like();
        for p in crate::all_presets(Scale::Tiny) {
            let d = p.generate(&lib);
            d.netlist.validate().unwrap();
            TimingGraph::try_build(&d.netlist, &lib).unwrap();
        }
    }
}

#[cfg(test)]
mod verilog_roundtrip_tests {
    use super::*;
    use rtt_netlist::{parse_verilog, write_verilog, TimingGraph};

    #[test]
    fn generated_designs_roundtrip_through_verilog() {
        let lib = CellLibrary::asap7_like();
        for seed in [1u64, 2, 3] {
            let d = GenParams::new(format!("rt{seed}"), 150, seed).generate(&lib);
            let text = write_verilog(&d.netlist, &lib);
            let back = parse_verilog(&text, &lib).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            back.validate().unwrap();
            assert_eq!(back.num_cells(), d.netlist.num_cells());
            assert_eq!(back.num_nets(), d.netlist.num_nets());
            let g1 = TimingGraph::build(&d.netlist, &lib);
            let g2 = TimingGraph::build(&back, &lib);
            assert_eq!(g1.num_net_edges(), g2.num_net_edges());
            assert_eq!(g1.num_cell_edges(), g2.num_cell_edges());
            assert_eq!(g1.max_level(), g2.max_level());
            assert_eq!(g1.endpoints().len(), g2.endpoints().len());
        }
    }
}
