//! The daemon: acceptor, bounded queue, fixed worker pool, routes.
//!
//! Thread layout is deliberately boring — one acceptor plus a fixed
//! worker pool, joined on shutdown:
//!
//! * The **acceptor** owns the listener. It never parses bytes; it only
//!   accepts, stamps the deadline, and offers the connection to the
//!   bounded queue. A full queue (or an injected `QueueFull` fault) is
//!   answered inline with `503` + `Retry-After` and a close — the one
//!   fixed-cost path that keeps memory bounded under any arrival rate.
//! * Each **worker** owns one recycled [`InferCtx`] arena for its whole
//!   lifetime, so steady-state `/predict` traffic allocates nothing in
//!   the model. Worker bodies run under `catch_unwind`: a panic is
//!   counted on `/stats` and the worker keeps serving (`/stats` reading
//!   zero `worker_panics` after a chaos run is the real assertion).
//! * **Shutdown** is: stop flag → self-connect to unblock `accept` →
//!   join acceptor → close queue → workers drain what's queued → join.
//!   Queued requests are answered, not dropped (their deadlines still
//!   apply).
//!
//! Per-request deadlines are enforced at the two places a slow peer or
//! an overloaded queue can park work: queue-dequeue (expired requests
//! get `503` without touching the model) and response-write (a stalled
//! client can't pin a worker past the deadline).

use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rtt_core::{IncrementalCtx, PrepareCtx, PreparedDesign, TimingModel};
use rtt_netlist::{CellId, CellLibrary, NetId, Netlist, PinId, TimingGraph};
use rtt_nn::InferCtx;
use rtt_place::{Placement, Point};

use crate::fault::{FaultMode, FaultPlan};
use crate::http::{parse_request, HttpError, Limits, ParseStatus, Request, Response};
use crate::now;
use crate::queue::Queue;
use crate::reload::ModelSwap;
use crate::stats::{Stats, StatsSnapshot};

/// Daemon configuration. `Default` binds an ephemeral localhost port
/// with two workers — the smoke-test shape; production callers override.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (each owns one recycled `InferCtx`).
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it, `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-request deadline, enforced at dequeue and response-write.
    pub deadline_ms: u64,
    /// Socket read/write timeout (bounds each blocking IO call).
    pub io_timeout_ms: u64,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: u32,
    /// HTTP parse budgets.
    pub limits: Limits,
    /// File `/reload` re-reads; `None` disables `/reload`.
    pub weights_path: Option<std::path::PathBuf>,
    /// Cap on designs the `/load` registry will hold.
    pub max_designs: usize,
    /// Latency samples kept for `/stats` quantiles.
    pub latency_window: usize,
    /// Fault-injection plan (disabled unless tests or `RTT_FAULTS` say
    /// otherwise).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            deadline_ms: 2_000,
            io_timeout_ms: 1_000,
            keep_alive_requests: 32,
            limits: Limits::default(),
            weights_path: None,
            max_designs: 16,
            latency_window: 1024,
            faults: FaultPlan::disabled(),
        }
    }
}

/// Final counters handed back by [`Server::shutdown`].
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Stats at the moment the last worker exited.
    pub stats: StatsSnapshot,
}

/// One accepted connection waiting for a worker.
struct Conn {
    stream: TcpStream,
    deadline: Instant,
}

/// One registered design plus its incremental-inference state.
///
/// `sources` (the live netlist + placement) are retained only for designs
/// registered through `/load`; designs seeded at boot arrive already
/// prepared and cannot be transformed. `pending` accumulates the dirty
/// seed pins of every `/transform` since the last incremental `/predict`;
/// the union-of-seeds rule makes handing them over in one batch sound.
/// `model_generation` records which model generation the activation cache
/// was computed under — a `/reload` between predicts invalidates it.
struct DesignEntry {
    sources: Option<(Netlist, Placement)>,
    prep: Arc<PreparedDesign>,
    /// Delta-prepare context: lets `/transform` update the preparation
    /// in place instead of recomputing it. `None` for boot-seeded
    /// designs (immutable, never transformed) and after a grid change;
    /// a missing context falls back to a cold prepare and re-arms.
    pctx: Option<PrepareCtx>,
    inc: IncrementalCtx,
    pending: Vec<PinId>,
    design_generation: u64,
    model_generation: u64,
}

impl DesignEntry {
    fn boot(prep: PreparedDesign) -> Self {
        Self {
            sources: None,
            prep: Arc::new(prep),
            pctx: None,
            inc: IncrementalCtx::new(),
            pending: Vec::new(),
            design_generation: 1,
            model_generation: 0,
        }
    }
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    cfg: ServeConfig,
    swap: ModelSwap,
    designs: Mutex<BTreeMap<String, Arc<Mutex<DesignEntry>>>>,
    stats: Stats,
    queue: Queue<Conn>,
    stop: AtomicBool,
    shutdown_requested: AtomicBool,
}

/// A running daemon. Dropping it shuts it down gracefully.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns a handle.
    /// `designs` seeds the registry (`/load` can add more at runtime).
    pub fn start(
        cfg: ServeConfig,
        model: TimingModel,
        designs: Vec<(String, PreparedDesign)>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry: BTreeMap<String, Arc<Mutex<DesignEntry>>> = designs
            .into_iter()
            .map(|(name, prep)| (name, Arc::new(Mutex::new(DesignEntry::boot(prep)))))
            .collect();
        let shared = Arc::new(Shared {
            stats: Stats::new(cfg.workers.max(1), cfg.latency_window),
            queue: Queue::new(cfg.queue_capacity),
            swap: ModelSwap::new(model),
            designs: Mutex::new(registry),
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            cfg,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();

        Ok(Server { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a client has POSTed `/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Point-in-time counters (same numbers `/stats` serves).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Current model generation (bumped by each successful `/reload`).
    pub fn generation(&self) -> u64 {
        self.shared.swap.current().generation
    }

    /// Graceful shutdown: stop accepting, drain every queued request,
    /// join all threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it checks the stop flag before queueing anything.
        drop(TcpStream::connect(self.addr));
        if let Some(handle) = self.acceptor.take() {
            drop(handle.join());
        }
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            drop(handle.join());
        }
        ShutdownReport { stats: self.shared.stats.snapshot() }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.record_accept();
        let deadline = now() + Duration::from_millis(shared.cfg.deadline_ms);
        let conn = Conn { stream, deadline };
        let rejected = if shared.cfg.faults.decide(FaultMode::QueueFull) {
            Some(conn)
        } else {
            shared.queue.try_push(conn).err()
        };
        if let Some(mut conn) = rejected {
            shared.stats.record_queue_rejection();
            shared.stats.record_response(503);
            let resp = Response::text(503, "queue full\n").with_header("Retry-After", "1");
            // Best-effort: the peer gets the 503 unless it already left.
            drop(conn.stream.set_write_timeout(Some(Duration::from_millis(100))));
            drop(conn.stream.write_all(&resp.encode(false)));
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let ctx = InferCtx::new();
    while let Some(conn) = shared.queue.pop() {
        // A panic anywhere in the handler (a bug, not a policy) must not
        // take the worker down mid-chaos; it is counted and visible on
        // /stats, and the chaos suite asserts the count stays zero.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(shared, worker, &ctx, conn);
        }));
        if outcome.is_err() {
            shared.stats.record_worker_panic();
        }
        shared.stats.set_arena_bytes(worker, ctx.arena_bytes());
    }
}

/// Serves one connection: reads requests (incrementally, through the
/// fault layer), routes them, and writes responses until the peer
/// closes, an error ends the exchange, or the keep-alive budget runs
/// out.
// rtt-lint: entry
fn handle_connection(shared: &Shared, worker: usize, ctx: &InferCtx, conn: Conn) {
    let mut stream = conn.stream;
    let mut deadline = conn.deadline;
    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    if stream.set_read_timeout(Some(io_timeout)).is_err()
        || stream.set_write_timeout(Some(io_timeout)).is_err()
    {
        shared.stats.record_io_error();
        return;
    }

    // Dequeue-side deadline: if this connection waited out its budget in
    // the queue, answer 503 without touching the parser or the model.
    if now() > deadline {
        shared.stats.record_deadline_drop();
        shared.stats.record_response(503);
        drop(write_response(
            shared,
            &mut stream,
            &Response::text(503, "deadline expired in queue\n").with_header("Retry-After", "1"),
            false,
            deadline + Duration::from_millis(100),
        ));
        return;
    }

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut served: u32 = 0;
    loop {
        let request = match read_one_request(shared, &mut stream, &mut buf, deadline) {
            ReadOutcome::Request(request) => request,
            ReadOutcome::PeerClosed => return,
            ReadOutcome::IoError => {
                shared.stats.record_io_error();
                return;
            }
            ReadOutcome::Timeout => {
                shared.stats.record_response(408);
                drop(write_response(
                    shared,
                    &mut stream,
                    &Response::text(408, "request timed out\n"),
                    false,
                    deadline,
                ));
                return;
            }
            ReadOutcome::Malformed(err) => {
                shared.stats.record_response(err.status());
                drop(write_response(
                    shared,
                    &mut stream,
                    &Response::text(err.status(), format!("{err}\n")),
                    false,
                    deadline,
                ));
                return;
            }
        };

        shared.stats.record_request();
        let response = route(shared, worker, ctx, &request);
        served += 1;
        let keep_alive = !request.wants_close()
            && served < shared.cfg.keep_alive_requests.max(1)
            && !shared.stop.load(Ordering::SeqCst);
        let status = response.status;
        if write_response(shared, &mut stream, &response, keep_alive, deadline).is_err() {
            shared.stats.record_io_error();
            return;
        }
        shared.stats.record_response(status);
        if !keep_alive {
            return;
        }
        // Each keep-alive exchange gets a fresh deadline.
        deadline = now() + Duration::from_millis(shared.cfg.deadline_ms);
    }
}

enum ReadOutcome {
    Request(Box<Request>),
    PeerClosed,
    IoError,
    Timeout,
    Malformed(HttpError),
}

/// Accumulates socket bytes (through the fault layer) until `buf` holds
/// one complete request, then splits it off.
fn read_one_request(
    shared: &Shared,
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> ReadOutcome {
    loop {
        match parse_request(buf, &shared.cfg.limits) {
            Ok(ParseStatus::Complete { request, consumed }) => {
                buf.drain(..consumed);
                return ReadOutcome::Request(request);
            }
            Ok(ParseStatus::Partial) => {}
            Err(err) => return ReadOutcome::Malformed(err),
        }
        if now() > deadline {
            return ReadOutcome::Timeout;
        }
        let mut chunk = [0u8; 4096];
        match shared.cfg.faults.read(stream, &mut chunk) {
            Ok(0) => {
                // Clean EOF between requests is a normal close; EOF with
                // a half-request buffered is the peer giving up.
                return if buf.is_empty() { ReadOutcome::PeerClosed } else { ReadOutcome::IoError };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // One read-timeout tick: loop to re-check the deadline.
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::IoError,
        }
    }
}

/// Writes a full encoded response, resuming across short writes, bounded
/// by the request deadline.
fn write_response(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    deadline: Instant,
) -> io::Result<()> {
    let bytes = response.encode(keep_alive);
    let mut off = 0;
    while off < bytes.len() {
        if now() > deadline {
            shared.stats.record_deadline_drop();
            return Err(io::Error::new(ErrorKind::TimedOut, "deadline during response write"));
        }
        match shared.cfg.faults.write(stream, &bytes[off..]) {
            Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "peer stopped reading")),
            Ok(n) => off += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// Dispatches one parsed request to its endpoint handler.
// rtt-lint: entry
fn route(shared: &Shared, worker: usize, ctx: &InferCtx, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/stats") => stats_response(shared),
        ("POST", "/predict") => predict(shared, worker, ctx, req),
        ("POST", "/transform") => transform(shared, req),
        ("POST", "/reload") => reload(shared),
        ("POST", "/load") => load_design(shared, req),
        ("POST", "/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            Response::text(200, "shutting down\n")
        }
        (
            _,
            "/healthz" | "/stats" | "/predict" | "/transform" | "/reload" | "/load" | "/shutdown",
        ) => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

fn stats_response(shared: &Shared) -> Response {
    let mut json = String::with_capacity(512);
    json.push('{');
    shared.stats.snapshot().write_json_members(&mut json);
    json.push_str(",\"generation\":");
    json.push_str(&shared.swap.current().generation.to_string());
    json.push_str(",\"queue_depth\":");
    json.push_str(&shared.queue.len().to_string());
    json.push_str(",\"designs\":");
    let designs = shared.designs.lock().unwrap_or_else(PoisonError::into_inner).len();
    json.push_str(&designs.to_string());
    json.push_str(",\"faults_injected\":{");
    for (i, (mode, count)) in shared.cfg.faults.injected_counts().iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push('"');
        json.push_str(mode.name());
        json.push_str("\":");
        json.push_str(&count.to_string());
    }
    json.push_str("}}");
    Response::json(200, json)
}

/// Resolves a design by name (or the sole registered design when no name
/// is given), or explains why it can't.
fn resolve_design(
    shared: &Shared,
    design_name: Option<&str>,
) -> Result<Arc<Mutex<DesignEntry>>, Response> {
    let entry = {
        let registry = shared.designs.lock().unwrap_or_else(PoisonError::into_inner);
        match design_name {
            Some(name) => registry.get(name).cloned(),
            None if registry.len() == 1 => registry.values().next().cloned(),
            None => {
                return Err(Response::text(
                    400,
                    format!("design= is required ({} designs registered)\n", registry.len()),
                ))
            }
        }
    };
    entry.ok_or_else(|| Response::text(404, "unknown design\n"))
}

/// `POST /predict` — body lines `design=NAME` (optional when exactly one
/// design is registered), `indices=0,5,9` (optional; defaults to all
/// endpoints), and `mode=full|incremental` (optional; default `full`).
/// Answers `n=COUNT` then one arrival per line, printed with Rust's
/// shortest-round-trip float formatting so clients recover the f32 bits
/// exactly.
///
/// `mode=incremental` routes through the design's [`IncrementalCtx`]:
/// pending `/transform` dirty seeds are handed to the model, which
/// recomputes only the dirtied fan-out cones and reuses the cached
/// activations elsewhere — bit-identical to `mode=full` by construction.
/// The cache is keyed to the model generation; a `/reload` in between
/// resets it rather than mixing activations from two models.
fn predict(shared: &Shared, worker: usize, ctx: &InferCtx, req: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::text(400, "body must be utf-8\n");
    };
    let mut design_name: Option<&str> = None;
    let mut indices_spec: Option<&str> = None;
    let mut incremental = false;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once('=') {
            Some(("design", v)) => design_name = Some(v),
            Some(("indices", v)) => indices_spec = Some(v),
            Some(("mode", "full")) => incremental = false,
            Some(("mode", "incremental")) => incremental = true,
            Some(("mode", v)) => return Response::text(400, format!("unknown mode: {v}\n")),
            _ => return Response::text(400, format!("unrecognized body line: {line}\n")),
        }
    }

    let entry = match resolve_design(shared, design_name) {
        Ok(entry) => entry,
        Err(resp) => return resp,
    };
    let design = entry.lock().unwrap_or_else(PoisonError::into_inner).prep.clone();

    let n = design.num_endpoints() as u32;
    let indices: Vec<u32> = match indices_spec {
        None => (0..n).collect(),
        Some(spec) => {
            let mut out = Vec::new();
            for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let Ok(i) = tok.parse::<u32>() else {
                    return Response::text(400, format!("bad index: {tok}\n"));
                };
                if i >= n {
                    return Response::text(422, format!("index {i} out of range (n={n})\n"));
                }
                out.push(i);
            }
            out
        }
    };

    let state = shared.swap.current();
    let t0 = now();
    let preds = if incremental {
        // The entry stays locked for the whole incremental predict: the
        // activation cache is per-design mutable state, and serializing
        // its users is what keeps "cache + pending seeds" consistent.
        let mut entry = entry.lock().unwrap_or_else(PoisonError::into_inner);
        if entry.model_generation != state.generation {
            entry.inc.reset();
            entry.model_generation = state.generation;
        }
        let prep = Arc::clone(&entry.prep);
        // A racing /transform may have republished since the indices were
        // validated; re-check against the prep actually being served.
        let n_now = prep.num_endpoints() as u32;
        if let Some(&i) = indices.iter().find(|&&i| i >= n_now) {
            return Response::text(422, format!("index {i} out of range (n={n_now})\n"));
        }
        let seeds = std::mem::take(&mut entry.pending);
        state.model.predict_incremental(ctx, &mut entry.inc, &prep, &seeds, &indices)
    } else {
        state.model.predict_batch(ctx, &design, &indices)
    };
    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
    shared.stats.record_predict(latency_ms, preds.len());
    shared.stats.set_arena_bytes(worker, ctx.arena_bytes());

    let mut body = String::with_capacity(16 + preds.len() * 12);
    body.push_str("n=");
    body.push_str(&preds.len().to_string());
    body.push_str("\ngeneration=");
    body.push_str(&state.generation.to_string());
    body.push('\n');
    for p in preds {
        // f32 Display is shortest-round-trip: parsing the line back
        // recovers the exact bits, which the chaos suite relies on.
        body.push_str(&p.to_string());
        body.push('\n');
    }
    Response::text(200, body)
}

/// `POST /transform` — applies one netlist transform to a design that was
/// registered through `/load` (boot-seeded designs arrive already
/// prepared, without sources, and answer `422`).
///
/// Body lines: `design=NAME` (optional when exactly one design is
/// registered), `op=buffer|resize|bypass|prune`, plus the op's operands:
///
/// * `op=buffer` — `net=I sink=I pos=X,Y`: insert a buffer between the
///   net's driver and one sink, placed at `pos`.
/// * `op=resize` — `cell=I drive=N`: swap the cell's master for the
///   same-function variant at drive strength `N`.
/// * `op=bypass` — `cell=I`: short-circuit a repeater (buffer) cell.
/// * `op=prune` — remove dangling combinational logic.
///
/// The transform runs on *clones* of the stored netlist and placement and
/// is published atomically only after everything — the mutation itself,
/// the timing-graph rebuild, and feature preparation — has succeeded.
/// Any failure (including an injected [`FaultMode::TransformAbort`])
/// leaves the design, its generation, its pending dirty seeds, and its
/// activation cache exactly as they were: a client that retries or falls
/// back to `mode=full` observes no torn state. On success the response is
/// `generation=G` (the bumped design generation) and `dirty=N` (dirty
/// seed pins queued for the next incremental `/predict`).
fn transform(shared: &Shared, req: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::text(400, "body must be utf-8\n");
    };
    let mut design_name: Option<&str> = None;
    let mut op: Option<&str> = None;
    let mut net: Option<u32> = None;
    let mut sink: Option<u32> = None;
    let mut cell: Option<u32> = None;
    let mut drive: Option<u8> = None;
    let mut pos: Option<Point> = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, v)) = line.split_once('=') else {
            return Response::text(400, format!("unrecognized body line: {line}\n"));
        };
        let bad = |what: &str| Response::text(400, format!("bad {what}: {v}\n"));
        match key {
            "design" => design_name = Some(v),
            "op" => op = Some(v),
            "net" => match v.parse() {
                Ok(i) => net = Some(i),
                Err(_) => return bad("net"),
            },
            "sink" => match v.parse() {
                Ok(i) => sink = Some(i),
                Err(_) => return bad("sink"),
            },
            "cell" => match v.parse() {
                Ok(i) => cell = Some(i),
                Err(_) => return bad("cell"),
            },
            "drive" => match v.parse() {
                Ok(i) => drive = Some(i),
                Err(_) => return bad("drive"),
            },
            "pos" => match v
                .split_once(',')
                .and_then(|(x, y)| Some(Point::new(x.trim().parse().ok()?, y.trim().parse().ok()?)))
            {
                Some(p) => pos = Some(p),
                None => return bad("pos"),
            },
            _ => return Response::text(400, format!("unrecognized body line: {line}\n")),
        }
    }
    let Some(op) = op else {
        return Response::text(400, "op= is required\n");
    };

    let entry = match resolve_design(shared, design_name) {
        Ok(entry) => entry,
        Err(resp) => return resp,
    };
    let mut entry = entry.lock().unwrap_or_else(PoisonError::into_inner);
    // Disjoint field borrows: the delta-prepare below reads `sources`
    // while taking `pctx` out of the entry.
    let DesignEntry { sources, prep, pctx, pending, design_generation, .. } = &mut *entry;
    let Some((netlist, placement)) = sources.as_ref() else {
        return Response::text(422, "design has no sources (boot-seeded designs are immutable)\n");
    };

    // Every mutation happens on clones; the stored entry is untouched
    // until the single publish block at the end.
    let library = CellLibrary::asap7_like();
    let mut nl = netlist.clone();
    let mut pl = placement.clone();
    let need = |param: Option<u32>, what: &str| {
        param.ok_or_else(|| Response::text(400, format!("{what}= is required for op={op}\n")))
    };
    let outcome: Result<(), Response> = (|| match op {
        "buffer" => {
            let net = NetId::from_index(need(net, "net")? as usize);
            let sink = PinId::from_index(need(sink, "sink")? as usize);
            let pos = pos.ok_or_else(|| {
                Response::text(400, "pos= is required for op=buffer\n".to_owned())
            })?;
            if net.index() >= nl.net_capacity() || sink.index() >= nl.pin_capacity() {
                return Err(Response::text(422, "net/sink id out of range\n"));
            }
            rtt_opt::insert_buffer(&mut nl, &mut pl, &library, net, sink, pos)
                .map(drop)
                .map_err(|e| Response::text(422, format!("{e}\n")))
        }
        "resize" => {
            let cell = CellId::from_index(need(cell, "cell")? as usize);
            let drive =
                drive.ok_or_else(|| Response::text(400, "drive= is required for op=resize\n"))?;
            if cell.index() >= nl.cell_capacity() || !nl.cell(cell).is_alive() {
                return Err(Response::text(422, "cell id out of range or dead\n"));
            }
            let gate = library.cell_type(nl.cell(cell).type_id).gate;
            let new_type = library.pick(gate, drive).ok_or_else(|| {
                Response::text(422, format!("no drive-{drive} variant for this gate\n"))
            })?;
            nl.resize_cell(cell, new_type, &library)
                .map_err(|e| Response::text(422, format!("{e}\n")))
        }
        "bypass" => {
            let cell = CellId::from_index(need(cell, "cell")? as usize);
            if cell.index() >= nl.cell_capacity() {
                return Err(Response::text(422, "cell id out of range\n"));
            }
            rtt_opt::bypass_repeater(&mut nl, &library, cell)
                .map_err(|e| Response::text(422, format!("{e}\n")))
        }
        "prune" => {
            rtt_opt::prune_dangling(&mut nl, &library);
            Ok(())
        }
        _ => Err(Response::text(400, format!("unknown op: {op}\n"))),
    })();
    if let Err(resp) = outcome {
        return resp;
    }

    // The injected abort fires at the most adversarial moment: the clones
    // are fully mutated but nothing has been published. The chaos suite
    // asserts the next incremental /predict still matches a cold daemon.
    if shared.cfg.faults.decide(FaultMode::TransformAbort) {
        return Response::text(500, "injected transform abort\n");
    }

    let graph = match TimingGraph::try_build(&nl, &library) {
        Ok(g) => g,
        Err(e) => return Response::text(422, format!("timing graph: {e}\n")),
    };
    let config = shared.swap.current().model.config().clone();
    let targets = vec![0.0f32; graph.endpoints().len()];
    let seeds = rtt_opt::dirty_seed_pins(netlist, &nl);
    // Delta path when a prepare context is armed: carry the previous
    // preparation's clean work across the transform (bit-identical to a
    // cold prepare). The context is taken out first, so a panic mid-update
    // simply drops it and the next transform re-arms cold.
    let (new_prep, new_ctx) = match pctx.take() {
        Some(mut ctx) => {
            let updated = prep.update(
                &mut ctx,
                (netlist, placement),
                (&nl, &pl),
                &library,
                &graph,
                &config,
                &seeds,
                targets,
            );
            (updated, ctx)
        }
        None => PreparedDesign::prepare_full(&nl, &library, &pl, &graph, &config, targets),
    };
    let dirty = seeds.len();

    // Publish: everything below is infallible, so partial updates are
    // impossible.
    pending.extend(seeds);
    *sources = Some((nl, pl));
    *prep = Arc::new(new_prep);
    *pctx = Some(new_ctx);
    *design_generation += 1;
    Response::text(200, format!("generation={design_generation}\ndirty={dirty}\n"))
}

/// `POST /reload` — re-reads the configured weights file (through the
/// `CorruptReload` fault stream) and swaps it in if and only if it fully
/// validates. Failure keeps the old model and reports on `/stats`.
fn reload(shared: &Shared) -> Response {
    let Some(path) = &shared.cfg.weights_path else {
        return Response::text(400, "no weights path configured\n");
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => shared.cfg.faults.corrupt_reload(bytes),
        Err(e) => {
            let why = format!("read {}: {e}", path.display());
            shared.stats.record_reload(Err(why.clone()));
            return Response::text(500, format!("{why}\n"));
        }
    };
    match shared.swap.reload_from_bytes(&bytes) {
        Ok(generation) => {
            shared.stats.record_reload(Ok(()));
            Response::text(200, format!("generation={generation}\n"))
        }
        Err(e) => {
            shared.stats.record_reload(Err(e.to_string()));
            Response::text(422, format!("{e}\n"))
        }
    }
}

/// `POST /load?name=NAME` — registers a design at runtime. The body is
/// the structural verilog followed by the placement file; the
/// `X-Netlist-Bytes` header says where the split is.
fn load_design(shared: &Shared, req: &Request) -> Response {
    let Some(name) = req.query_param("name").filter(|n| !n.is_empty()) else {
        return Response::text(400, "name= query parameter is required\n");
    };
    {
        let registry = shared.designs.lock().unwrap_or_else(PoisonError::into_inner);
        if registry.len() >= shared.cfg.max_designs && !registry.contains_key(name) {
            return Response::text(422, "design registry full\n");
        }
    }
    let Some(split) = req.header("x-netlist-bytes").and_then(|v| v.parse::<usize>().ok()) else {
        return Response::text(400, "X-Netlist-Bytes header is required\n");
    };
    if split > req.body.len() {
        return Response::text(400, "X-Netlist-Bytes exceeds body length\n");
    }
    let (Ok(verilog), Ok(placement)) =
        (std::str::from_utf8(&req.body[..split]), std::str::from_utf8(&req.body[split..]))
    else {
        return Response::text(400, "body must be utf-8\n");
    };

    let library = CellLibrary::asap7_like();
    let netlist = match rtt_netlist::parse_verilog(verilog, &library) {
        Ok(nl) => nl,
        Err(e) => return Response::text(422, format!("verilog: {e}\n")),
    };
    let placement = match rtt_place::parse_placement(&netlist, placement) {
        Ok(pl) => pl,
        Err(e) => return Response::text(422, format!("placement: {e}\n")),
    };
    let graph = match TimingGraph::try_build(&netlist, &library) {
        Ok(g) => g,
        Err(e) => return Response::text(422, format!("timing graph: {e}\n")),
    };
    let endpoints = graph.endpoints().len();
    let config = shared.swap.current().model.config().clone();
    // Serving only predicts; targets are a training-time concept, but
    // prepare() wants one per endpoint.
    let targets = vec![0.0f32; endpoints];
    let (prep, pctx) =
        PreparedDesign::prepare_full(&netlist, &library, &placement, &graph, &config, targets);
    // Keep the parsed sources: they are what /transform mutates.
    let entry = DesignEntry {
        sources: Some((netlist, placement)),
        prep: Arc::new(prep),
        pctx: Some(pctx),
        inc: IncrementalCtx::new(),
        pending: Vec::new(),
        design_generation: 1,
        model_generation: 0,
    };
    shared
        .designs
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(name.to_owned(), Arc::new(Mutex::new(entry)));
    Response::text(200, format!("endpoints={endpoints}\n"))
}
