//! Regenerates **Table III**: runtime of the optimize+route+STA flow vs our
//! preprocessing + inference, with per-design speedups.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use rtt_bench::Cli;
use rtt_circgen::Scale;
use rtt_core::ModelConfig;
use rtt_flow::tables::{render_table3, table3, Table3Row};
use rtt_flow::{Dataset, FlowConfig};

fn main() {
    let cli = Cli::parse();
    eprintln!("[table3] generating dataset at scale {} (flow stages are timed) ...", cli.scale);
    let dataset = Dataset::generate(&FlowConfig { scale: cli.scale, ..FlowConfig::default() });
    let model_cfg = match cli.scale {
        Scale::Tiny => ModelConfig::tiny(),
        // Huge scales the circuits for prepare benchmarks, not the model.
        Scale::Small | Scale::Huge => ModelConfig::small(),
        Scale::Paper => ModelConfig::paper(),
    };
    let mut rows = table3(&dataset, &model_cfg);

    let n = rows.len().max(1) as f64;
    let avg = Table3Row {
        design: "avg".to_owned(),
        opt_s: rows.iter().map(|r| r.opt_s).sum::<f64>() / n,
        route_s: rows.iter().map(|r| r.route_s).sum::<f64>() / n,
        sta_s: rows.iter().map(|r| r.sta_s).sum::<f64>() / n,
        total_s: rows.iter().map(|r| r.total_s).sum::<f64>() / n,
        pre_s: rows.iter().map(|r| r.pre_s).sum::<f64>() / n,
        infer_s: rows.iter().map(|r| r.infer_s).sum::<f64>() / n,
        speedup: rows.iter().map(|r| r.total_s).sum::<f64>()
            / rows.iter().map(|r| r.pre_s + r.infer_s).sum::<f64>().max(1e-9),
    };
    rows.push(avg);

    let mut report = format!("# Table III (scale: {})\n\n", cli.scale);
    report.push_str(&render_table3(&rows));
    cli.write_report("table3", &report);
    cli.finish_trace();
}
