// R002 negative: errors instead of panics; panics confined to tests.
pub fn checked_div(a: u32, b: u32) -> Result<u32, String> {
    if b == 0 {
        return Err("division by zero".to_owned());
    }
    Ok(a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_in_tests() {
        if checked_div(1, 1).is_err() {
            panic!("1/1 must divide");
        }
    }
}
