//! Findings and their rustc-style / JSON rendering.

use std::fmt;

/// Identifier of one lint rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Rule {
    /// Nondeterministic `HashMap`/`HashSet` iteration in a
    /// determinism-critical crate.
    D001,
    /// Ambient entropy: `thread_rng`, `SystemTime`, `Instant::now`.
    D002,
    /// Float `==` / `!=` comparison.
    D003,
    /// `par_iter()` chain reduced with `.sum()` / `.reduce()`, bypassing the
    /// fixed-order tree sum.
    D004,
    /// Allocation transitively reachable from a `// rtt-lint: hot` function.
    P001,
    /// Indexed access in a hot function's innermost loop without a
    /// dominating length `assert!`.
    P002,
    /// `unwrap()` / `expect()` in library code.
    R001,
    /// `panic!` / `todo!` / `unimplemented!` in library code.
    R002,
    /// Panic site transitively reachable from a `// rtt-lint: entry`
    /// serving entry point.
    R003,
    /// `unsafe` without a `// SAFETY:` comment.
    U001,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 10] = [
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::P001,
        Rule::P002,
        Rule::R001,
        Rule::R002,
        Rule::R003,
        Rule::U001,
    ];

    /// The rule id as written in suppressions (`D001`, …).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::P001 => "P001",
            Rule::P002 => "P002",
            Rule::R001 => "R001",
            Rule::R002 => "R002",
            Rule::R003 => "R003",
            Rule::U001 => "U001",
        }
    }

    /// Parses a rule id.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }

    /// One-line description used in diagnostics.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "iteration over HashMap/HashSet in a determinism-critical crate",
            Rule::D002 => "ambient entropy source in library code",
            Rule::D003 => "exact float comparison",
            Rule::D004 => "order-sensitive reduction over a parallel iterator",
            Rule::P001 => "allocation reachable from a hot-path function",
            Rule::P002 => "unhoisted bounds check in a hot inner loop",
            Rule::R001 => "unwrap()/expect() in library code",
            Rule::R002 => "panic-family macro in library code",
            Rule::R003 => "panic site reachable from a serving entry point",
            Rule::U001 => "unsafe without a `// SAFETY:` comment",
        }
    }

    /// Remediation hint appended to text diagnostics.
    pub fn help(self) -> &'static str {
        match self {
            Rule::D001 => "use BTreeMap/BTreeSet, or collect and sort keys before traversal",
            Rule::D002 => "thread a seeded rng / take timestamps at the boundary and pass them in",
            Rule::D003 => "compare with an epsilon, or f32::to_bits for exact sentinel checks",
            Rule::D004 => "reduce with the fixed-shape tree sum (see rtt_nn::Grads::tree_sum)",
            Rule::P001 => {
                "hoist the allocation into a reused arena/scratch buffer, or move the \
                           function out of the hot set"
            }
            Rule::P002 => {
                "assert the slice lengths before the loop so LLVM hoists the bounds \
                           checks and vectorizes"
            }
            Rule::R001 => "return a typed error (see rtt_netlist::error) or document the invariant",
            Rule::R002 => "return an error; panics turn malformed inputs into aborts",
            Rule::R003 => {
                "make the callee fallible, hoist the check to plan/build time, or break \
                           the call edge"
            }
            Rule::U001 => "add a `// SAFETY:` comment stating why the invariants hold",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Specific message for this site.
    pub message: String,
    /// Verbatim source line, for the excerpt.
    pub excerpt: String,
}

impl Finding {
    /// Renders the finding in rustc style.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule, self.message));
        out.push_str(&format!("  --> {}:{}:{}\n", self.file, self.line, self.col));
        if !self.excerpt.is_empty() {
            let gutter = format!("{}", self.line);
            out.push_str(&format!("{:>w$} |\n", "", w = gutter.len()));
            out.push_str(&format!("{gutter} | {}\n", self.excerpt.trim_end()));
            let pad = self.excerpt.chars().take_while(|c| c.is_whitespace()).count();
            let caret = (self.col as usize).saturating_sub(1).max(pad);
            out.push_str(&format!(
                "{:>w$} | {:caret$}^\n",
                "",
                "",
                w = gutter.len(),
                caret = caret
            ));
        }
        out.push_str(&format!("  = help: {}\n", self.rule.help()));
        out
    }

    /// Renders the finding as one JSON object.
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","file":"{}","line":{},"col":{},"message":"{}","excerpt":"{}"}}"#,
            self.rule,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(self.excerpt.trim()),
        )
    }
}

/// Escapes a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("X999"), None);
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let f = Finding {
            rule: Rule::D001,
            file: "crates/sta/src/propagate.rs".into(),
            line: 12,
            col: 5,
            message: "HashMap iterated via `.iter()`".into(),
            excerpt: "    map.iter().for_each(|_| {});".into(),
        };
        let text = f.render_text();
        assert!(text.starts_with("error[D001]:"));
        assert!(text.contains("--> crates/sta/src/propagate.rs:12:5"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn json_rendering_escapes() {
        let f = Finding {
            rule: Rule::R001,
            file: "a.rs".into(),
            line: 1,
            col: 1,
            message: "say \"hi\"".into(),
            excerpt: "x\ty".into(),
        };
        let j = f.render_json();
        assert!(j.contains(r#""rule":"R001""#));
        assert!(j.contains(r#"say \"hi\""#));
        assert!(j.contains(r"x\ty"));
    }
}
