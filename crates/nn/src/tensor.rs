//! Dense row-major float tensors.

use rand::Rng;
use rayon::prelude::*;

use crate::parallel;

/// Rows of the left operand processed per block; sized so a block of
/// output rows stays cache-resident while a `K_BLOCK`-row panel of the
/// right operand streams through.
const MM_ROW_BLOCK: usize = 8;
/// Depth (`k`) tile width for the blocked kernel.
const MM_K_BLOCK: usize = 128;
/// FLOP count (`2·m·k·n`) above which `matmul` fans out across threads.
const MM_PAR_FLOPS: usize = 1 << 17;

/// Blocked matmul over a contiguous band of output rows.
///
/// `a` holds the band's rows of the left operand (`rows × k`), `b` the full
/// right operand (`k × n`), `out` the band's output (`rows × n`, zeroed).
/// Every output element accumulates its `k` products in ascending-`k`
/// order — the same order as the textbook triple loop — so the blocked,
/// serial, and row-parallel paths all produce bit-identical results.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = out.len() / n;
    for i0 in (0..m).step_by(MM_ROW_BLOCK) {
        let i1 = (i0 + MM_ROW_BLOCK).min(m);
        for k0 in (0..k).step_by(MM_K_BLOCK) {
            let k1 = (k0 + MM_K_BLOCK).min(k);
            for i in i0..i1 {
                let a_row = &a[i * k + k0..i * k + k1];
                let o_row = &mut out[i * n..(i + 1) * n];
                // Unroll 4 depth steps per sweep of the output row: one
                // load/store of each output lane covers four products. The
                // adds into `acc` are issued strictly in ascending-`k`
                // order (four separate statements, never a re-associated
                // sum), so results stay bit-identical to the rolled loop.
                let mut p = 0;
                while p + 4 <= a_row.len() {
                    let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                    let b0 = &b[(k0 + p) * n..(k0 + p + 1) * n];
                    let b1 = &b[(k0 + p + 1) * n..(k0 + p + 2) * n];
                    let b2 = &b[(k0 + p + 2) * n..(k0 + p + 3) * n];
                    let b3 = &b[(k0 + p + 3) * n..(k0 + p + 4) * n];
                    for j in 0..n {
                        let mut acc = o_row[j];
                        acc += a0 * b0[j];
                        acc += a1 * b1[j];
                        acc += a2 * b2[j];
                        acc += a3 * b3[j];
                        o_row[j] = acc;
                    }
                    p += 4;
                }
                while p < a_row.len() {
                    let av = a_row[p];
                    let b_row = &b[(k0 + p) * n..(k0 + p + 1) * n];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                    p += 1;
                }
            }
        }
    }
}

/// A dense tensor of `f32` values with a row-major layout.
///
/// Rank is arbitrary, but the ops in this crate use rank 1 (vectors), rank 2
/// (matrices, `[rows, cols]`), and rank 3 (feature maps, `[channels, h, w]`).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension in {shape:?}");
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Creates a tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let mut t = Self::zeros(shape);
        t.data.fill(v);
        t
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not hold {} elements",
            data.len()
        );
        Self { shape: shape.to_vec(), data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { shape: vec![rows.len(), cols], data }
    }

    /// Xavier/Glorot-uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out).map(|_| rng.gen_range(-bound..bound)).collect();
        Self { shape: vec![fan_in, fan_out], data }
    }

    /// Uniform random tensor in `[-bound, bound]`.
    pub fn uniform<R: Rng>(rng: &mut R, shape: &[usize], bound: f32) -> Self {
        let mut t = Self::zeros(shape);
        for v in &mut t.data {
            *v = rng.gen_range(-bound..bound);
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no data (default-constructed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of rows (first dimension).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns (second dimension of a matrix).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() needs a matrix");
        self.shape[1]
    }

    /// Borrows matrix row `r`.
    ///
    /// # Panics
    ///
    /// Panics if not a matrix or `r` out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Matrix element accessor.
    ///
    /// # Panics
    ///
    /// Panics if not a matrix or out of range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols();
        assert!(r < self.rows() && c < cols);
        self.data[r * cols + c]
    }

    /// Returns a reshaped copy (same number of elements).
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    #[must_use]
    pub fn reshaped(&self, shape: &[usize]) -> Self {
        Self::from_vec(shape, self.data.clone())
    }

    /// Reshapes in place (same number of elements, no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "shape {shape:?} does not hold {} elements",
            self.data.len()
        );
        self.shape.clear();
        // rtt-lint: allow(P001, reason = "rank<=4 shape vec reuses capacity after the first call")
        self.shape.extend_from_slice(shape);
    }

    /// Reshapes in place to `shape` and fills every element with `v`,
    /// reusing the existing allocation when capacity allows. Equivalent to
    /// replacing `self` with [`Tensor::full`] but without reallocating —
    /// the primitive behind the inference arena's buffer recycling.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn reset(&mut self, shape: &[usize], v: f32) {
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension in {shape:?}");
        self.shape.clear();
        // rtt-lint: allow(P001, reason = "clear+extend/resize reuse capacity; growth is the arena warm-up, tallied on nn::infer_arena_bytes")
        self.shape.extend_from_slice(shape);
        self.data.clear();
        // rtt-lint: allow(P001, reason = "clear+resize reuses capacity; growth is the arena warm-up, tallied on nn::infer_arena_bytes")
        self.data.resize(self.shape.iter().product(), v);
    }

    /// Reshapes to `shape` without initializing elements when the volume
    /// already matches (the allocation and its contents are reused as-is).
    /// For kernels that overwrite every element before reading any — the
    /// flat gather/scatter/segment path — this skips [`Tensor::reset`]'s
    /// fill pass. When the volume changes, falls back to a zero fill so
    /// the buffer never exposes stale data at a new size.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized dimension.
    pub fn reset_for_overwrite(&mut self, shape: &[usize]) {
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension in {shape:?}");
        let vol = shape.iter().product::<usize>();
        self.shape.clear();
        // rtt-lint: allow(P001, reason = "clear+extend/resize reuse capacity; growth is the arena warm-up, tallied on nn::infer_arena_bytes")
        self.shape.extend_from_slice(shape);
        if self.data.len() != vol {
            self.data.clear();
            // rtt-lint: allow(P001, reason = "clear+resize reuses capacity; growth is the arena warm-up, tallied on nn::infer_arena_bytes")
            self.data.resize(vol, 0.0);
        }
    }

    /// Makes `self` an exact copy of `src`, reusing the existing
    /// allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Number of elements the backing allocation can hold without growing.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// Uses a cache-blocked kernel, splitting output rows across threads
    /// when the product is large enough to amortize the fan-out. Results
    /// are bit-identical across thread counts (each output element always
    /// accumulates in ascending-`k` order).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided output tensor,
    /// which is resized in place (reusing its allocation) — the hot path
    /// of the tape-free inference engine. Bit-identical to `matmul`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        self.matmul_view_into(self.rows(), self.cols(), other, out);
    }

    /// [`Tensor::matmul_into`] with `self` reinterpreted as an `[m, k]`
    /// matrix without copying — the shape-only view conv2d needs for its
    /// im2col product, where the `[Cout, Cin, kh, kw]` weight is already
    /// laid out as `[Cout, Cin·kh·kw]` row-major. Bit-identical to
    /// reshaping first (same kernel, same accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `m·k` differs from the element count or inner dimensions
    /// mismatch.
    pub fn matmul_view_into(&self, m: usize, k: usize, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            m * k,
            self.data.len(),
            "view [{m}, {k}] does not hold {} elements",
            self.data.len()
        );
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul {m}x{k} by {k2}x{n}");
        static MATMUL_CALLS: rtt_obs::Counter = rtt_obs::Counter::new("nn::matmul_calls");
        static MATMUL_FLOPS: rtt_obs::Counter = rtt_obs::Counter::new("nn::matmul_flops");
        MATMUL_CALLS.add(1);
        MATMUL_FLOPS.add(2 * (m * k * n) as u64);
        out.reset(&[m, n], 0.0);
        if m > 1 && parallel::should_parallelize(2 * m * k * n, MM_PAR_FLOPS) {
            let band = m.div_ceil(parallel::num_threads()).max(1);
            out.data.par_chunks_mut(band * n).enumerate().for_each(|(ci, chunk)| {
                let r0 = ci * band;
                let rows = chunk.len() / n;
                matmul_rows(&self.data[r0 * k..(r0 + rows) * k], &other.data, chunk, k, n);
            });
        } else {
            matmul_rows(&self.data, &other.data, &mut out.data, k, n);
        }
    }

    /// Matrix product specialized for a left operand known to be mostly
    /// zeros (one-hot selections, binary masks): rows are scanned and zero
    /// entries skip their whole `b`-row term. On dense inputs this branchy
    /// loop is much slower than [`Tensor::matmul`] — call it only when the
    /// caller can prove sparsity structurally.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    #[must_use]
    pub fn matmul_zero_skip(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul {m}x{k} by {k2}x{n}");
        let mut out = Tensor::zeros(&[m, n]);
        let mut nonzeros = 0u64;
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                // Bit test for ±0.0 (shift drops the sign bit) — exactly the
                // values whose products contribute nothing.
                if a.to_bits() << 1 == 0 {
                    continue;
                }
                nonzeros += 1;
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        static ZS_CALLS: rtt_obs::Counter = rtt_obs::Counter::new("nn::zero_skip_calls");
        static ZS_ENTRIES: rtt_obs::Counter = rtt_obs::Counter::new("nn::zero_skip_entries");
        static ZS_NONZEROS: rtt_obs::Counter = rtt_obs::Counter::new("nn::zero_skip_nonzeros");
        ZS_CALLS.add(1);
        ZS_ENTRIES.add((m * k) as u64);
        ZS_NONZEROS.add(nonzeros);
        out
    }

    /// Transposed copy of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// In-place `self += other` (same shape).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.at(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.sum(), 10.0);
    }

    #[test]
    fn matmul_matches_hand_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Tensor::xavier(&mut rng, 8, 8);
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_checks_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    proptest! {
        #[test]
        fn matmul_identity(n in 1usize..6, seed in 0u64..100) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::uniform(&mut rng, &[n, n], 1.0);
            let mut eye = Tensor::zeros(&[n, n]);
            for i in 0..n { eye.data_mut()[i * n + i] = 1.0; }
            let prod = a.matmul(&eye);
            for (x, y) in prod.data().iter().zip(a.data()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        #[test]
        fn transpose_swaps_matmul(
            m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..50
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::uniform(&mut rng, &[m, k], 1.0);
            let b = Tensor::uniform(&mut rng, &[k, n], 1.0);
            let left = a.matmul(&b).transposed();
            let right = b.transposed().matmul(&a.transposed());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
