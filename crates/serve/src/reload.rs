//! Model hot-swap behind an `Arc` generation pointer.
//!
//! Workers never hold a lock across inference: they grab the current
//! [`ModelState`] `Arc` once per request (one `RwLock` read + `Arc`
//! clone) and run on that snapshot even if a reload lands mid-request.
//! A reload parses and validates the **entire** candidate — container
//! checksum, config compatibility, weight shapes — before the pointer
//! moves, so a truncated, bit-flipped, or mismatched file can never
//! leave the daemon in a partial state: the old model keeps serving and
//! the typed error surfaces on `/stats`.

use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

use rtt_core::model_io::{self, ModelIoError};
use rtt_core::TimingModel;

/// An immutable model snapshot plus its reload generation.
#[derive(Debug)]
pub struct ModelState {
    /// The model serving this generation.
    pub model: TimingModel,
    /// Monotonic reload counter; generation 1 is the boot model.
    pub generation: u64,
}

/// Why a hot-reload was refused (the old model keeps serving).
#[derive(Debug, PartialEq)]
pub enum ReloadError {
    /// The candidate file failed container validation.
    Parse(ModelIoError),
    /// The candidate parsed but its config differs from the serving
    /// config. Prepared designs bake in the serving config's mask grid,
    /// so a config change requires a restart, not a hot swap.
    ConfigMismatch,
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "model file rejected: {e}"),
            Self::ConfigMismatch => {
                f.write_str("model config differs from serving config; restart to change configs")
            }
        }
    }
}

impl std::error::Error for ReloadError {}

/// The swap point: one `RwLock<Arc<..>>` shared by every worker.
#[derive(Debug)]
pub struct ModelSwap {
    state: RwLock<Arc<ModelState>>,
}

impl ModelSwap {
    /// Wraps the boot model as generation 1.
    pub fn new(model: TimingModel) -> Self {
        Self { state: RwLock::new(Arc::new(ModelState { model, generation: 1 })) }
    }

    /// The current snapshot. Cheap: a read lock and an `Arc` clone.
    pub fn current(&self) -> Arc<ModelState> {
        Arc::clone(&self.state.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Validates `bytes` as a complete model container and, on success,
    /// atomically swaps it in, returning the new generation. On any
    /// error the serving model is untouched.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<u64, ReloadError> {
        let candidate = model_io::load_model(bytes).map_err(ReloadError::Parse)?;
        let mut slot = self.state.write().unwrap_or_else(PoisonError::into_inner);
        if candidate.config() != slot.model.config() {
            return Err(ReloadError::ConfigMismatch);
        }
        let generation = slot.generation + 1;
        *slot = Arc::new(ModelState { model: candidate, generation });
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_core::ModelConfig;

    #[test]
    fn good_reload_bumps_generation() {
        let cfg = ModelConfig::tiny();
        let swap = ModelSwap::new(TimingModel::new(cfg.clone()));
        assert_eq!(swap.current().generation, 1);
        let candidate = TimingModel::new(cfg);
        let gen = swap
            .reload_from_bytes(&model_io::save_model(&candidate))
            .expect("compatible model reloads");
        assert_eq!(gen, 2);
        assert_eq!(swap.current().generation, 2);
    }

    #[test]
    fn corrupt_bytes_keep_the_old_model() {
        let swap = ModelSwap::new(TimingModel::new(ModelConfig::tiny()));
        let before = swap.current();
        let mut bytes = model_io::save_model(&before.model);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = swap.reload_from_bytes(&bytes).expect_err("corrupt file must be refused");
        assert!(matches!(err, ReloadError::Parse(_)), "{err}");
        let after = swap.current();
        assert_eq!(after.generation, 1, "generation unchanged");
        assert!(Arc::ptr_eq(&before, &after), "same Arc keeps serving");

        bytes.truncate(7);
        let err = swap.reload_from_bytes(&bytes).expect_err("truncated file must be refused");
        assert!(matches!(err, ReloadError::Parse(_)), "{err}");
        assert_eq!(swap.current().generation, 1);
    }

    #[test]
    fn config_mismatch_is_refused() {
        let cfg = ModelConfig::tiny();
        let swap = ModelSwap::new(TimingModel::new(cfg.clone()));
        let bigger = ModelConfig { embed_dim: cfg.embed_dim * 2, ..cfg };
        let candidate = TimingModel::new(bigger);
        let err = swap
            .reload_from_bytes(&model_io::save_model(&candidate))
            .expect_err("config change must not hot-swap");
        assert_eq!(err, ReloadError::ConfigMismatch);
        assert_eq!(swap.current().generation, 1);
    }
}
