//! Reimplementations of the paper's three baselines on shared substrates.
//!
//! The paper compares against three local-view pre-routing timing
//! evaluators, adapted to the restructuring scenario by training them
//! *semi-supervised* on the nets/cells/pins that survive optimization:
//!
//! * **DAC19** (Barboza et al.) — a two-stage method: an MLP on handcrafted
//!   local features predicts per-stage (driver cell + net) delays, then a
//!   PERT traversal assembles endpoint arrival times.
//! * **DAC22-he** (He et al.) — two-stage with a *look-ahead RC network*:
//!   the wire feature is an Elmore delay on an estimated (detour-free)
//!   routing topology rather than a raw Manhattan distance.
//! * **DAC22-guo** (Guo et al.) — an end-to-end GNN that propagates
//!   embeddings in topological order and is supervised on endpoint arrival
//!   *plus* auxiliary local labels (net delay, cell delay, pin arrival).
//!
//! All three expose the same interface: train on [`BaselineInputs`] of
//! several designs, then predict local stage delays (left columns of
//! Table II) and endpoint arrivals (right columns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod guo;
mod inputs;
mod two_stage;

pub use guo::{GuoConfig, GuoModel};
pub use inputs::BaselineInputs;
pub use two_stage::{TwoStageKind, TwoStageModel};
