//! Structural diff between a netlist and its optimized version.
//!
//! Because ids are stable under tombstoning, the replacement statistics of
//! the paper's Table I are exact set operations:
//!
//! * a **net edge** `(driver, sink)` of the input netlist is *replaced* if
//!   the sink is no longer directly driven by that driver in the optimized
//!   netlist (buffer insertion, driver change, net removal, pin death);
//! * a **cell edge** is *replaced* if its cell was removed (decomposition,
//!   bypass, dead-logic sweep). Gate sizing keeps the cell alive and is
//!   *not* a replacement — matching the paper, which measures sizing churn
//!   as Δdelay on unreplaced cells.

use rtt_netlist::{CellLibrary, Netlist, PinId};

/// Replacement statistics between an input netlist and its optimized form.
#[derive(Clone, Debug, Default)]
pub struct NetlistDiff {
    /// Net edges in the input netlist.
    pub total_net_edges: usize,
    /// Input net edges no longer present after optimization.
    pub replaced_net_edges: usize,
    /// Cell edges (combinational input→output arcs) in the input netlist.
    pub total_cell_edges: usize,
    /// Input cell edges whose cell was removed.
    pub replaced_cell_edges: usize,
    surviving_net: Vec<(PinId, PinId)>,
    surviving_cell: Vec<(PinId, PinId)>,
}

impl NetlistDiff {
    /// Fraction of input net edges replaced (Table I `#replaced`, nets).
    pub fn net_replaced_fraction(&self) -> f64 {
        fraction(self.replaced_net_edges, self.total_net_edges)
    }

    /// Fraction of input cell edges replaced (Table I `#replaced`, cells).
    pub fn cell_replaced_fraction(&self) -> f64 {
        fraction(self.replaced_cell_edges, self.total_cell_edges)
    }

    /// Input net edges `(driver, sink)` that survived unchanged.
    ///
    /// Ordering is **deterministic and documented**: edges appear in the
    /// `before` netlist's net-id order, and within a net in its
    /// `sinks` order — the same order [`diff_netlists`] scanned them.
    /// Dirty-set seeding iterates this slice, so the order is pinned by
    /// test (`surviving_edge_order_is_deterministic`); changing it would
    /// reintroduce a D001-class nondeterminism into downstream consumers.
    pub fn surviving_net_edges(&self) -> &[(PinId, PinId)] {
        &self.surviving_net
    }

    /// Input cell edges `(input, output)` whose cell survived.
    ///
    /// Ordering is **deterministic and documented**: the `before`
    /// netlist's cell-id order (sequential cells skipped), and within a
    /// cell its `inputs` order. Pinned by the same determinism test as
    /// [`Self::surviving_net_edges`].
    pub fn surviving_cell_edges(&self) -> &[(PinId, PinId)] {
        &self.surviving_cell
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Diffs `before` (pre-optimization input) against `after` (optimized).
///
/// Both netlists must share an id space, i.e. `after` must have been
/// produced by mutating a clone of `before`.
pub fn diff_netlists(before: &Netlist, after: &Netlist, library: &CellLibrary) -> NetlistDiff {
    let mut diff = NetlistDiff::default();

    for (_, net) in before.nets() {
        let driver = net.driver;
        for &sink in &net.sinks {
            diff.total_net_edges += 1;
            let survives = sink.index() < after.pin_capacity()
                && after.pin(sink).is_alive()
                && after.pin(driver).is_alive()
                && after
                    .pin(sink)
                    .net
                    .is_some_and(|n| after.net(n).is_alive() && after.net(n).driver == driver);
            if survives {
                diff.surviving_net.push((driver, sink));
            } else {
                diff.replaced_net_edges += 1;
            }
        }
    }

    for (cid, cell) in before.cells() {
        if library.cell_type(cell.type_id).is_sequential() {
            continue; // sequential arcs are cut from the timing graph
        }
        let survives = after.cell(cid).is_alive();
        for &input in &cell.inputs {
            diff.total_cell_edges += 1;
            if survives {
                diff.surviving_cell.push((input, cell.output));
            } else {
                diff.replaced_cell_edges += 1;
            }
        }
    }
    diff
}

/// Seeds an incremental-inference dirty set: every pin of `after` whose
/// *gather topology* — the set or order of graph edges feeding its node —
/// may differ from `before`'s. This is the caller-side half of the
/// `rtt_core::IncrementalCtx` contract (the context itself detects
/// feature-level and node-kind changes); the union of per-step seeds
/// stays sound across a chain of transforms because any edge whose
/// composed state changed was changed by *some* step, and that step
/// seeds its sink.
///
/// Three rules, each over a documented deterministic scan order:
/// 1. every pin (inputs and output) of an `after` cell that is new or
///    retyped — its cell arcs did not exist, or its arity/kind changed;
/// 2. the sink of every `after` net edge `(driver, sink)` that was not
///    present identically in `before` — the sink's driver gather
///    changed;
/// 3. the sink of every `before` net edge that did not survive but whose
///    sink pin is still alive in `after` — it may have lost its driver
///    entirely (a `NetSink` node turning into a `Source`).
///
/// The result is sorted by pin index and deduplicated, so it is a
/// deterministic function of the two netlists.
///
/// Both netlists must share an id space (`after` produced by mutating a
/// clone of `before`), exactly as for [`diff_netlists`].
pub fn dirty_seed_pins(before: &Netlist, after: &Netlist) -> Vec<PinId> {
    let mut seeds: Vec<PinId> = Vec::new();

    // Rule 1: new or retyped cells dirty all their pins.
    for (cid, cell) in after.cells() {
        let fresh = cid.index() >= before.cell_capacity()
            || !before.cell(cid).is_alive()
            || before.cell(cid).type_id != cell.type_id;
        if fresh {
            seeds.extend(cell.inputs.iter().copied());
            seeds.push(cell.output);
        }
    }

    // Rule 2: net edges of `after` that `before` did not have.
    for (_, net) in after.nets() {
        let driver = net.driver;
        for &sink in &net.sinks {
            let existed = sink.index() < before.pin_capacity()
                && before.pin(sink).is_alive()
                && driver.index() < before.pin_capacity()
                && before.pin(driver).is_alive()
                && before
                    .pin(sink)
                    .net
                    .is_some_and(|n| before.net(n).is_alive() && before.net(n).driver == driver);
            if !existed {
                seeds.push(sink);
            }
        }
    }

    // Rule 3: `before` net edges that vanished while their sink lives on.
    for (_, net) in before.nets() {
        let driver = net.driver;
        for &sink in &net.sinks {
            let survives = sink.index() < after.pin_capacity()
                && after.pin(sink).is_alive()
                && after.pin(driver).is_alive()
                && after
                    .pin(sink)
                    .net
                    .is_some_and(|n| after.net(n).is_alive() && after.net(n).driver == driver);
            if !survives && sink.index() < after.pin_capacity() && after.pin(sink).is_alive() {
                seeds.push(sink);
            }
        }
    }

    seeds.sort_by_key(|p| p.index());
    seeds.dedup();
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transforms::{bypass_repeater, insert_buffer, prune_dangling};
    use rtt_circgen::ripple_carry_adder;
    use rtt_netlist::{CellLibrary, GateFn};
    use rtt_place::{place, PlaceConfig, Point};

    #[test]
    fn identity_diff_replaces_nothing() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let d = diff_netlists(&nl, &nl, &lib);
        assert_eq!(d.replaced_net_edges, 0);
        assert_eq!(d.replaced_cell_edges, 0);
        assert!(d.total_net_edges > 0);
        assert!(d.total_cell_edges > 0);
        assert_eq!(d.net_replaced_fraction(), 0.0);
        assert_eq!(d.surviving_net_edges().len(), d.total_net_edges);
    }

    #[test]
    fn buffer_insertion_replaces_exactly_one_net_edge() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let mut pl = place(&after, &lib, 0, &PlaceConfig::default());
        let (net, sink) = {
            let (nid, n) = after.nets().find(|(_, n)| n.sinks.len() == 1).unwrap();
            (nid, n.sinks[0])
        };
        insert_buffer(&mut after, &mut pl, &lib, net, sink, Point::new(0.5, 0.5)).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        assert_eq!(d.replaced_net_edges, 1);
        assert_eq!(d.replaced_cell_edges, 0);
    }

    #[test]
    fn bypass_replaces_cell_edges_and_net_edges() {
        let lib = CellLibrary::asap7_like();
        let mut before = rtt_netlist::Netlist::new("b");
        let a = before.add_input_port("a");
        let buf = lib.pick(GateFn::Buf, 1).unwrap();
        let (c, o) = before.add_cell("u", buf, &lib);
        let i = before.cell(c).inputs[0];
        before.connect_net("ni", a, &[i]).unwrap();
        let y = before.add_output_port("y");
        before.connect_net("no", o, &[y]).unwrap();

        let mut after = before.clone();
        bypass_repeater(&mut after, &lib, c).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        // Edges a->i and o->y are both gone; the buffer cell edge is gone.
        assert_eq!(d.replaced_net_edges, 2);
        assert_eq!(d.replaced_cell_edges, 1);
        assert_eq!(d.cell_replaced_fraction(), 1.0);
    }

    #[test]
    fn resize_is_not_a_replacement() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let (cid, cell) = after
            .cells()
            .find(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(id, c)| (id, c.clone()))
            .unwrap();
        let up = lib.pick(lib.cell_type(cell.type_id).gate, 8).unwrap();
        after.resize_cell(cid, up, &lib).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        assert_eq!(d.replaced_net_edges, 0);
        assert_eq!(d.replaced_cell_edges, 0);
    }

    #[test]
    fn surviving_edge_order_is_deterministic() {
        // Pins the documented ordering contract of `surviving_net_edges`
        // / `surviving_cell_edges`: before-id scan order, exactly as a
        // manual rescan reproduces it. Dirty-seed iteration depends on
        // this staying stable (D001-class nondeterminism guard).
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let mut pl = place(&after, &lib, 0, &PlaceConfig::default());
        let (net, sink) = {
            let (nid, n) = after.nets().find(|(_, n)| n.sinks.len() == 1).unwrap();
            (nid, n.sinks[0])
        };
        insert_buffer(&mut after, &mut pl, &lib, net, sink, Point::new(0.5, 0.5)).unwrap();

        let d1 = diff_netlists(&before, &after, &lib);
        let d2 = diff_netlists(&before, &after, &lib);
        assert_eq!(d1.surviving_net_edges(), d2.surviving_net_edges());
        assert_eq!(d1.surviving_cell_edges(), d2.surviving_cell_edges());

        // Reconstruct the documented order by hand and demand equality.
        let mut expect_net = Vec::new();
        for (_, n) in before.nets() {
            for &s in &n.sinks {
                let survives = after.pin(s).is_alive()
                    && after.pin(n.driver).is_alive()
                    && after.pin(s).net.is_some_and(|m| {
                        after.net(m).is_alive() && after.net(m).driver == n.driver
                    });
                if survives {
                    expect_net.push((n.driver, s));
                }
            }
        }
        assert_eq!(d1.surviving_net_edges(), expect_net.as_slice());
        let mut expect_cell = Vec::new();
        for (cid, c) in before.cells() {
            if lib.cell_type(c.type_id).is_sequential() || !after.cell(cid).is_alive() {
                continue;
            }
            for &i in &c.inputs {
                expect_cell.push((i, c.output));
            }
        }
        assert_eq!(d1.surviving_cell_edges(), expect_cell.as_slice());
    }

    #[test]
    fn replaced_fractions_are_bounded_and_consistent() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let mut pl = place(&after, &lib, 0, &PlaceConfig::default());
        let targets: Vec<_> = after
            .nets()
            .filter(|(_, n)| n.sinks.len() == 1)
            .take(3)
            .map(|(nid, n)| (nid, n.sinks[0]))
            .collect();
        for (net, sink) in targets {
            insert_buffer(&mut after, &mut pl, &lib, net, sink, Point::new(0.5, 0.5)).unwrap();
        }
        let d = diff_netlists(&before, &after, &lib);
        assert!((0.0..=1.0).contains(&d.net_replaced_fraction()));
        assert!((0.0..=1.0).contains(&d.cell_replaced_fraction()));
        assert_eq!(d.surviving_net_edges().len() + d.replaced_net_edges, d.total_net_edges);
        assert_eq!(d.surviving_cell_edges().len() + d.replaced_cell_edges, d.total_cell_edges);
        assert_eq!(d.replaced_net_edges, 3);
    }

    #[test]
    fn dirty_seed_pins_identity_is_empty() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        assert!(dirty_seed_pins(&nl, &nl).is_empty());
    }

    #[test]
    fn dirty_seed_pins_cover_buffer_insertion_cone_entry() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let mut pl = place(&after, &lib, 0, &PlaceConfig::default());
        let (net, sink) = {
            let (nid, n) = after.nets().find(|(_, n)| n.sinks.len() == 1).unwrap();
            (nid, n.sinks[0])
        };
        insert_buffer(&mut after, &mut pl, &lib, net, sink, Point::new(0.5, 0.5)).unwrap();
        let seeds = dirty_seed_pins(&before, &after);
        // The moved sink (its driver changed) plus the buffer's two pins.
        assert!(seeds.contains(&sink), "re-driven sink must be seeded");
        assert_eq!(seeds.len(), 3, "sink + new buffer input + output: {seeds:?}");
        let sorted_ok = seeds.windows(2).all(|w| w[0].index() < w[1].index());
        assert!(sorted_ok, "seed order must be sorted and deduplicated");
    }

    #[test]
    fn dirty_seed_pins_cover_bypass() {
        let lib = CellLibrary::asap7_like();
        let mut before = rtt_netlist::Netlist::new("b");
        let a = before.add_input_port("a");
        let buf = lib.pick(GateFn::Buf, 1).unwrap();
        let (c, o) = before.add_cell("u", buf, &lib);
        let i = before.cell(c).inputs[0];
        before.connect_net("ni", a, &[i]).unwrap();
        let y = before.add_output_port("y");
        before.connect_net("no", o, &[y]).unwrap();

        let mut after = before.clone();
        bypass_repeater(&mut after, &lib, c).unwrap();
        // Only `y` survives with a changed driver; the buffer's pins are
        // dead and must not be seeded.
        assert_eq!(dirty_seed_pins(&before, &after), vec![y]);
    }

    #[test]
    fn pruning_dead_logic_seeds_nothing() {
        // A transform that touches zero timing-relevant pins: removing a
        // cell whose output drives nothing. Every surviving pin keeps its
        // driver and features, so the dirty set is empty and an
        // incremental predict can reuse its cache in full.
        let lib = CellLibrary::asap7_like();
        let mut before = rtt_netlist::Netlist::new("p");
        let a = before.add_input_port("a");
        let y = before.add_output_port("y");
        let buf = lib.pick(GateFn::Buf, 1).unwrap();
        let (live, live_o) = before.add_cell("keep", buf, &lib);
        let live_i = before.cell(live).inputs[0];
        let (dead, _) = before.add_cell("dangle", buf, &lib);
        let dead_i = before.cell(dead).inputs[0];
        before.connect_net("ni", a, &[live_i, dead_i]).unwrap();
        before.connect_net("no", live_o, &[y]).unwrap();

        let mut after = before.clone();
        let removed = prune_dangling(&mut after, &lib);
        assert_eq!(removed, 1, "the dangling buffer must be pruned");
        assert!(after.validate().is_ok());
        assert_eq!(dirty_seed_pins(&before, &after), Vec::new());
    }

    #[test]
    fn sequential_cells_do_not_count_as_cell_edges() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(2, &lib);
        let d = diff_netlists(&nl, &nl, &lib);
        let comb_inputs: usize = nl
            .cells()
            .filter(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(_, c)| c.inputs.len())
            .sum();
        assert_eq!(d.total_cell_edges, comb_inputs);
    }
}
