//! The paper's experiments: Tables I–III and the design-choice ablations.

use std::time::Instant;

use rtt_baselines::{GuoConfig, GuoModel, TwoStageKind, TwoStageModel};
use rtt_circgen::TRAIN_DESIGNS;
use rtt_core::{Aggregation, ModelConfig, ModelVariant, TimingModel, TrainConfig};

use crate::{r2_score, Dataset, DesignData};

// ---------------------------------------------------------------- Table I

/// One row of Table I: input statistics and optimization impact.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Design name.
    pub name: String,
    /// `true` for the training split.
    pub train: bool,
    /// Live pins in the input design.
    pub pins: usize,
    /// Timing endpoints.
    pub endpoints: usize,
    /// Net edges in the input graph.
    pub net_edges: usize,
    /// Cell edges in the input graph.
    pub cell_edges: usize,
    /// Relative WNS change between flows with/without optimization.
    pub d_wns: f64,
    /// Relative TNS change between flows with/without optimization.
    pub d_tns: f64,
    /// Fraction of input net edges replaced.
    pub net_replaced: f64,
    /// Mean relative delay change on unreplaced net edges.
    pub net_d_delay: f64,
    /// Fraction of input cell edges replaced.
    pub cell_replaced: f64,
    /// Mean relative delay change on unreplaced cell edges.
    pub cell_d_delay: f64,
}

fn relative_change(after: f32, before: f32) -> f64 {
    let denom = before.abs().max(1e-3);
    f64::from((after - before).abs() / denom)
}

/// Mean relative delay churn over surviving edges between the two flows.
fn delay_churn(
    design: &DesignData,
    edges: &[(rtt_netlist::PinId, rtt_netlist::PinId)],
    lookup: impl Fn(&rtt_sta::StaReport, rtt_netlist::PinId, rtt_netlist::PinId) -> Option<f32>,
) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for &(a, b) in edges {
        let (Some(with), Some(without)) =
            (lookup(&design.signoff, a, b), lookup(&design.no_opt, a, b))
        else {
            continue;
        };
        total += f64::from((with - without).abs() / without.abs().max(0.5));
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Computes Table I for every design of the dataset.
pub fn table1(dataset: &Dataset) -> Vec<Table1Row> {
    dataset
        .designs
        .iter()
        .map(|d| Table1Row {
            name: d.name.clone(),
            train: TRAIN_DESIGNS.contains(&d.name.as_str()),
            pins: d.input_netlist.num_pins(),
            endpoints: d.input_graph.endpoints().len(),
            net_edges: d.input_graph.num_net_edges(),
            cell_edges: d.input_graph.num_cell_edges(),
            d_wns: relative_change(d.signoff.wns, d.no_opt.wns),
            d_tns: relative_change(d.signoff.tns, d.no_opt.tns),
            net_replaced: d.diff.net_replaced_fraction(),
            net_d_delay: delay_churn(d, d.diff.surviving_net_edges(), |r, a, b| {
                r.net_edge_delay(a, b)
            }),
            cell_replaced: d.diff.cell_replaced_fraction(),
            cell_d_delay: delay_churn(d, d.diff.surviving_cell_edges(), |r, a, b| {
                r.cell_edge_delay(a, b)
            }),
        })
        .collect()
}

/// Renders Table I as markdown.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "| design | split | #pin | #edp | #e_n | #e_c | Δwns | Δtns | net #repl | net Δdelay | cell #repl | cell Δdelay |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |\n",
            r.name,
            if r.train { "train" } else { "test" },
            r.pins,
            r.endpoints,
            r.net_edges,
            r.cell_edges,
            r.d_wns * 100.0,
            r.d_tns * 100.0,
            r.net_replaced * 100.0,
            r.net_d_delay * 100.0,
            r.cell_replaced * 100.0,
            r.cell_d_delay * 100.0,
        ));
    }
    out
}

// --------------------------------------------------------------- Table II

/// Configuration of the Table II experiment.
#[derive(Clone, Debug)]
pub struct Table2Config {
    /// Architecture of our model (all three variants share it).
    pub model: ModelConfig,
    /// Training schedule of our model.
    pub train: TrainConfig,
    /// Epochs for the two-stage baselines.
    pub two_stage_epochs: usize,
    /// Epochs for the Guo baseline.
    pub guo_epochs: usize,
    /// Learning rate for the baselines.
    pub baseline_lr: f32,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            model: ModelConfig::small(),
            train: TrainConfig::default(),
            two_stage_epochs: 400,
            guo_epochs: 40,
            baseline_lr: 2e-3,
        }
    }
}

/// One row of Table II (a test benchmark).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// DAC19 local stage-delay R².
    pub dac19_local: f32,
    /// DAC22-he local stage-delay R².
    pub he_local: f32,
    /// DAC22-guo local net-delay R².
    pub guo_local_net: f32,
    /// DAC22-guo local cell-delay R².
    pub guo_local_cell: f32,
    /// DAC19 endpoint-arrival R².
    pub dac19_ep: f32,
    /// DAC22-he endpoint-arrival R².
    pub he_ep: f32,
    /// DAC22-guo endpoint-arrival R².
    pub guo_ep: f32,
    /// Our CNN-only endpoint R².
    pub cnn_only: f32,
    /// Our GNN-only endpoint R².
    pub gnn_only: f32,
    /// Our full model endpoint R².
    pub full: f32,
}

/// Owned per-design label bundles feeding [`rtt_baselines::BaselineInputs`].
struct Labels {
    nets: std::collections::HashMap<(rtt_netlist::PinId, rtt_netlist::PinId), f32>,
    cells: std::collections::HashMap<(rtt_netlist::PinId, rtt_netlist::PinId), f32>,
    arrivals: std::collections::HashMap<rtt_netlist::PinId, f32>,
    endpoints: Vec<f32>,
}

impl Labels {
    fn of(d: &DesignData) -> Self {
        Self {
            nets: d.surviving_net_delays(),
            cells: d.surviving_cell_delays(),
            arrivals: d.surviving_arrivals(),
            endpoints: d.endpoint_targets(),
        }
    }
}

fn r2_pairs(pairs: &[(f32, f32)]) -> f32 {
    let (pred, truth): (Vec<f32>, Vec<f32>) = pairs.iter().copied().unzip();
    r2_score(&pred, &truth)
}

/// Runs the full Table II experiment: trains every method on the training
/// designs and evaluates on the held-out designs.
pub fn table2(dataset: &Dataset, config: &Table2Config) -> Vec<Table2Row> {
    let lib = &dataset.library;
    let train: Vec<&DesignData> = dataset.train_designs();
    let test: Vec<&DesignData> = dataset.test_designs();
    let train_labels: Vec<Labels> = train.iter().map(|d| Labels::of(d)).collect();
    let test_labels: Vec<Labels> = test.iter().map(|d| Labels::of(d)).collect();

    let train_inputs: Vec<rtt_baselines::BaselineInputs<'_>> = train
        .iter()
        .zip(&train_labels)
        .map(|(d, l)| d.baseline_inputs(lib, &l.nets, &l.cells, &l.arrivals, &l.endpoints))
        .collect();
    let train_refs: Vec<&rtt_baselines::BaselineInputs<'_>> = train_inputs.iter().collect();

    // Baselines.
    let mut dac19 = TwoStageModel::new(TwoStageKind::Dac19, 1);
    dac19.train(&train_refs, config.two_stage_epochs, config.baseline_lr);
    let mut he = TwoStageModel::new(TwoStageKind::Dac22He, 2);
    he.train(&train_refs, config.two_stage_epochs, config.baseline_lr);
    let mut guo = GuoModel::new(GuoConfig {
        embed_dim: config.model.embed_dim,
        hidden: config.model.gnn_hidden,
        ..GuoConfig::default()
    });
    guo.train(&train_refs, config.guo_epochs, config.baseline_lr);

    // Our three variants.
    let train_prepared: Vec<rtt_core::PreparedDesign> =
        train.iter().map(|d| d.prepared(lib, &config.model)).collect();
    let mut variants = Vec::new();
    for variant in [ModelVariant::CnnOnly, ModelVariant::GnnOnly, ModelVariant::Full] {
        let mut model = TimingModel::new(config.model.clone().with_variant(variant));
        model.train(&train_prepared, &config.train);
        variants.push(model);
    }

    // Evaluation on the held-out designs.
    test.iter()
        .zip(&test_labels)
        .map(|(d, l)| {
            let inputs = d.baseline_inputs(lib, &l.nets, &l.cells, &l.arrivals, &l.endpoints);
            let truth = &l.endpoints;

            let (guo_net_pairs, guo_cell_pairs) = guo.local_eval(&inputs);
            let our: Vec<f32> = variants
                .iter()
                .map(|m| {
                    let prep = d.prepared(lib, m.config());
                    r2_score(&m.predict(&prep), truth)
                })
                .collect();

            Table2Row {
                benchmark: d.name.clone(),
                dac19_local: r2_pairs(&dac19.local_eval(&inputs)),
                he_local: r2_pairs(&he.local_eval(&inputs)),
                guo_local_net: r2_pairs(&guo_net_pairs),
                guo_local_cell: r2_pairs(&guo_cell_pairs),
                dac19_ep: r2_score(&dac19.predict_endpoints(&inputs), truth),
                he_ep: r2_score(&he.predict_endpoints(&inputs), truth),
                guo_ep: r2_score(&guo.predict_endpoints(&inputs), truth),
                cnn_only: our[0],
                gnn_only: our[1],
                full: our[2],
            }
        })
        .collect()
}

/// Column-wise average row for Table II.
pub fn table2_average(rows: &[Table2Row]) -> Table2Row {
    let n = rows.len().max(1) as f32;
    let avg = |f: fn(&Table2Row) -> f32| rows.iter().map(f).sum::<f32>() / n;
    Table2Row {
        benchmark: "avg".to_owned(),
        dac19_local: avg(|r| r.dac19_local),
        he_local: avg(|r| r.he_local),
        guo_local_net: avg(|r| r.guo_local_net),
        guo_local_cell: avg(|r| r.guo_local_cell),
        dac19_ep: avg(|r| r.dac19_ep),
        he_ep: avg(|r| r.he_ep),
        guo_ep: avg(|r| r.guo_ep),
        cnn_only: avg(|r| r.cnn_only),
        gnn_only: avg(|r| r.gnn_only),
        full: avg(|r| r.full),
    }
}

/// Renders Table II as markdown (local columns left, endpoint columns
/// right, as in the paper).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "| benchmark | DAC19 loc | DAC22-he loc | DAC22-guo loc (net/cell) | DAC19 ep | DAC22-he ep | DAC22-guo ep | CNN-only | GNN-only | full |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.4} | {:.4} | {:.4} / {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | **{:.4}** |\n",
            r.benchmark,
            r.dac19_local,
            r.he_local,
            r.guo_local_net,
            r.guo_local_cell,
            r.dac19_ep,
            r.he_ep,
            r.guo_ep,
            r.cnn_only,
            r.gnn_only,
            r.full,
        ));
    }
    out
}

// -------------------------------------------------------------- Table III

/// One row of Table III: runtime comparison.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Design name.
    pub design: String,
    /// Optimization seconds ("commercial" flow).
    pub opt_s: f64,
    /// Routing seconds.
    pub route_s: f64,
    /// Sign-off STA seconds.
    pub sta_s: f64,
    /// Total flow seconds.
    pub total_s: f64,
    /// Our preprocessing seconds (graph, levels, masks, maps).
    pub pre_s: f64,
    /// Our inference seconds.
    pub infer_s: f64,
    /// Speedup of ours over the flow.
    pub speedup: f64,
}

/// Measures the runtime comparison of Table III on every design.
///
/// The model's weights do not affect inference cost, so a freshly
/// initialized model of the given architecture is used. Inference runs
/// the production predict path — the tape-free [`rtt_nn::InferCtx`]
/// backend — so the `infer (s)` column pays no autodiff bookkeeping and
/// reuses one buffer arena across endpoint chunks.
pub fn table3(dataset: &Dataset, model_config: &ModelConfig) -> Vec<Table3Row> {
    let model = TimingModel::new(model_config.clone());
    dataset
        .designs
        .iter()
        .map(|d| {
            // rtt-lint: allow(D002, reason = "Table III reports measured runtimes")
            let t0 = Instant::now();
            let prep = d.prepared(&dataset.library, model_config);
            let pre_s = t0.elapsed().as_secs_f64();
            // rtt-lint: allow(D002, reason = "Table III reports measured runtimes")
            let t1 = Instant::now();
            let _ = model.predict(&prep);
            let infer_s = t1.elapsed().as_secs_f64();
            let ours = (pre_s + infer_s).max(1e-9);
            Table3Row {
                design: d.name.clone(),
                opt_s: d.timings.opt_s,
                route_s: d.timings.route_s,
                sta_s: d.timings.sta_s,
                total_s: d.timings.total_s(),
                pre_s,
                infer_s,
                speedup: d.timings.total_s() / ours,
            }
        })
        .collect()
}

/// Renders Table III as markdown.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "| design | opt (s) | route (s) | sta (s) | total (s) | pre (s) | infer (s) | ours (s) | speedup |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.4} | {:.4} | {:.4} | {:.0}× |\n",
            r.design,
            r.opt_s,
            r.route_s,
            r.sta_s,
            r.total_s,
            r.pre_s,
            r.infer_s,
            r.pre_s + r.infer_s,
            r.speedup,
        ));
    }
    out
}

// -------------------------------------------------------------- Ablations

/// One ablation result: a model variant and its average test R².
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Average endpoint R² over the test designs.
    pub avg_test_r2: f32,
}

/// Runs the A2 design-choice ablations: max vs mean cell aggregation, and
/// endpoint masking vs a shared layout map.
pub fn ablation(
    dataset: &Dataset,
    base: &ModelConfig,
    train_cfg: &TrainConfig,
) -> Vec<AblationRow> {
    let lib = &dataset.library;
    let train: Vec<rtt_core::PreparedDesign> =
        dataset.train_designs().iter().map(|d| d.prepared(lib, base)).collect();
    let cases = [
        ("full (max agg, masked)".to_owned(), base.clone()),
        (
            "mean aggregation".to_owned(),
            ModelConfig { aggregation: Aggregation::Mean, ..base.clone() },
        ),
        ("no endpoint masking".to_owned(), ModelConfig { masking: false, ..base.clone() }),
    ];
    cases
        .into_iter()
        .map(|(name, cfg)| {
            let mut model = TimingModel::new(cfg);
            model.train(&train, train_cfg);
            let scores: Vec<f32> = dataset
                .test_designs()
                .iter()
                .map(|d| {
                    let prep = d.prepared(lib, model.config());
                    r2_score(&model.predict(&prep), &d.endpoint_targets())
                })
                .collect();
            AblationRow {
                variant: name,
                avg_test_r2: scores.iter().sum::<f32>() / scores.len().max(1) as f32,
            }
        })
        .collect()
}

/// Renders the ablation table as markdown.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::from("| variant | avg test R² |\n|---|---|\n");
    for r in rows {
        out.push_str(&format!("| {} | {:.4} |\n", r.variant, r.avg_test_r2));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;
    use rtt_circgen::Scale;

    fn tiny_dataset() -> Dataset {
        let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
        Dataset::generate_subset(&cfg, 2, 2)
    }

    #[test]
    fn table1_rows_are_sane() {
        let ds = tiny_dataset();
        let rows = table1(&ds);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.pins > 0 && r.endpoints > 0);
            assert!((0.0..=1.0).contains(&r.net_replaced));
            assert!((0.0..=1.0).contains(&r.cell_replaced));
            assert!(r.net_d_delay >= 0.0);
        }
        let md = render_table1(&rows);
        assert!(md.contains("jpeg"));
        assert!(md.lines().count() >= 6);
    }

    #[test]
    fn table2_runs_at_tiny_scale() {
        let ds = tiny_dataset();
        let cfg = Table2Config {
            model: rtt_core::ModelConfig::tiny(),
            train: rtt_core::TrainConfig { epochs: 4, ..Default::default() },
            two_stage_epochs: 20,
            guo_epochs: 4,
            ..Table2Config::default()
        };
        let rows = table2(&ds, &cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            for v in [r.dac19_ep, r.he_ep, r.guo_ep, r.cnn_only, r.gnn_only, r.full] {
                assert!(v.is_finite(), "{}: non-finite R²", r.benchmark);
                assert!(v <= 1.0 + 1e-5);
            }
        }
        let avg = table2_average(&rows);
        assert_eq!(avg.benchmark, "avg");
        let md = render_table2(&rows);
        assert!(md.contains("hwacha"));
    }

    #[test]
    fn table3_speedup_is_positive() {
        let ds = tiny_dataset();
        let rows = table3(&ds, &rtt_core::ModelConfig::tiny());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.speedup > 0.0);
            assert!(r.total_s >= r.opt_s);
            assert!((r.total_s - (r.opt_s + r.route_s + r.sta_s)).abs() < 1e-9);
        }
        let md = render_table3(&rows);
        assert!(md.contains("speedup"));
    }

    #[test]
    fn ablation_produces_three_variants() {
        let ds = tiny_dataset();
        let rows = ablation(
            &ds,
            &rtt_core::ModelConfig::tiny(),
            &rtt_core::TrainConfig { epochs: 3, ..Default::default() },
        );
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.avg_test_r2.is_finite()));
        assert!(render_ablation(&rows).contains("mean aggregation"));
    }
}
